//! Live multi-threaded runtime: the same GRIS/GIIS engines that run in
//! the simulator, executed over real OS threads and crossbeam channels.
//!
//! A shared [`Router`] plays the network. Clock readings map wall time
//! onto [`SimTime`] from the runtime's epoch, so every soft-state TTL and
//! cache TTL behaves identically to the simulated runtime. This
//! demonstrates the architecture's transport independence and provides
//! the substrate for the parallel-client throughput benchmarks.
//!
//! # Threading model
//!
//! Each service has one *owner* thread that holds the engine (`&mut`) and
//! performs every mutation: GRRP soft-state, harvest integration, chained
//! fan-out correlation, subscriptions, and the periodic `tick`. With
//! [`ServeOptions`]` { workers: N, .. }`, N extra *query worker* threads
//! pull from the service's shared inbox and answer the read path
//! concurrently through the engine's cloneable query handle
//! ([`gis_gris::GrisQueryPath`] / [`gis_giis::GiisQueryPath`]); anything a
//! worker cannot handle (binds, subscriptions, GRRP, cache-missing
//! chained searches) is forwarded to the owner's private channel.
//! `workers = 0` (the default) keeps the owner consuming the inbox
//! directly — the single-thread loop.
//!
//! # Transports
//!
//! The default [`Transport::Channel`] keeps everything in-process.
//! [`Transport::Tcp`] (for services with `tcp://host:port` URLs) adds a
//! real listener in front of the same inbox: framed GRIP/GRRP from other
//! OS processes flows through identical worker pools, tracing envelopes
//! and monitoring namespaces (see [`crate::transport`]). Messages the
//! router sees *for* a `tcp://` URL go out over pooled real connections,
//! so a parent GIIS chains to networked children transparently.

pub use crate::transport::TcpTuning;
use crate::transport::{
    AuthCallback, BoundEndpoint, ClientConn, ConnCallback, ConnTable, InlineHandler, OutboundCork,
    OutboundSecurity, RecvFail, ReplyCork, TcpEndpoint, TcpOutbound, WireSecurity,
};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use gis_giis::{Giis, GiisAction, GiisQueryPath};
use gis_gris::Gris;
use gis_gsi::{Requester, SecurityPolicy};
use gis_ldap::{Entry, LdapUrl};
use gis_netsim::{SimRng, SimTime};
use gis_proto::{
    GripReply, GripRequest, GrrpMessage, ProtocolMessage, RequestId, ResultCode, SearchSpec,
    SpanRecord, TraceContext, TraceId, TraceSink,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a message came from / should go back to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Address {
    /// A client handle.
    Client(u64),
    /// A service, by URL string (chained requests).
    Service(String),
    /// A remote peer on an accepted TCP connection (the id indexes the
    /// runtime's connection table); replies are framed back over the
    /// socket the request arrived on.
    Tcp(u64),
}

/// Messages carried between live threads.
#[derive(Debug)]
pub enum LiveMsg {
    /// A GRIP request with its reply address.
    Request {
        /// Who asked.
        from: Address,
        /// The request.
        request: GripRequest,
        /// Trace context, when the request is part of a traced query
        /// (the live analogue of the `ProtocolMessage::Traced` envelope).
        trace: Option<TraceContext>,
        /// When the message entered the queue it currently waits in
        /// (input to the `inbox-wait-us` histogram; reset on forward to
        /// the owner so each reading measures one queue).
        enqueued: Instant,
    },
    /// A GRIP reply delivered to a *service* (chained-query responses).
    ReplyToService {
        /// URL of the replying server.
        from_url: String,
        /// The reply.
        reply: GripReply,
    },
    /// A GRRP notification, with the connection it arrived on when it
    /// came over TCP (`None` for in-process registrations). Directories
    /// that verify signatures use the origin to answer rejections.
    Grrp(GrrpMessage, Option<Address>),
    /// Control message: re-announce to registration targets immediately
    /// (sent by the runtime when a paused service is resumed).
    Reannounce,
    /// Stop the service thread.
    Shutdown,
}

/// Interns reply addresses as the `u64` client ids the engines key
/// sessions by. Shared between a service's owner thread and its query
/// workers so an id minted by either side means the same address.
#[derive(Clone)]
struct ClientInterner {
    inner: Arc<Mutex<InternerState>>,
}

struct InternerState {
    ids: HashMap<Address, u64>,
    addrs: HashMap<u64, Address>,
    next: u64,
}

impl ClientInterner {
    fn new() -> ClientInterner {
        ClientInterner {
            inner: Arc::new(Mutex::new(InternerState {
                ids: HashMap::new(),
                addrs: HashMap::new(),
                next: 1,
            })),
        }
    }

    fn intern(&self, addr: &Address) -> u64 {
        let mut s = self.inner.lock();
        if let Some(&id) = s.ids.get(addr) {
            return id;
        }
        let id = s.next;
        s.next += 1;
        s.ids.insert(addr.clone(), id);
        s.addrs.insert(id, addr.clone());
        id
    }

    fn address_of(&self, id: u64) -> Option<Address> {
        self.inner.lock().addrs.get(&id).cloned()
    }

    /// The id already minted for `addr`, if any — unlike
    /// [`intern`](Self::intern) this never allocates one (connection
    /// teardown must not mint sessions for peers that never spoke).
    fn lookup(&self, addr: &Address) -> Option<u64> {
        self.inner.lock().ids.get(addr).copied()
    }
}

/// Injected fault state for one service's inbound link, mirroring the
/// simulator's [`gis_netsim::LinkConfig`] loss/latency knobs plus the
/// crash-style `paused` blackhole.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceFault {
    /// Probability in `[0, 1]` that an inbound message is dropped.
    pub drop: f64,
    /// Extra delivery latency added to every inbound message.
    pub latency: Duration,
    /// When true, all inbound traffic is discarded (the live analogue of
    /// a simulator crash or partition: the thread keeps running but the
    /// network no longer reaches it).
    pub paused: bool,
}

/// The fault-injection plan attached to the live [`Router`]: per-service
/// fault state plus a seeded RNG so drop decisions replay deterministically
/// for a given seed and message order.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<String, ServiceFault>,
    rng: Option<SimRng>,
}

/// What the fault plan decided for one message.
enum Verdict {
    Deliver,
    DeliverAfter(Duration),
    DropFault,
    DropPaused,
}

impl FaultPlan {
    fn verdict(&mut self, url: &str) -> Verdict {
        let Some(fault) = self.faults.get(url) else {
            return Verdict::Deliver;
        };
        if fault.paused {
            return Verdict::DropPaused;
        }
        if fault.drop > 0.0 {
            let hit = self
                .rng
                .get_or_insert_with(|| SimRng::new(0))
                .chance(fault.drop);
            if hit {
                return Verdict::DropFault;
            }
        }
        if fault.latency > Duration::ZERO {
            return Verdict::DeliverAfter(fault.latency);
        }
        Verdict::Deliver
    }
}

/// Counters the live router keeps, mirroring the simulator's
/// [`gis_netsim::NetMetrics`]: every send is accounted for, including the
/// previously-invisible drops to unknown services.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveNetMetrics {
    /// Messages handed to the router for a service.
    pub sent: u64,
    /// Messages placed on a service inbox.
    pub delivered: u64,
    /// Drops because no service with that URL is registered (killed,
    /// never spawned, or mis-addressed).
    pub dropped_unknown: u64,
    /// Drops from an injected loss probability.
    pub dropped_fault: u64,
    /// Drops because the destination service is paused.
    pub dropped_paused: u64,
    /// Deliveries that had injected latency applied.
    pub delayed: u64,
    /// Messages routed to a `tcp://` URL over a real connection (framed
    /// requests and GRRP notifications; replies are not counted again).
    pub remote: u64,
}

#[derive(Default)]
struct RouterCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_unknown: AtomicU64,
    dropped_fault: AtomicU64,
    dropped_paused: AtomicU64,
    delayed: AtomicU64,
    remote: AtomicU64,
}

/// The shared "network": routes messages to service inboxes and client
/// reply channels, applying the [`FaultPlan`] on the way. Messages for
/// `tcp://` URLs leave the process instead: they are framed onto pooled
/// real connections ([`TcpOutbound`]), and replies arriving on accepted
/// connections flow back through the [`ConnTable`].
#[derive(Default)]
pub struct Router {
    services: RwLock<HashMap<String, Sender<LiveMsg>>>,
    clients: RwLock<HashMap<u64, Sender<GripReply>>>,
    faults: Mutex<FaultPlan>,
    counters: RouterCounters,
    tcp_conns: Arc<ConnTable>,
    outbound: TcpOutbound,
}

impl Router {
    fn send_to_service(self: &Arc<Self>, url: &str, msg: LiveMsg) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        if url.starts_with("tcp://") {
            // Real-socket path, even when the target service happens to
            // live in this process: a tcp:// URL means the wire. The
            // fault plan does not apply — TCP peers fail like real ones
            // (refused connects, deadlines, dropped connections).
            self.send_remote(url, msg);
            return;
        }
        match self.faults.lock().verdict(url) {
            Verdict::Deliver => self.deliver(url, msg),
            Verdict::DropFault => {
                self.counters.dropped_fault.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::DropPaused => {
                self.counters.dropped_paused.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::DeliverAfter(delay) => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                let router = Arc::clone(self);
                let url = url.to_owned();
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    router.deliver(&url, msg);
                });
            }
        }
    }

    /// Route a message addressed to a `tcp://` URL over the outbound
    /// connection pool. Requests carry a completion sink that feeds the
    /// reply back to the in-process requester; a transport failure posts
    /// *nothing*, so the requester's own deadline machinery (client
    /// retry, GIIS fan-out timeout + circuit breaker) observes exactly
    /// what it would observe from a silent real network.
    fn send_remote(self: &Arc<Self>, url: &str, msg: LiveMsg) {
        let Ok(peer) = LdapUrl::parse(url).map(|u| u.authority()) else {
            self.counters
                .dropped_unknown
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        match msg {
            LiveMsg::Request {
                from,
                request,
                trace,
                ..
            } => {
                let frame = match trace {
                    Some(ctx) => ProtocolMessage::Request(request).traced(ctx),
                    None => ProtocolMessage::Request(request),
                };
                self.counters.remote.fetch_add(1, Ordering::Relaxed);
                let router = Arc::clone(self);
                let from_url = url.to_owned();
                self.outbound.request(
                    &peer,
                    frame,
                    Box::new(move |result| {
                        let Ok(reply) = result else { return };
                        match &from {
                            Address::Client(id) => router.send_to_client(*id, reply),
                            Address::Service(parent) => {
                                router.deliver(parent, LiveMsg::ReplyToService { from_url, reply })
                            }
                            Address::Tcp(conn) => {
                                router.tcp_conns.send(*conn, &ProtocolMessage::Reply(reply));
                            }
                        }
                    }),
                );
            }
            LiveMsg::Grrp(m, _) => {
                // Fire-and-forget: a lost registration is re-sent at the
                // next soft-state refresh.
                self.counters.remote.fetch_add(1, Ordering::Relaxed);
                self.outbound.oneway(&peer, ProtocolMessage::Grrp(m));
            }
            // Control messages (Reannounce, Shutdown, service replies)
            // are process-local: deliver to the service if it lives
            // here, else count the drop.
            other => self.deliver(url, other),
        }
    }

    fn deliver(&self, url: &str, msg: LiveMsg) {
        if let Some(tx) = self.services.read().get(url) {
            if tx.send(msg).is_ok() {
                self.counters.delivered.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Unknown or shut-down services drop traffic — the partition /
        // failure semantics the protocols are built for — but the drop
        // is now counted rather than silent.
        self.counters
            .dropped_unknown
            .fetch_add(1, Ordering::Relaxed);
    }

    fn send_to_client(&self, id: u64, reply: GripReply) {
        if let Some(tx) = self.clients.read().get(&id) {
            let _ = tx.send(reply);
        }
    }

    fn send_back(self: &Arc<Self>, addr: &Address, self_url: &str, reply: GripReply) {
        match addr {
            Address::Client(id) => self.send_to_client(*id, reply),
            Address::Service(url) => self.send_to_service(
                url,
                LiveMsg::ReplyToService {
                    from_url: self_url.to_owned(),
                    reply,
                },
            ),
            Address::Tcp(conn) => {
                self.tcp_conns.send(*conn, &ProtocolMessage::Reply(reply));
            }
        }
    }

    /// Cork both TCP write paths — the outbound request pool and the
    /// accepted-connection reply handles — until the returned guards
    /// drop. An owner thread wraps an inbox batch in this so the
    /// batch's burst of fan-out sub-queries and completed replies
    /// leaves as one write per connection instead of one per message.
    /// Channel-routed messages are unaffected.
    fn cork_tcp_writes(&self) -> (OutboundCork, ReplyCork) {
        (self.outbound.cork_all(), self.tcp_conns.cork_all())
    }

    fn metrics(&self) -> LiveNetMetrics {
        LiveNetMetrics {
            sent: self.counters.sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped_unknown: self.counters.dropped_unknown.load(Ordering::Relaxed),
            dropped_fault: self.counters.dropped_fault.load(Ordering::Relaxed),
            dropped_paused: self.counters.dropped_paused.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            remote: self.counters.remote.load(Ordering::Relaxed),
        }
    }
}

/// Execute a batch of GIIS effects against the live network. Shared by
/// the owner loop and the query workers.
fn perform_giis_actions(
    actions: Vec<GiisAction>,
    router: &Arc<Router>,
    interner: &ClientInterner,
    url: &str,
) {
    for action in actions {
        match action {
            GiisAction::SendRequest { to, request, trace } => router.send_to_service(
                &to.to_string(),
                LiveMsg::Request {
                    from: Address::Service(url.to_owned()),
                    request,
                    trace,
                    enqueued: Instant::now(),
                },
            ),
            GiisAction::SendGrrp { to, message } => {
                router.send_to_service(&to.to_string(), LiveMsg::Grrp(message, None))
            }
            GiisAction::Reply { client, reply } => {
                if let Some(addr) = interner.address_of(client) {
                    router.send_back(&addr, url, reply);
                }
            }
        }
    }
}

/// Which transport fronts a spawned service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Transport {
    /// In-process crossbeam channels (the default; what every
    /// deterministic test and experiment runs on).
    #[default]
    Channel,
    /// A real TCP listener bound to the service URL's authority. The
    /// service URL must use the `tcp://host:port` form; clients and
    /// peers in other OS processes reach it with length-prefixed
    /// [`ProtocolMessage`] frames.
    Tcp,
}

/// How to run a spawned service: worker-pool width and transport.
///
/// `workers: 0` (the default) is the owner-thread-only loop; `workers:
/// N` adds N query-worker threads on the shared inbox, exactly as the
/// former `spawn_*_pooled` entry points did. The transport selects
/// whether the inbox is fed only by in-process channels or also by a
/// TCP front-end.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Query-worker threads sharing the service inbox (0 = owner only).
    pub workers: usize,
    /// Channel-only or channel + TCP listener.
    pub transport: Transport,
    /// Socket knobs, used only when `transport` is [`Transport::Tcp`].
    pub tcp: TcpTuning,
    /// Durable storage directory: when set, the engine recovers its
    /// state from here before serving and journals every mutation. A
    /// directory that cannot be opened degrades to serving from empty
    /// (with a warning on stderr) — persistence never blocks startup.
    pub persist: Option<std::path::PathBuf>,
    /// Security posture override: when set, replaces the engine's
    /// `config.security` before anything binds or serves. The single
    /// switch that turns a spawned service fully §7-secured: handshake
    /// gate on the listener, signature checks on registrations, ACLs on
    /// the query path.
    pub security: Option<SecurityPolicy>,
}

impl ServeOptions {
    /// Channel transport, owner thread only (the old `spawn_gris`).
    pub fn channel() -> ServeOptions {
        ServeOptions::default()
    }

    /// TCP transport with default tuning.
    pub fn tcp() -> ServeOptions {
        ServeOptions {
            transport: Transport::Tcp,
            ..ServeOptions::default()
        }
    }

    /// Set the query-worker pool width.
    pub fn with_workers(mut self, workers: usize) -> ServeOptions {
        self.workers = workers;
        self
    }

    /// Set the socket knobs (implies nothing about the transport; pair
    /// with [`ServeOptions::tcp`]).
    pub fn with_tuning(mut self, tcp: TcpTuning) -> ServeOptions {
        self.tcp = tcp;
        self
    }

    /// Persist the engine's state under `dir` (snapshot + WAL): it
    /// recovers from whatever a previous incarnation left there, and a
    /// respawn pointed at the same directory continues where a killed
    /// service stopped.
    pub fn persist(mut self, dir: impl Into<std::path::PathBuf>) -> ServeOptions {
        self.persist = Some(dir.into());
        self
    }

    /// Serve under `policy` (overriding whatever the engine's config
    /// carries): [`SecurityPolicy::authenticated`] /
    /// [`SecurityPolicy::identity`] arm the §7 handshake gate,
    /// registration signature checks and ACL redaction in one move.
    pub fn security(mut self, policy: SecurityPolicy) -> ServeOptions {
        self.security = Some(policy);
        self
    }
}

/// Journal policy for live services: fsync every record, checkpoint
/// every 512 WAL records, and rebase recovered clocks against wall time
/// so soft-state deadlines survive a process restart (the anchor file
/// maps the previous incarnation's clock onto this one's).
fn live_journal_options() -> gis_store::JournalOptions {
    gis_store::JournalOptions {
        snapshot_every: 512,
        base: gis_store::TimeBase::Absolute,
        ..Default::default()
    }
}

/// Open `dir` as journal storage, or degrade to `None` (serve from
/// empty, warn on stderr) if the directory cannot be used.
fn open_persist_dir(dir: &std::path::Path) -> Option<Arc<dyn gis_store::Storage>> {
    match gis_store::FileStorage::open(dir) {
        Ok(fs) => Some(Arc::new(fs)),
        Err(e) => {
            eprintln!("warning: persistence disabled, cannot open {dir:?}: {e}");
            None
        }
    }
}

/// The live runtime: spawns service threads, hands out client handles.
pub struct LiveRuntime {
    router: Arc<Router>,
    epoch: Instant,
    handles: Vec<(Sender<LiveMsg>, JoinHandle<()>)>,
    endpoints: HashMap<String, TcpEndpoint>,
    next_client: AtomicU64,
    tick: Duration,
    sink: Arc<TraceSink>,
}

impl LiveRuntime {
    /// Create a runtime whose service threads tick at `tick` granularity.
    pub fn new(tick: Duration) -> LiveRuntime {
        LiveRuntime {
            router: Arc::new(Router::default()),
            epoch: Instant::now(),
            handles: Vec::new(),
            endpoints: HashMap::new(),
            next_client: AtomicU64::new(1),
            tick,
            sink: Arc::new(TraceSink::new()),
        }
    }

    /// The URL's scheme and the requested transport must agree: binding
    /// a listener needs an authority, and a `tcp://` URL *is* the
    /// instruction to use the wire.
    fn check_transport(url: &LdapUrl, transport: Transport) -> std::io::Result<()> {
        if url.is_tcp() != (transport == Transport::Tcp) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "service URL {url} does not match transport {transport:?}: \
                     tcp:// URLs require Transport::Tcp, ldap:// URLs Transport::Channel"
                ),
            ));
        }
        Ok(())
    }

    /// Bind the TCP listener for a service URL *before* anything is
    /// spawned or advertised, and resolve an ephemeral port
    /// (`tcp://host:0`) into the kernel-assigned one: `url` and the
    /// registration agent's advert are rewritten in place so the agent
    /// announces the port that is actually served. Returns `None` for
    /// channel transport.
    fn bind_endpoint(
        transport: Transport,
        url: &mut LdapUrl,
        agent: &mut gis_proto::RegistrationAgent,
    ) -> std::io::Result<Option<BoundEndpoint>> {
        if transport != Transport::Tcp {
            return Ok(None);
        }
        let bound = BoundEndpoint::bind(&url.authority())?;
        if url.port == 0 {
            url.port = bound.local_addr().port();
        }
        // The agent snapshotted its advert at engine construction —
        // possibly before the caller switched `config.url` to
        // `tcp://...`, and certainly before an ephemeral `:0` port was
        // resolved. Re-snapshot it from the URL actually bound so
        // registrations never announce an address nobody serves —
        // unless the caller pinned a deliberate advert
        // ([`gis_proto::RegistrationAgent::advertise`]; the NAT /
        // load-balancer case, where the dialable address differs from
        // the local bind).
        if !agent.advert_pinned() {
            agent.service_url = url.clone();
        }
        Ok(Some(bound))
    }

    /// Start serving a bound listener into `inbox`, with read-path
    /// requests answered inline on the reactor shard threads. The
    /// service's metrics registry receives the endpoint's accept/conn
    /// instruments plus the process-wide reactor shard gauges.
    #[allow(clippy::too_many_arguments)]
    fn attach_endpoint(
        &mut self,
        url: &str,
        bound: BoundEndpoint,
        inbox: &Sender<LiveMsg>,
        tcp: TcpTuning,
        inline: InlineHandler,
        security: Arc<WireSecurity>,
        registry: &gis_proto::metrics::MetricsRegistry,
    ) {
        let ep = bound.serve(
            inbox.clone(),
            Arc::clone(&self.router.tcp_conns),
            tcp,
            Some(inline),
            security,
            registry,
        );
        crate::reactor::Reactor::global().publish_into(registry);
        self.endpoints.insert(url.to_owned(), ep);
    }

    /// Assemble the wire-facing view of a service's [`SecurityPolicy`]:
    /// what the listener enforces per connection (handshake gate,
    /// verifier, our own proof-of-identity) plus the engine hooks that
    /// fire on auth events. Every rejected handshake records an
    /// `auth.reject` span into the runtime's trace sink, so security
    /// incidents show up in the same place as slow queries.
    fn wire_security(
        &self,
        policy: &SecurityPolicy,
        url: &str,
        registry: &gis_proto::metrics::MetricsRegistry,
        on_auth: AuthCallback,
        on_close: ConnCallback,
    ) -> Arc<WireSecurity> {
        let sink = Arc::clone(&self.sink);
        let span_url = url.to_owned();
        let epoch = self.epoch;
        let on_reject: ConnCallback = Arc::new(move |_conn| {
            let span = sink.next_span();
            let now = SimTime::wall(epoch);
            sink.record(SpanRecord {
                trace: TraceId(span),
                span,
                parent: None,
                service: span_url.clone(),
                name: "auth.reject".into(),
                start: now,
                end: now,
                outcome: "auth-rejected".into(),
            });
        });
        Arc::new(WireSecurity {
            required: policy.requires_auth(),
            authenticator: policy.authenticator(url),
            credential: policy.credential.clone(),
            service_name: url.to_owned(),
            on_auth,
            on_reject,
            on_close,
            auth_ok: registry.counter("auth-ok"),
            auth_rejected: registry.counter("auth-rejected"),
            auth_gated: registry.counter("auth-gated"),
        })
    }

    /// Wall time mapped onto the simulation clock type.
    pub fn now(&self) -> SimTime {
        SimTime::wall(self.epoch)
    }

    /// The shared span sink every spawned service records into. Traces
    /// started by [`LiveClient::search_traced`] assemble here.
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.sink)
    }

    /// Run a GRIS under `opts`. `opts.workers` query threads share its
    /// inbox and answer `Search` requests concurrently through the
    /// engine's [`gis_gris::GrisQueryPath`] (0 = the owner consumes the
    /// inbox directly — the old single-threaded loop); binds,
    /// subscriptions, GRRP traffic and the periodic tick always stay on
    /// the owner thread. With [`Transport::Tcp`] a listener on the
    /// URL's authority feeds the same inbox from other OS processes,
    /// answering read-path queries inline on its reader threads; the
    /// only possible error is a failed bind. Binding happens before
    /// anything is advertised, and an ephemeral port (`tcp://host:0`)
    /// is resolved into the real one — both in `gris.config.url` and in
    /// the registration agent's advert (unless the caller deliberately
    /// pointed `gris.agent.service_url` elsewhere). The served URL is
    /// returned.
    ///
    /// When rebinding an already-constructed engine to a different
    /// `tcp://` URL, set `gris.agent.service_url` along with
    /// `gris.config.url`: the registration agent snapshots the URL at
    /// [`Gris::new`] time, and a stale advert makes parents chain to an
    /// address nobody serves.
    pub fn spawn_gris(&mut self, mut gris: Gris, opts: ServeOptions) -> std::io::Result<LdapUrl> {
        Self::check_transport(&gris.config.url, opts.transport)?;
        if let Some(policy) = opts.security.clone() {
            gris.config.security = policy;
        }
        let bound = Self::bind_endpoint(opts.transport, &mut gris.config.url, &mut gris.agent)?;
        let workers = opts.workers;
        let served_url = gris.config.url.clone();
        let url = gris.config.url.to_string();
        let (owner_tx, owner_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        let interner = ClientInterner::new();
        let epoch = self.epoch;
        let tick = self.tick;
        gris.set_trace_sink(Arc::clone(&self.sink));
        if let Some(storage) = opts.persist.as_deref().and_then(open_persist_dir) {
            let report = gris.set_persistence(storage, live_journal_options(), self.now());
            for w in &report.warnings {
                eprintln!("warning: {url}: persistence recovery: {w}");
            }
        }
        let obs_on = gris.config.observability;
        let registry = gris.metrics();
        let inbox_wait = registry.histogram("inbox-wait-us");
        let inbox_depth = registry.gauge("inbox-depth");

        let inbox_tx = if workers == 0 {
            owner_tx.clone()
        } else {
            let query = gris.query_path();
            let (in_tx, in_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
            for _ in 0..workers {
                let worker_in_tx = in_tx.clone();
                let in_rx = in_rx.clone();
                let owner_tx = owner_tx.clone();
                let query = query.clone();
                let interner = interner.clone();
                let router = Arc::clone(&self.router);
                let url = url.clone();
                let inbox_wait = Arc::clone(&inbox_wait);
                let inbox_depth = Arc::clone(&inbox_depth);
                let handle = std::thread::spawn(move || {
                    let now = || SimTime::wall(epoch);
                    loop {
                        match in_rx.recv() {
                            Ok(LiveMsg::Request {
                                from,
                                request,
                                trace,
                                enqueued,
                            }) => {
                                if obs_on {
                                    inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                                    inbox_depth.set(in_rx.len() as u64);
                                }
                                let cid = interner.intern(&from);
                                match query.handle_query_traced(cid, request, trace, now()) {
                                    Ok(replies) => {
                                        for reply in replies {
                                            router.send_back(&from, &url, reply);
                                        }
                                    }
                                    // Mutation-path request: the owner's.
                                    Err(request) => {
                                        let _ = owner_tx.send(LiveMsg::Request {
                                            from,
                                            request,
                                            trace,
                                            enqueued: Instant::now(),
                                        });
                                    }
                                }
                            }
                            Ok(LiveMsg::Shutdown) => {
                                // Propagate to sibling workers and the
                                // owner, then exit.
                                let _ = worker_in_tx.send(LiveMsg::Shutdown);
                                let _ = owner_tx.send(LiveMsg::Shutdown);
                                break;
                            }
                            Ok(other) => {
                                let _ = owner_tx.send(other);
                            }
                            Err(_) => break,
                        }
                    }
                });
                self.handles.push((in_tx.clone(), handle));
            }
            in_tx
        };

        self.router
            .services
            .write()
            .insert(url.clone(), inbox_tx.clone());
        if let Some(bound) = bound {
            // Read-path queries are answered on the connection's reader
            // thread through the same concurrent query path the worker
            // pool uses — no inbox hop, no worker wakeup; owner-only
            // work (binds, subscriptions) still flows to the inbox.
            let query = gris.query_path();
            let inline_interner = interner.clone();
            let inline_router = Arc::clone(&self.router);
            let inline_url = url.clone();
            let inline: InlineHandler = Arc::new(move |conn_id, request, trace| {
                let from = Address::Tcp(conn_id);
                let cid = inline_interner.intern(&from);
                match query.handle_query_traced(cid, request, trace, SimTime::wall(epoch)) {
                    Ok(replies) => {
                        for reply in replies {
                            inline_router.send_back(&from, &inline_url, reply);
                        }
                        None
                    }
                    Err(request) => Some(request),
                }
            });
            // Hook the §7 handshake outcomes into the engine's session
            // table: an authenticated connection's queries run as the
            // proven subject, and the session dies with the socket.
            let auth_query = gris.query_path();
            let auth_interner = interner.clone();
            let on_auth: AuthCallback = Arc::new(move |conn, subject| {
                let cid = auth_interner.intern(&Address::Tcp(conn));
                auth_query.authenticate_session(cid, Requester::subject(subject));
            });
            let close_query = gris.query_path();
            let close_interner = interner.clone();
            let on_close: ConnCallback = Arc::new(move |conn| {
                if let Some(cid) = close_interner.lookup(&Address::Tcp(conn)) {
                    close_query.drop_session(cid);
                }
            });
            let wire =
                self.wire_security(&gris.config.security, &url, &registry, on_auth, on_close);
            self.attach_endpoint(&url, bound, &inbox_tx, opts.tcp, inline, wire, &registry);
        }
        let router = Arc::clone(&self.router);
        let handle = std::thread::spawn(move || {
            let now = || SimTime::wall(epoch);
            loop {
                match owner_rx.recv_timeout(tick) {
                    Ok(LiveMsg::Shutdown) => break,
                    Ok(LiveMsg::Request {
                        from,
                        request,
                        trace,
                        enqueued,
                    }) => {
                        if obs_on {
                            inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                            inbox_depth.set(owner_rx.len() as u64);
                        }
                        let cid = interner.intern(&from);
                        for reply in gris.handle_request_traced(cid, request, trace, now()) {
                            router.send_back(&from, &url, reply);
                        }
                    }
                    Ok(LiveMsg::Grrp(msg, _)) => {
                        gris.handle_grrp(&msg);
                    }
                    Ok(LiveMsg::Reannounce) => gris.agent.reannounce(),
                    Ok(LiveMsg::ReplyToService { .. }) => {}
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let out = gris.tick(now());
                for (dir, msg) in out.registrations {
                    router.send_to_service(&dir.to_string(), LiveMsg::Grrp(msg, None));
                }
                for (cid, reply) in out.updates {
                    if let Some(addr) = interner.address_of(cid) {
                        router.send_back(&addr, &url, reply);
                    }
                }
            }
        });
        self.handles.push((inbox_tx, handle));
        Ok(served_url)
    }

    /// Run a GRIS with `workers` query threads sharing its inbox.
    #[deprecated(note = "use `spawn_gris` with `ServeOptions::channel().with_workers(n)`")]
    pub fn spawn_gris_pooled(&mut self, gris: Gris, workers: usize) {
        let _ = self.spawn_gris(gris, ServeOptions::channel().with_workers(workers));
    }

    /// Run a GIIS under `opts`. `opts.workers` query threads share its
    /// inbox and answer what the engine's [`GiisQueryPath`] can serve
    /// without the owner — harvested-cache searches, chained-result-cache
    /// hits — forwarding everything else (registrations, fan-out
    /// replies, cache misses) to the owner thread; 0 degenerates to the
    /// single-threaded loop. With [`Transport::Tcp`] a listener on the
    /// URL's authority feeds the same inbox from other OS processes,
    /// answering what the query path can serve inline on its reader
    /// threads; the only possible error is a failed bind. As with
    /// [`spawn_gris`](Self::spawn_gris), binding happens first, an
    /// ephemeral port is resolved into the advertised URLs, and the
    /// served URL is returned.
    pub fn spawn_giis(&mut self, mut giis: Giis, opts: ServeOptions) -> std::io::Result<LdapUrl> {
        Self::check_transport(&giis.config.url, opts.transport)?;
        if let Some(policy) = opts.security.clone() {
            giis.config.security = policy;
        }
        let bound = Self::bind_endpoint(opts.transport, &mut giis.config.url, &mut giis.agent)?;
        let workers = opts.workers;
        let served_url = giis.config.url.clone();
        let url = giis.config.url.to_string();
        let (owner_tx, owner_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        let interner = ClientInterner::new();
        let epoch = self.epoch;
        let tick = self.tick;
        giis.set_trace_sink(Arc::clone(&self.sink));
        if let Some(storage) = opts.persist.as_deref().and_then(open_persist_dir) {
            let report = giis.set_persistence(storage, live_journal_options(), self.now());
            for w in &report.warnings {
                eprintln!("warning: {url}: persistence recovery: {w}");
            }
        }
        let obs_on = giis.config.observability;
        let registry = giis.metrics();
        let inbox_wait = registry.histogram("inbox-wait-us");
        let inbox_depth = registry.gauge("inbox-depth");

        let inbox_tx = if workers == 0 {
            owner_tx.clone()
        } else {
            let query: GiisQueryPath = giis.query_path();
            let (in_tx, in_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
            for _ in 0..workers {
                let worker_in_tx = in_tx.clone();
                let in_rx = in_rx.clone();
                let owner_tx = owner_tx.clone();
                let query = query.clone();
                let interner = interner.clone();
                let router = Arc::clone(&self.router);
                let url = url.clone();
                let inbox_wait = Arc::clone(&inbox_wait);
                let inbox_depth = Arc::clone(&inbox_depth);
                let handle = std::thread::spawn(move || {
                    let now = || SimTime::wall(epoch);
                    loop {
                        match in_rx.recv() {
                            Ok(LiveMsg::Request {
                                from,
                                request,
                                trace,
                                enqueued,
                            }) => {
                                if obs_on {
                                    inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                                    inbox_depth.set(in_rx.len() as u64);
                                }
                                let cid = interner.intern(&from);
                                match query.handle_query_traced(cid, request, trace, now()) {
                                    Ok(actions) => {
                                        perform_giis_actions(actions, &router, &interner, &url)
                                    }
                                    Err(request) => {
                                        let _ = owner_tx.send(LiveMsg::Request {
                                            from,
                                            request,
                                            trace,
                                            enqueued: Instant::now(),
                                        });
                                    }
                                }
                            }
                            Ok(LiveMsg::Shutdown) => {
                                let _ = worker_in_tx.send(LiveMsg::Shutdown);
                                let _ = owner_tx.send(LiveMsg::Shutdown);
                                break;
                            }
                            Ok(other) => {
                                let _ = owner_tx.send(other);
                            }
                            Err(_) => break,
                        }
                    }
                });
                self.handles.push((in_tx.clone(), handle));
            }
            in_tx
        };

        self.router
            .services
            .write()
            .insert(url.clone(), inbox_tx.clone());
        if let Some(bound) = bound {
            let query: GiisQueryPath = giis.query_path();
            let inline_interner = interner.clone();
            let inline_router = Arc::clone(&self.router);
            let inline_url = url.clone();
            let inline: InlineHandler = Arc::new(move |conn_id, request, trace| {
                let from = Address::Tcp(conn_id);
                let cid = inline_interner.intern(&from);
                match query.handle_query_traced(cid, request, trace, SimTime::wall(epoch)) {
                    Ok(actions) => {
                        perform_giis_actions(
                            actions,
                            &inline_router,
                            &inline_interner,
                            &inline_url,
                        );
                        None
                    }
                    Err(request) => Some(request),
                }
            });
            let auth_query = giis.query_path();
            let auth_interner = interner.clone();
            let on_auth: AuthCallback = Arc::new(move |conn, subject| {
                let cid = auth_interner.intern(&Address::Tcp(conn));
                auth_query.authenticate_session(cid, Requester::subject(subject));
            });
            let close_query = giis.query_path();
            let close_interner = interner.clone();
            let on_close: ConnCallback = Arc::new(move |conn| {
                if let Some(cid) = close_interner.lookup(&Address::Tcp(conn)) {
                    close_query.drop_session(cid);
                }
            });
            let wire =
                self.wire_security(&giis.config.security, &url, &registry, on_auth, on_close);
            self.attach_endpoint(&url, bound, &inbox_tx, opts.tcp, inline, wire, &registry);
        }
        let router = Arc::clone(&self.router);
        let handle = std::thread::spawn(move || {
            let now = || SimTime::wall(epoch);
            loop {
                let first = match owner_rx.recv_timeout(tick) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                let mut shutdown = false;
                if let Some(first) = first {
                    // Drain a bounded batch under a write cork: the
                    // batch's chain fan-outs and completed replies leave
                    // as one write per connection (pipelined requesters
                    // and mux'd child replies arrive many-per-read, so
                    // the inbox genuinely batches under load).
                    let _cork = router.cork_tcp_writes();
                    let mut msg = first;
                    let mut drained = 0usize;
                    loop {
                        match msg {
                            LiveMsg::Shutdown => shutdown = true,
                            LiveMsg::Request {
                                from,
                                request,
                                trace,
                                enqueued,
                            } => {
                                if obs_on {
                                    inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                                    inbox_depth.set(owner_rx.len() as u64);
                                }
                                let cid = interner.intern(&from);
                                let actions =
                                    giis.handle_request_traced(cid, request, trace, now());
                                perform_giis_actions(actions, &router, &interner, &url);
                            }
                            LiveMsg::ReplyToService { from_url, reply } => {
                                // A malformed source URL cannot be
                                // correlated to a child; drop the reply
                                // instead of attributing it to a
                                // placeholder server.
                                if let Ok(from) = LdapUrl::parse(&from_url) {
                                    let actions = giis.handle_reply(&from, reply, now());
                                    perform_giis_actions(actions, &router, &interner, &url);
                                }
                            }
                            LiveMsg::Grrp(msg, origin) => {
                                // A TCP-borne registration keeps its
                                // connection as the reply address, so a
                                // signature rejection reaches the
                                // sender as a wire frame.
                                let from = origin.as_ref().map(|a| interner.intern(a));
                                let actions = giis.handle_grrp_from(from, msg, now());
                                perform_giis_actions(actions, &router, &interner, &url);
                            }
                            LiveMsg::Reannounce => giis.agent.reannounce(),
                        }
                        drained += 1;
                        if shutdown || drained >= OWNER_BATCH {
                            break;
                        }
                        match owner_rx.try_recv() {
                            Ok(next) => msg = next,
                            Err(_) => break,
                        }
                    }
                }
                if shutdown {
                    break;
                }
                let actions = giis.tick(now());
                perform_giis_actions(actions, &router, &interner, &url);
            }
        });
        self.handles.push((inbox_tx, handle));
        Ok(served_url)
    }

    /// Run a GIIS with `workers` query threads sharing its inbox.
    #[deprecated(note = "use `spawn_giis` with `ServeOptions::channel().with_workers(n)`")]
    pub fn spawn_giis_pooled(&mut self, giis: Giis, workers: usize) {
        let _ = self.spawn_giis(giis, ServeOptions::channel().with_workers(workers));
    }

    /// Create a synchronous client handle. Handles are `Send`: spread
    /// them across threads for parallel-load benchmarks.
    pub fn client(&self) -> LiveClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1024);
        self.router.clients.write().insert(id, tx);
        LiveClient {
            id,
            link: ClientLink::Channel {
                rx,
                router: Arc::clone(&self.router),
            },
            next_req: 1,
            rng: SimRng::new(id),
            epoch: self.epoch,
            sink: Arc::clone(&self.sink),
            handshake_rtt: None,
        }
    }

    /// Install the client half of §7 for every *outbound* connection
    /// the runtime's services dial — chained GIIS fan-out, federated
    /// delta sync, GRRP registrations to remote directories. New dials
    /// lead with a `Hello` bound to the dialed peer; servers that
    /// demand authentication then serve this runtime's services instead
    /// of dropping their connections.
    pub fn set_outbound_security(&self, policy: &SecurityPolicy) {
        self.router
            .outbound
            .set_security(OutboundSecurity::from_policy(policy));
    }

    /// Simulate a service failure: unregister its inbox (and close its
    /// TCP listener and accepted connections, if any) and stop the
    /// thread. Soft state at directories will expire naturally. A
    /// crash+restart is this followed by `spawn_gris`/`spawn_giis` with a
    /// fresh engine; the new agent re-announces on its first tick.
    pub fn kill_service(&mut self, url: &LdapUrl) {
        if let Some(ep) = self.endpoints.remove(&url.to_string()) {
            ep.shutdown(&self.router.tcp_conns);
        }
        if let Some(tx) = self.router.services.write().remove(&url.to_string()) {
            let _ = tx.send(LiveMsg::Shutdown);
        }
    }

    /// Install (or replace) the injected fault state for one service's
    /// inbound link.
    pub fn set_fault(&self, url: &LdapUrl, fault: ServiceFault) {
        self.router
            .faults
            .lock()
            .faults
            .insert(url.to_string(), fault);
    }

    /// Remove the injected fault state for one service.
    pub fn clear_fault(&self, url: &LdapUrl) {
        self.router.faults.lock().faults.remove(&url.to_string());
    }

    /// Remove all injected faults (the netsim `heal_all` analogue).
    pub fn heal_all(&self) {
        self.router.faults.lock().faults.clear();
    }

    /// Seed the fault plan's RNG so drop decisions are reproducible for
    /// a given seed and message order.
    pub fn set_fault_seed(&self, seed: u64) {
        self.router.faults.lock().rng = Some(SimRng::new(seed));
    }

    /// Pause a service: blackhole its inbound traffic (netsim's crash
    /// semantics — the thread lives, the network no longer reaches it).
    pub fn pause_service(&self, url: &LdapUrl) {
        let mut plan = self.router.faults.lock();
        plan.faults.entry(url.to_string()).or_default().paused = true;
    }

    /// Resume a paused service and tell it to re-announce immediately,
    /// closing the visibility gap before the next scheduled refresh.
    pub fn resume_service(&self, url: &LdapUrl) {
        {
            let mut plan = self.router.faults.lock();
            plan.faults.entry(url.to_string()).or_default().paused = false;
        }
        self.router
            .send_to_service(&url.to_string(), LiveMsg::Reannounce);
    }

    /// Snapshot of the router's traffic counters.
    pub fn net_metrics(&self) -> LiveNetMetrics {
        self.router.metrics()
    }

    /// Shut down every service thread and join them. TCP endpoints stop
    /// accepting and close their connections first, so no new work
    /// arrives while the threads drain.
    pub fn shutdown(mut self) {
        for (_, ep) in self.endpoints.drain() {
            ep.shutdown(&self.router.tcp_conns);
        }
        self.router.outbound.close();
        self.router.services.write().clear();
        for (tx, _) in &self.handles {
            let _ = tx.send(LiveMsg::Shutdown);
        }
        for (_, handle) in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Client-side retry policy: per-attempt deadline plus jittered
/// exponential backoff between attempts ("retry storms" are the client
/// half of the thundering-herd problem the GRRP jitter addresses on the
/// registration path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for each individual attempt.
    pub attempt_timeout: Duration,
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempt_timeout: Duration::from_secs(1),
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// How a [`LiveClient`] reaches services: the in-process router, or one
/// persistent TCP connection to a single endpoint in (possibly) another
/// OS process.
// A process holds a handful of clients, not millions: the Tcp variant's
// connection + tuning block dwarfing the Channel variant costs nothing.
#[allow(clippy::large_enum_variant)]
enum ClientLink {
    Channel {
        rx: Receiver<GripReply>,
        router: Arc<Router>,
    },
    Tcp {
        peer: String,
        tuning: TcpTuning,
        /// Client half of the §7 posture, replayed on every re-dial so
        /// a reconnected session holds the same authentication the
        /// original did. Boxed: a policy carries cert chains and a
        /// trust store, and the Channel variant shouldn't pay for them.
        security: Box<SecurityPolicy>,
        /// `None` between a detected drop and the next (re)connect.
        conn: Option<ClientConn>,
    },
}

/// A synchronous client of the live runtime.
pub struct LiveClient {
    id: u64,
    link: ClientLink,
    next_req: RequestId,
    /// Jitter source for retry backoff, seeded from the client id so a
    /// fleet of clients desynchronizes deterministically.
    rng: SimRng,
    epoch: Instant,
    sink: Arc<TraceSink>,
    /// Measured §7 handshake round-trip of the initial dial (`None` for
    /// channel clients and anonymous connections).
    handshake_rtt: Option<Duration>,
}

/// Terminal result of one client search: code, entries, referrals.
pub type SearchOutcome = (ResultCode, Vec<Entry>, Vec<LdapUrl>);

/// Why one search attempt produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptFail {
    /// No reply within the deadline.
    Timeout,
    /// The transport failed outright (connect refused, connection
    /// dropped mid-reply) — a *definite* failure, unlike a timeout.
    Transport,
}

/// Default deadline for [`SearchRequest`]s that set none.
const DEFAULT_SEARCH_TIMEOUT: Duration = Duration::from_secs(5);

/// Most inbox messages an owner thread drains under one write cork
/// before ticking: bounds how long soft-state upkeep can be deferred
/// while still letting a loaded inbox amortize its writes.
const OWNER_BATCH: usize = 64;

/// A search being assembled: target, spec, and the optional tracing /
/// retry / deadline decorations, finished with [`send`](Self::send).
///
/// ```no_run
/// # use gis_core::live::{LiveRuntime, RetryPolicy};
/// # use gis_proto::SearchSpec;
/// # use gis_ldap::{Dn, Filter, LdapUrl};
/// # use std::time::Duration;
/// # let rt = LiveRuntime::new(Duration::from_millis(10));
/// # let mut client = rt.client();
/// # let url = LdapUrl::server("giis.vo");
/// let spec = SearchSpec::subtree(Dn::root(), Filter::always());
/// let response = client
///     .request(&url, spec)
///     .traced()
///     .retry(RetryPolicy::default())
///     .send();
/// ```
#[must_use = "a SearchRequest does nothing until .send()"]
pub struct SearchRequest<'c> {
    client: &'c mut LiveClient,
    target: LdapUrl,
    spec: SearchSpec,
    timeout: Duration,
    traced: bool,
    retry: Option<RetryPolicy>,
}

impl SearchRequest<'_> {
    /// Overall deadline when no retry policy is set (with one, each
    /// attempt uses the policy's `attempt_timeout` instead).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Mint a fresh trace id and propagate the context through every
    /// hop; the client's root span is recorded into its
    /// [`TraceSink`] when the search concludes.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Retry under `policy`: per-attempt deadlines with jittered
    /// exponential backoff between attempts. Each attempt is a fresh
    /// request id, so a late reply to an abandoned attempt is
    /// discarded, not mistaken for the current one.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Execute the search, blocking until a result or the deadline.
    pub fn send(self) -> SearchResponse {
        let SearchRequest {
            client,
            target,
            spec,
            timeout,
            traced,
            retry,
        } = self;
        let (attempts, attempt_timeout) = match &retry {
            Some(p) => (p.max_attempts.max(1), p.attempt_timeout),
            None => (1, timeout),
        };
        let (trace, root) = if traced {
            let root = client.sink.next_span();
            (Some(TraceId(root)), root)
        } else {
            (None, 0)
        };
        let ctx = trace.map(|t| TraceContext {
            trace: t,
            parent: root,
        });
        let start = client.now();

        let mut outcome = None;
        let mut last_fail = AttemptFail::Timeout;
        for attempt in 0..attempts {
            match client.attempt_search(&target, spec.clone(), attempt_timeout, ctx) {
                Ok(result) => {
                    outcome = Some(result);
                    break;
                }
                Err(fail) => last_fail = fail,
            }
            if attempt + 1 < attempts {
                if let Some(p) = &retry {
                    let exp = p
                        .base_backoff
                        .saturating_mul(1u32 << attempt.min(16))
                        .min(p.max_backoff);
                    // Full-jitter half-spread: sleep in [exp/2, exp).
                    let frac = 0.5 + client.rng.next_f64() / 2.0;
                    std::thread::sleep(exp.mul_f64(frac));
                }
            }
        }
        // A transport-dead endpoint is a definite answer, not a missing
        // one: surface it as Unavailable so callers can distinguish a
        // refusing/dropping peer from a silent deadline.
        if outcome.is_none() && last_fail == AttemptFail::Transport {
            outcome = Some((ResultCode::Unavailable, Vec::new(), Vec::new()));
        }
        if let Some(t) = trace {
            client.sink.record(SpanRecord {
                trace: t,
                span: root,
                parent: None,
                service: format!("client:{}", client.id),
                name: "client.search".into(),
                start,
                end: client.now(),
                outcome: match &outcome {
                    Some((code, ..)) => code.label().to_string(),
                    None => "timeout".to_string(),
                },
            });
        }
        SearchResponse { trace, outcome }
    }
}

/// What a [`SearchRequest`] produced.
#[derive(Debug)]
pub struct SearchResponse {
    /// The minted trace id, when the request was [`traced`]
    /// (SearchRequest::traced).
    pub trace: Option<TraceId>,
    /// The search result; `None` means every attempt timed out.
    pub outcome: Option<SearchOutcome>,
}

impl SearchResponse {
    /// The outcome, discarding the trace id.
    pub fn into_outcome(self) -> Option<SearchOutcome> {
        self.outcome
    }
}

/// Client-side balancer over a replica group of federated GIIS roots
/// serving the same children: reads spread round-robin, a replica that
/// times out or answers `Unavailable` is failed over within the same
/// call, and — because replicas sync independently — an answer whose
/// entries carry an `mds-sync-version` *below* what this balancer
/// already served for the same DN is refused (monotone reads across
/// failover; the lagging replica is skipped like a dead one).
pub struct ReplicaBalancer {
    replicas: Vec<LdapUrl>,
    next: usize,
    /// Highest sync version served per DN — the monotone-read floor.
    high_water: std::collections::BTreeMap<String, u64>,
    /// Replicas skipped within a call because they produced no answer.
    pub failovers: u64,
    /// Replica answers refused because an entry's stamp regressed.
    pub regressions_refused: u64,
}

impl ReplicaBalancer {
    /// A balancer over `replicas` (at least one).
    pub fn new(replicas: Vec<LdapUrl>) -> ReplicaBalancer {
        assert!(!replicas.is_empty(), "a replica group needs members");
        ReplicaBalancer {
            replicas,
            next: 0,
            high_water: std::collections::BTreeMap::new(),
            failovers: 0,
            regressions_refused: 0,
        }
    }

    /// Would serving `entries` regress any DN below the high-water mark?
    fn regresses(&self, entries: &[Entry]) -> bool {
        entries.iter().any(|e| {
            gis_ldap::sync_version(e).is_some_and(|v| {
                self.high_water
                    .get(&e.dn().to_string())
                    .is_some_and(|&hw| v < hw)
            })
        })
    }

    /// Absorb a served answer's stamps into the high-water map.
    fn absorb(&mut self, entries: &[Entry]) {
        for e in entries {
            if let Some(v) = gis_ldap::sync_version(e) {
                let hw = self.high_water.entry(e.dn().to_string()).or_insert(0);
                *hw = (*hw).max(v);
            }
        }
    }

    /// Search the replica group through `client`, trying each member at
    /// most once starting from the round-robin cursor. Returns `None`
    /// only when every replica failed or would have served regressed
    /// data — the caller retries later rather than reading backwards.
    pub fn search(
        &mut self,
        client: &mut LiveClient,
        spec: &SearchSpec,
        timeout: Duration,
    ) -> Option<SearchOutcome> {
        let n = self.replicas.len();
        let start = self.next;
        self.next = (self.next + 1) % n;
        for i in 0..n {
            let url = self.replicas[(start + i) % n].clone();
            let outcome = client
                .request(&url, spec.clone())
                .timeout(timeout)
                .send()
                .into_outcome();
            match outcome {
                Some((ResultCode::Unavailable, ..)) | None => {
                    self.failovers += 1;
                }
                Some((code, entries, referrals)) => {
                    if self.regresses(&entries) {
                        self.regressions_refused += 1;
                        continue;
                    }
                    self.absorb(&entries);
                    return Some((code, entries, referrals));
                }
            }
        }
        None
    }
}

/// Configures a cross-process TCP client before it dials: endpoint,
/// socket knobs, and the client half of the §7 security posture. Built
/// by [`LiveClient::builder`].
#[must_use = "a LiveClientBuilder does nothing until .connect()"]
pub struct LiveClientBuilder {
    url: LdapUrl,
    tuning: TcpTuning,
    security: SecurityPolicy,
}

impl LiveClientBuilder {
    /// Present this posture when dialing: a credential leads the
    /// connection with a bound `Hello`, and a trust store additionally
    /// demands the server prove its own identity (mutual auth).
    pub fn security(mut self, policy: SecurityPolicy) -> LiveClientBuilder {
        self.security = policy;
        self
    }

    /// Replace the socket knobs.
    pub fn tuning(mut self, tuning: TcpTuning) -> LiveClientBuilder {
        self.tuning = tuning;
        self
    }

    /// Dial the endpoint, running the §7 handshake first when the
    /// posture carries a credential. The returned client speaks GRIP
    /// over one persistent framed connection: searches, subscriptions
    /// and their update streams all ride it. A dropped connection is
    /// re-dialed (with the same posture) on the next request. A server
    /// that rejects the handshake surfaces as `PermissionDenied`.
    pub fn connect(self) -> std::io::Result<LiveClient> {
        if !self.url.is_tcp() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("LiveClient::builder needs a tcp:// URL, got {}", self.url),
            ));
        }
        let peer = self.url.authority();
        let (conn, handshake_rtt) =
            ClientConn::connect_secured(&peer, self.tuning, &self.security)?;
        // Seed identity from the pid: requests are correlated per
        // connection so the id only needs to be process-unique, and the
        // span-id base keeps this process's spans disjoint from the
        // server process's sink (base 0) in stitched-together traces.
        let pid = u64::from(std::process::id());
        Ok(LiveClient {
            id: pid,
            link: ClientLink::Tcp {
                peer,
                tuning: self.tuning,
                security: Box::new(self.security),
                conn: Some(conn),
            },
            next_req: 1,
            rng: SimRng::new(pid),
            epoch: Instant::now(),
            sink: Arc::new(TraceSink::with_base(pid << 32)),
            handshake_rtt,
        })
    }
}

impl LiveClient {
    fn now(&self) -> SimTime {
        SimTime::wall(self.epoch)
    }

    /// Start configuring a TCP connection to `url` — the cross-process
    /// counterpart of [`LiveRuntime::client`]. Chain
    /// [`security`](LiveClientBuilder::security) and
    /// [`tuning`](LiveClientBuilder::tuning), then
    /// [`connect`](LiveClientBuilder::connect):
    ///
    /// ```no_run
    /// # use gis_core::live::LiveClient;
    /// # use gis_gsi::SecurityPolicy;
    /// # use gis_ldap::LdapUrl;
    /// # let url = LdapUrl::parse("tcp://127.0.0.1:5389").unwrap();
    /// # let (cred, trust) = unimplemented!();
    /// let client = LiveClient::builder(&url)
    ///     .security(SecurityPolicy::authenticated(cred, trust))
    ///     .connect()?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn builder(url: &LdapUrl) -> LiveClientBuilder {
        LiveClientBuilder {
            url: url.clone(),
            tuning: TcpTuning::default(),
            security: SecurityPolicy::anonymous(),
        }
    }

    /// Connect to a `tcp://` service endpoint, with default
    /// [`TcpTuning`] and no security.
    #[deprecated(note = "use `LiveClient::builder(url).connect()`")]
    pub fn connect_tcp(url: &LdapUrl) -> std::io::Result<LiveClient> {
        LiveClient::builder(url).connect()
    }

    /// Connect with explicit socket knobs and no security.
    #[deprecated(note = "use `LiveClient::builder(url).tuning(tuning).connect()`")]
    pub fn connect_tcp_tuned(url: &LdapUrl, tuning: TcpTuning) -> std::io::Result<LiveClient> {
        LiveClient::builder(url).tuning(tuning).connect()
    }

    /// The §7 handshake round-trip measured when this client connected:
    /// `None` for channel clients and anonymous TCP connections.
    pub fn handshake_rtt(&self) -> Option<Duration> {
        self.handshake_rtt
    }

    /// The sink this client's root spans land in. For channel clients
    /// this is the runtime's shared sink; for TCP clients it is the
    /// client process's own (the server process keeps its own half of
    /// the trace).
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.sink)
    }

    /// Push one request out the link. Returns `false` on a definite
    /// transport failure (TCP link only; the channel router's silent
    /// drops stay silent, exactly as a lossy network would be).
    fn dispatch(
        &mut self,
        target: &LdapUrl,
        request: GripRequest,
        trace: Option<TraceContext>,
    ) -> bool {
        let from_id = self.id;
        match &mut self.link {
            ClientLink::Channel { router, .. } => {
                router.send_to_service(
                    &target.to_string(),
                    LiveMsg::Request {
                        from: Address::Client(from_id),
                        request,
                        trace,
                        enqueued: Instant::now(),
                    },
                );
                true
            }
            ClientLink::Tcp {
                peer,
                tuning,
                security,
                conn,
            } => {
                let msg = ProtocolMessage::Request(request);
                let frame = match trace {
                    Some(ctx) => msg.traced(ctx),
                    None => msg,
                };
                if conn.is_none() {
                    // Re-dial with the same posture the original
                    // connection held: an authenticated session must
                    // not silently degrade to anonymous on reconnect.
                    *conn = ClientConn::connect_secured(peer, *tuning, security)
                        .ok()
                        .map(|(c, _)| c);
                }
                let Some(c) = conn.as_mut() else {
                    return false;
                };
                if c.send(&frame, tuning.max_frame) {
                    true
                } else {
                    *conn = None;
                    false
                }
            }
        }
    }

    /// Send a raw request. TCP clients are bound to their connected
    /// endpoint; `target` selects the service only for channel clients.
    pub fn send(
        &mut self,
        target: &LdapUrl,
        build: impl FnOnce(RequestId) -> GripRequest,
    ) -> RequestId {
        let id = self.next_req;
        self.next_req += 1;
        self.dispatch(target, build(id), None);
        id
    }

    /// Start building a search against `target`; finish with
    /// [`SearchRequest::send`].
    pub fn request(&mut self, target: &LdapUrl, spec: SearchSpec) -> SearchRequest<'_> {
        SearchRequest {
            client: self,
            target: target.clone(),
            spec,
            timeout: DEFAULT_SEARCH_TIMEOUT,
            traced: false,
            retry: None,
        }
    }

    /// One send-and-wait round: fresh request id, dispatch, then block
    /// for the matching `SearchResult` until `timeout`.
    fn attempt_search(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
        trace: Option<TraceContext>,
    ) -> Result<SearchOutcome, AttemptFail> {
        let id = self.next_req;
        self.next_req += 1;
        if !self.dispatch(target, GripRequest::Search { id, spec }, trace) {
            return Err(AttemptFail::Transport);
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv_grip_reply(deadline)? {
                GripReply::SearchResult {
                    id: rid,
                    code,
                    entries,
                    referrals,
                } if rid == id => return Ok((code, entries, referrals)),
                _ => continue, // stale replies from earlier timeouts, updates
            }
        }
    }

    /// Block for the next GRIP reply on the link, whatever it answers —
    /// the one receive loop every synchronous path shares. The channel
    /// and TCP links differ only in where the bytes come from; a closed
    /// TCP session clears the connection so the next dispatch re-dials.
    fn recv_grip_reply(&mut self, deadline: Instant) -> Result<GripReply, AttemptFail> {
        // An already-passed deadline still drains buffered replies (the
        // decoder and the channel queue are checked before the clock),
        // which is how pipelined receivers pull a whole batch without a
        // syscall per reply.
        match &mut self.link {
            ClientLink::Channel { rx, .. } => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                rx.recv_timeout(remaining).map_err(|_| AttemptFail::Timeout)
            }
            ClientLink::Tcp { conn, .. } => loop {
                let Some(c) = conn.as_mut() else {
                    return Err(AttemptFail::Transport);
                };
                let remaining = deadline.saturating_duration_since(Instant::now());
                match c.recv(remaining) {
                    Ok(ProtocolMessage::Reply(reply)) => return Ok(reply),
                    Ok(_) => continue, // a service session only pushes replies
                    Err(RecvFail::Timeout) => return Err(AttemptFail::Timeout),
                    Err(RecvFail::Closed) => {
                        *conn = None;
                        return Err(AttemptFail::Transport);
                    }
                }
            },
        }
    }

    /// Issue `specs` as a pipelined batch with up to `depth` requests in
    /// flight, collecting each search's outcome (`None` = no reply
    /// within `timeout`). Replies match by request id, so they may
    /// return in any order. On a TCP link this is what saturates one
    /// multiplexed connection — the next requests are already on the
    /// wire while earlier replies are in flight — instead of paying a
    /// full round trip per query.
    pub fn search_pipelined(
        &mut self,
        target: &LdapUrl,
        specs: &[SearchSpec],
        depth: usize,
        timeout: Duration,
    ) -> Vec<Option<SearchOutcome>> {
        let depth = depth.max(1);
        let mut results: Vec<Option<SearchOutcome>> = vec![None; specs.len()];
        let mut slot_of: HashMap<RequestId, usize> = HashMap::new();
        let deadline = Instant::now() + timeout;
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let mut done = 0usize;
        // Refill once at least half the window is free (and always when
        // it empties): large corked bursts are what keep the wire on
        // one-write-per-batch footing. Refilling one request per reply
        // would lock the pipeline into per-frame writes the first time
        // the kernel fragments a burst.
        let refill_at = depth / 2;
        'pump: while done < specs.len() {
            if next < specs.len() && in_flight <= refill_at {
                self.cork_link();
                while next < specs.len() && in_flight < depth {
                    let id = self.next_req;
                    self.next_req += 1;
                    let sent = self.dispatch(
                        target,
                        GripRequest::Search {
                            id,
                            spec: specs[next].clone(),
                        },
                        None,
                    );
                    if sent {
                        slot_of.insert(id, next);
                        in_flight += 1;
                    } else {
                        done += 1; // definite transport failure: stays None
                    }
                    next += 1;
                }
                self.uncork_link();
            }
            if in_flight == 0 {
                if next >= specs.len() {
                    break;
                }
                continue; // every dispatch so far failed; keep going
            }
            // Block for one reply, then drain whatever else is already
            // buffered (no syscalls) before considering a refill.
            let mut draining = false;
            loop {
                let recv_by = if draining { Instant::now() } else { deadline };
                match self.recv_grip_reply(recv_by) {
                    Ok(GripReply::SearchResult {
                        id,
                        code,
                        entries,
                        referrals,
                    }) => {
                        if let Some(slot) = slot_of.remove(&id) {
                            results[slot] = Some((code, entries, referrals));
                            in_flight -= 1;
                            done += 1;
                        }
                        draining = true;
                    }
                    Ok(_) => {}                  // unrelated push (subscription update)
                    Err(_) if draining => break, // buffer dry
                    Err(_) => break 'pump,       // deadline or dead link
                }
                if in_flight == 0 {
                    break;
                }
            }
        }
        results
    }

    /// Stage outgoing frames instead of writing each (TCP link only);
    /// [`uncork_link`](Self::uncork_link) writes the burst at once.
    fn cork_link(&mut self) {
        if let ClientLink::Tcp { conn: Some(c), .. } = &mut self.link {
            c.cork();
        }
    }

    /// Flush a corked burst in one write; a dead connection is cleared
    /// so the next dispatch re-dials.
    fn uncork_link(&mut self) {
        if let ClientLink::Tcp { conn, .. } = &mut self.link {
            if let Some(c) = conn.as_mut() {
                if !c.uncork() {
                    *conn = None;
                }
            }
        }
    }

    /// Issue a search and block (up to `timeout`) for its result.
    #[deprecated(note = "use `client.request(target, spec).timeout(t).send()`")]
    pub fn search(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
    ) -> Option<SearchOutcome> {
        self.request(target, spec).timeout(timeout).send().outcome
    }

    /// Issue a traced search; see [`SearchRequest::traced`].
    #[deprecated(note = "use `client.request(target, spec).traced().timeout(t).send()`")]
    pub fn search_traced(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
    ) -> (TraceId, Option<SearchOutcome>) {
        let response = self.request(target, spec).traced().timeout(timeout).send();
        (
            response.trace.expect("traced request mints a trace id"),
            response.outcome,
        )
    }

    /// Issue a search with retries; see [`SearchRequest::retry`].
    #[deprecated(note = "use `client.request(target, spec).retry(policy).send()`")]
    pub fn search_with_retry(
        &mut self,
        target: &LdapUrl,
        spec: &SearchSpec,
        policy: RetryPolicy,
    ) -> Option<SearchOutcome> {
        self.request(target, spec.clone())
            .retry(policy)
            .send()
            .outcome
    }

    /// Receive the next asynchronous reply (subscription updates).
    pub fn recv(&mut self, timeout: Duration) -> Option<GripReply> {
        self.recv_grip_reply(Instant::now() + timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SimDeployment;
    use gis_giis::{Giis, GiisConfig};
    use gis_gris::HostSpec;
    use gis_ldap::{Dn, Filter};
    use gis_netsim::SimDuration;

    fn fast_host_gris(name: &str, seed: u64, dirs: &[LdapUrl]) -> Gris {
        let host = HostSpec::linux(name, 2);
        let mut gris = SimDeployment::standard_host_gris(&host, seed);
        gris.agent.interval = SimDuration::from_millis(100);
        gris.agent.ttl = SimDuration::from_millis(400);
        for d in dirs {
            gris.agent.add_target(d.clone());
        }
        gris
    }

    #[test]
    fn live_direct_query() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        let mut client = rt.client();
        let result = client
            .request(
                &url,
                SearchSpec::subtree(Dn::parse("hn=n1").unwrap(), Filter::always()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome;
        let (code, entries, _) = result.expect("live reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 4);
        rt.shutdown();
    }

    #[test]
    fn live_registration_and_chained_search() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        // Tighter chaining deadline for a fast test.
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis(giis, ServeOptions::default()).unwrap();
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(
                fast_host_gris(name, i as u64, std::slice::from_ref(&giis_url)),
                ServeOptions::default(),
            )
            .unwrap();
        }
        // Let registrations propagate.
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .request(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
            .expect("chained reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn live_killed_service_expires_from_directory() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(300),
        };
        rt.spawn_giis(giis, ServeOptions::default()).unwrap();
        let gris = fast_host_gris("n1", 1, std::slice::from_ref(&giis_url));
        let gris_url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        std::thread::sleep(Duration::from_millis(400));

        let mut client = rt.client();
        let (_, entries, _) = client
            .request(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
            .expect("host visible");
        assert_eq!(entries.len(), 1);

        rt.kill_service(&gris_url);
        // TTL 400ms: after ~1s the registration is swept.
        std::thread::sleep(Duration::from_millis(1200));
        let (code, entries, _) = client
            .request(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
            .expect("directory still answers");
        assert_eq!(code, ResultCode::Success);
        assert!(entries.is_empty(), "dead host no longer listed");
        rt.shutdown();
    }

    #[test]
    fn ephemeral_bind_rewrites_stale_advert() {
        // Regression: an engine constructed with an ldap:// URL and then
        // pointed at `tcp://...:0` keeps its construction-time advert in
        // the registration agent; binding must rebuild it, or the GRIS
        // announces an address nobody serves.
        let agent = |advert: LdapUrl| {
            gis_proto::RegistrationAgent::new(
                advert,
                Dn::root(),
                SimDuration::from_secs(30),
                SimDuration::from_secs(90),
            )
        };
        let mut url = LdapUrl::tcp("127.0.0.1", 0);
        let mut ag = agent(LdapUrl::server("gris.n1"));
        let bound = LiveRuntime::bind_endpoint(Transport::Tcp, &mut url, &mut ag)
            .unwrap()
            .unwrap();
        assert_ne!(url.port, 0, "ephemeral port resolved");
        assert_eq!(ag.service_url, url, "stale ldap:// advert rebuilt");
        drop(bound);

        // Regression for the rebind footgun: the engine was first bound
        // to one tcp:// port (agent re-snapshotted it), then pointed at
        // a *different* `tcp://...:0`. The old behaviour kept the now
        // dead first port because it no longer textually matched the
        // requested URL; an unpinned advert must always track the bind.
        let mut url2 = LdapUrl::tcp("127.0.0.1", 0);
        let mut ag2 = agent(url.clone());
        let bound2 = LiveRuntime::bind_endpoint(Transport::Tcp, &mut url2, &mut ag2)
            .unwrap()
            .unwrap();
        assert_ne!(url2.port, url.port, "fresh ephemeral port");
        assert_eq!(ag2.service_url, url2, "stale tcp:// advert re-snapshotted");
        drop(bound2);

        // A deliberately pinned advert (e.g. a NATed public address) is
        // the caller's choice and stays untouched.
        let mut url = LdapUrl::tcp("127.0.0.1", 0);
        let mut ag = agent(LdapUrl::server("gris.n1"));
        ag.advertise(LdapUrl::tcp("public.example", 7000));
        let _bound = LiveRuntime::bind_endpoint(Transport::Tcp, &mut url, &mut ag)
            .unwrap()
            .unwrap();
        assert_eq!(ag.service_url, LdapUrl::tcp("public.example", 7000));
    }

    #[test]
    fn live_stale_advert_still_reachable_through_directory() {
        // End-to-end version of the advert fix: the GRIS below was
        // constructed with an ldap:// URL (the agent snapshotted it) and
        // only `config.url` was switched to tcp://:0 before spawning.
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis(giis, ServeOptions::default()).unwrap();
        let mut gris = fast_host_gris("n1", 1, std::slice::from_ref(&giis_url));
        gris.config.url = LdapUrl::tcp("127.0.0.1", 0);
        // Deliberately NOT updating gris.agent.service_url.
        rt.spawn_gris(gris, ServeOptions::tcp()).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .request(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
            .expect("chained reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1, "host reachable via rebuilt advert");
        rt.shutdown();
    }

    #[test]
    fn live_giis_recovers_state_after_kill() {
        let dir = std::env::temp_dir().join(format!(
            "gis-live-recover-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let harvest_giis = || {
            let mut giis = Giis::new(
                GiisConfig::chaining(giis_url.clone(), Dn::root()),
                SimDuration::from_millis(100),
                SimDuration::from_secs(60),
            );
            giis.config.mode = gis_giis::GiisMode::Harvest {
                refresh: SimDuration::from_secs(60),
            };
            giis
        };
        rt.spawn_giis(harvest_giis(), ServeOptions::default().persist(&dir))
            .unwrap();
        // A child with a long TTL, so its soft state outlives the kill.
        let host = HostSpec::linux("n1", 2);
        let mut gris = SimDeployment::standard_host_gris(&host, 1);
        gris.agent.interval = SimDuration::from_millis(100);
        gris.agent.ttl = SimDuration::from_secs(60);
        gris.agent.add_target(giis_url.clone());
        let gris_url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        std::thread::sleep(Duration::from_millis(500));

        let mut client = rt.client();
        let search = |client: &mut LiveClient| {
            client
                .request(&giis_url, SearchSpec::subtree(Dn::root(), Filter::always()))
                .timeout(Duration::from_secs(5))
                .send()
                .outcome
        };
        let (_, before, _) = search(&mut client).expect("harvested reply");
        assert!(!before.is_empty(), "harvest populated the cache");

        // Crash both: the respawned GIIS has no live child to rebuild
        // from — whatever it serves must come from the journal.
        rt.kill_service(&gris_url);
        rt.kill_service(&giis_url);
        std::thread::sleep(Duration::from_millis(300));
        rt.spawn_giis(harvest_giis(), ServeOptions::default().persist(&dir))
            .unwrap();
        let (code, after, _) = search(&mut client).expect("recovered reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(
            after.len(),
            before.len(),
            "recovered cache serves the pre-crash rows"
        );
        rt.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_subscription_updates_flow() {
        use gis_proto::{GripRequest, SubscriptionMode};
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        let mut client = rt.client();
        let sub_id = client.send(&url, |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("perf=load, hn=n1").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(SimDuration::from_millis(100)),
        });
        // Initial snapshot + at least two periodic deliveries within 1s.
        let mut updates = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while updates < 3 && std::time::Instant::now() < deadline {
            if let Some(reply) = client.recv(Duration::from_millis(200)) {
                if matches!(reply, gis_proto::GripReply::Update { id, .. } if id == sub_id) {
                    updates += 1;
                }
            }
        }
        assert!(
            updates >= 3,
            "periodic updates over live threads: {updates}"
        );
        // Unsubscribe stops the stream (allow in-flight deliveries).
        client.send(&url, |_| GripRequest::Unsubscribe { id: sub_id });
        std::thread::sleep(Duration::from_millis(300));
        while client.recv(Duration::from_millis(50)).is_some() {}
        assert!(
            client.recv(Duration::from_millis(300)).is_none(),
            "no updates after unsubscribe"
        );
        rt.shutdown();
    }

    #[test]
    fn live_paused_service_blackholes_then_resumes() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        let mut client = rt.client();
        let spec = SearchSpec::lookup(Dn::parse("hn=n1").unwrap());

        rt.pause_service(&url);
        assert!(
            client
                .request(&url, spec.clone())
                .timeout(Duration::from_millis(300))
                .send()
                .outcome
                .is_none(),
            "paused service is unreachable"
        );
        let m = rt.net_metrics();
        assert!(m.dropped_paused >= 1, "pause drops are counted: {m:?}");

        rt.resume_service(&url);
        assert!(
            client
                .request(&url, spec)
                .timeout(Duration::from_secs(5))
                .send()
                .outcome
                .is_some(),
            "resumed service answers again"
        );
        rt.shutdown();
    }

    #[test]
    fn live_injected_latency_delays_delivery() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        rt.set_fault(
            &url,
            ServiceFault {
                drop: 0.0,
                latency: Duration::from_millis(200),
                paused: false,
            },
        );
        let mut client = rt.client();
        let started = Instant::now();
        let result = client
            .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
            .timeout(Duration::from_secs(5))
            .send()
            .outcome;
        assert!(result.is_some(), "delayed message still delivered");
        assert!(
            started.elapsed() >= Duration::from_millis(200),
            "request path carried the injected latency"
        );
        assert!(rt.net_metrics().delayed >= 1);
        rt.shutdown();
    }

    #[test]
    fn live_full_loss_drops_deterministically() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        rt.set_fault_seed(42);
        rt.set_fault(
            &url,
            ServiceFault {
                drop: 1.0,
                latency: Duration::ZERO,
                paused: false,
            },
        );
        let mut client = rt.client();
        assert!(
            client
                .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
                .timeout(Duration::from_millis(300))
                .send()
                .outcome
                .is_none(),
            "total loss yields no answer"
        );
        assert!(rt.net_metrics().dropped_fault >= 1);

        rt.heal_all();
        assert!(
            client
                .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
                .timeout(Duration::from_secs(5))
                .send()
                .outcome
                .is_some(),
            "healed link delivers"
        );
        rt.shutdown();
    }

    #[test]
    fn live_search_with_retry_outlasts_transient_outage() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        rt.pause_service(&url);

        // Heal the outage from another thread while the client is mid-retry.
        let rt_ref = &rt;
        let heal_url = url.clone();
        let result = std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(350));
                rt_ref.resume_service(&heal_url);
            });
            let mut client = rt_ref.client();
            client
                .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
                .retry(RetryPolicy {
                    attempt_timeout: Duration::from_millis(200),
                    max_attempts: 8,
                    base_backoff: Duration::from_millis(40),
                    max_backoff: Duration::from_millis(200),
                })
                .send()
                .outcome
        });
        let (code, entries, _) = result.expect("a later attempt lands after the heal");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1);
        rt.shutdown();
    }

    #[test]
    fn live_pooled_gris_answers_in_parallel() {
        let mut rt = LiveRuntime::new(Duration::from_millis(5));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default().with_workers(4))
            .unwrap();

        let mut threads = Vec::new();
        for _ in 0..8 {
            let mut client = rt.client();
            let url = url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..20 {
                    if client
                        .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
                        .timeout(Duration::from_secs(5))
                        .send()
                        .outcome
                        .is_some()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 160, "all queries answered through the worker pool");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_gris_mutation_path_still_works() {
        use gis_proto::{GripRequest, SubscriptionMode};
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default().with_workers(2))
            .unwrap();
        let mut client = rt.client();
        // Subscriptions are owner-thread work: a worker must forward the
        // request, and updates must still reach the client.
        let sub_id = client.send(&url, |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("perf=load, hn=n1").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(SimDuration::from_millis(100)),
        });
        let mut updates = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while updates < 2 && std::time::Instant::now() < deadline {
            if let Some(reply) = client.recv(Duration::from_millis(200)) {
                if matches!(reply, gis_proto::GripReply::Update { id, .. } if id == sub_id) {
                    updates += 1;
                }
            }
        }
        assert!(updates >= 2, "subscription updates via pooled spawn");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_giis_serves_harvested_snapshots() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Harvest {
            refresh: SimDuration::from_millis(200),
        };
        rt.spawn_giis(giis, ServeOptions::default().with_workers(4))
            .unwrap();
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(
                fast_host_gris(name, i as u64, std::slice::from_ref(&giis_url)),
                ServeOptions::default(),
            )
            .unwrap();
        }
        // Registration + first harvest round-trip.
        std::thread::sleep(Duration::from_millis(600));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let mut client = rt.client();
            let giis_url = giis_url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..10 {
                    if let Some((code, entries, _)) = client
                        .request(
                            &giis_url,
                            SearchSpec::subtree(
                                Dn::root(),
                                Filter::parse("(objectclass=computer)").unwrap(),
                            ),
                        )
                        .timeout(Duration::from_secs(5))
                        .send()
                        .outcome
                    {
                        if code == ResultCode::Success && entries.len() == 2 {
                            ok += 1;
                        }
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 40, "workers answer from the harvested snapshot");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_giis_chained_miss_reaches_owner() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis(giis, ServeOptions::default().with_workers(2))
            .unwrap();
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(
                fast_host_gris(name, i as u64, std::slice::from_ref(&giis_url)),
                ServeOptions::default(),
            )
            .unwrap();
        }
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .request(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
            .expect("worker forwards the miss; owner fans out");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn live_parallel_clients() {
        let mut rt = LiveRuntime::new(Duration::from_millis(5));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();

        let mut threads = Vec::new();
        for _ in 0..8 {
            let mut client = rt.client();
            let url = url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..20 {
                    if client
                        .request(&url, SearchSpec::lookup(Dn::parse("hn=n1").unwrap()))
                        .timeout(Duration::from_secs(5))
                        .send()
                        .outcome
                        .is_some()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 160, "all parallel queries answered");
        rt.shutdown();
    }
}
