//! Live multi-threaded runtime: the same GRIS/GIIS engines that run in
//! the simulator, executed over real OS threads and crossbeam channels.
//!
//! One thread per service; a shared [`Router`] plays the network. Clock
//! readings map wall time onto [`SimTime`] from the runtime's epoch, so
//! every soft-state TTL and cache TTL behaves identically to the
//! simulated runtime. This demonstrates the architecture's transport
//! independence and provides the substrate for the parallel-client
//! throughput benchmarks.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use gis_giis::{Giis, GiisAction};
use gis_gris::Gris;
use gis_ldap::{Entry, LdapUrl};
use gis_netsim::SimTime;
use gis_proto::{GripReply, GripRequest, GrrpMessage, RequestId, ResultCode, SearchSpec};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a message came from / should go back to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Address {
    /// A client handle.
    Client(u64),
    /// A service, by URL string (chained requests).
    Service(String),
}

/// Messages carried between live threads.
#[derive(Debug)]
pub enum LiveMsg {
    /// A GRIP request with its reply address.
    Request {
        /// Who asked.
        from: Address,
        /// The request.
        request: GripRequest,
    },
    /// A GRIP reply delivered to a *service* (chained-query responses).
    ReplyToService {
        /// URL of the replying server.
        from_url: String,
        /// The reply.
        reply: GripReply,
    },
    /// A GRRP notification.
    Grrp(GrrpMessage),
    /// Stop the service thread.
    Shutdown,
}

/// The shared "network": routes messages to service inboxes and client
/// reply channels.
#[derive(Default)]
pub struct Router {
    services: RwLock<HashMap<String, Sender<LiveMsg>>>,
    clients: RwLock<HashMap<u64, Sender<GripReply>>>,
}

impl Router {
    fn send_to_service(&self, url: &str, msg: LiveMsg) {
        if let Some(tx) = self.services.read().get(url) {
            let _ = tx.send(msg);
        }
        // Unknown or shut-down services silently drop traffic — exactly
        // the partition/failure semantics the protocols are built for.
    }

    fn send_to_client(&self, id: u64, reply: GripReply) {
        if let Some(tx) = self.clients.read().get(&id) {
            let _ = tx.send(reply);
        }
    }

    fn send_back(&self, addr: &Address, self_url: &str, reply: GripReply) {
        match addr {
            Address::Client(id) => self.send_to_client(*id, reply),
            Address::Service(url) => self.send_to_service(
                url,
                LiveMsg::ReplyToService {
                    from_url: self_url.to_owned(),
                    reply,
                },
            ),
        }
    }
}

/// The live runtime: spawns service threads, hands out client handles.
pub struct LiveRuntime {
    router: Arc<Router>,
    epoch: Instant,
    handles: Vec<(Sender<LiveMsg>, JoinHandle<()>)>,
    next_client: AtomicU64,
    tick: Duration,
}

impl LiveRuntime {
    /// Create a runtime whose service threads tick at `tick` granularity.
    pub fn new(tick: Duration) -> LiveRuntime {
        LiveRuntime {
            router: Arc::new(Router::default()),
            epoch: Instant::now(),
            handles: Vec::new(),
            next_client: AtomicU64::new(1),
            tick,
        }
    }

    /// Wall time mapped onto the simulation clock type.
    pub fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Run a GRIS on its own thread.
    pub fn spawn_gris(&mut self, mut gris: Gris) {
        let url = gris.config.url.to_string();
        let (tx, rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        self.router.services.write().insert(url.clone(), tx.clone());
        let router = Arc::clone(&self.router);
        let epoch = self.epoch;
        let tick = self.tick;
        let handle = std::thread::spawn(move || {
            let now = || SimTime(epoch.elapsed().as_micros() as u64);
            // Client-id interning: the engine keys sessions by u64.
            let mut ids: HashMap<Address, u64> = HashMap::new();
            let mut addrs: HashMap<u64, Address> = HashMap::new();
            let mut next = 1u64;
            loop {
                match rx.recv_timeout(tick) {
                    Ok(LiveMsg::Shutdown) => break,
                    Ok(LiveMsg::Request { from, request }) => {
                        let cid = *ids.entry(from.clone()).or_insert_with(|| {
                            let id = next;
                            next += 1;
                            addrs.insert(id, from.clone());
                            id
                        });
                        for reply in gris.handle_request(cid, request, now()) {
                            router.send_back(&from, &url, reply);
                        }
                    }
                    Ok(LiveMsg::Grrp(msg)) => {
                        gris.handle_grrp(&msg);
                    }
                    Ok(LiveMsg::ReplyToService { .. }) => {}
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let out = gris.tick(now());
                for (dir, msg) in out.registrations {
                    router.send_to_service(&dir.to_string(), LiveMsg::Grrp(msg));
                }
                for (cid, reply) in out.updates {
                    if let Some(addr) = addrs.get(&cid) {
                        router.send_back(addr, &url, reply);
                    }
                }
            }
        });
        self.handles.push((tx, handle));
    }

    /// Run a GIIS on its own thread.
    pub fn spawn_giis(&mut self, mut giis: Giis) {
        let url = giis.config.url.to_string();
        let (tx, rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        self.router.services.write().insert(url.clone(), tx.clone());
        let router = Arc::clone(&self.router);
        let epoch = self.epoch;
        let tick = self.tick;
        let handle = std::thread::spawn(move || {
            let now = || SimTime(epoch.elapsed().as_micros() as u64);
            let mut ids: HashMap<Address, u64> = HashMap::new();
            let mut addrs: HashMap<u64, Address> = HashMap::new();
            let mut next = 1u64;
            let perform =
                |actions: Vec<GiisAction>, router: &Router, addrs: &HashMap<u64, Address>| {
                    for action in actions {
                        match action {
                            GiisAction::SendRequest { to, request } => router.send_to_service(
                                &to.to_string(),
                                LiveMsg::Request {
                                    from: Address::Service(url.clone()),
                                    request,
                                },
                            ),
                            GiisAction::SendGrrp { to, message } => {
                                router.send_to_service(&to.to_string(), LiveMsg::Grrp(message))
                            }
                            GiisAction::Reply { client, reply } => {
                                if let Some(addr) = addrs.get(&client) {
                                    router.send_back(addr, &url, reply);
                                }
                            }
                        }
                    }
                };
            loop {
                match rx.recv_timeout(tick) {
                    Ok(LiveMsg::Shutdown) => break,
                    Ok(LiveMsg::Request { from, request }) => {
                        let cid = *ids.entry(from.clone()).or_insert_with(|| {
                            let id = next;
                            next += 1;
                            addrs.insert(id, from.clone());
                            id
                        });
                        let actions = giis.handle_request(cid, request, now());
                        perform(actions, &router, &addrs);
                    }
                    Ok(LiveMsg::ReplyToService { from_url, reply }) => {
                        let from = LdapUrl::parse(&from_url)
                            .unwrap_or_else(|_| LdapUrl::server("unknown"));
                        let actions = giis.handle_reply(&from, reply, now());
                        perform(actions, &router, &addrs);
                    }
                    Ok(LiveMsg::Grrp(msg)) => {
                        let actions = giis.handle_grrp(msg, now());
                        perform(actions, &router, &addrs);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let actions = giis.tick(now());
                perform(actions, &router, &addrs);
            }
        });
        self.handles.push((tx, handle));
    }

    /// Create a synchronous client handle. Handles are `Send`: spread
    /// them across threads for parallel-load benchmarks.
    pub fn client(&self) -> LiveClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1024);
        self.router.clients.write().insert(id, tx);
        LiveClient {
            id,
            rx,
            router: Arc::clone(&self.router),
            next_req: 1,
        }
    }

    /// Simulate a service failure: unregister its inbox and stop the
    /// thread. Soft state at directories will expire naturally.
    pub fn kill_service(&mut self, url: &LdapUrl) {
        if let Some(tx) = self.router.services.write().remove(&url.to_string()) {
            let _ = tx.send(LiveMsg::Shutdown);
        }
    }

    /// Shut down every service thread and join them.
    pub fn shutdown(mut self) {
        self.router.services.write().clear();
        for (tx, _) in &self.handles {
            let _ = tx.send(LiveMsg::Shutdown);
        }
        for (_, handle) in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A synchronous client of the live runtime.
pub struct LiveClient {
    id: u64,
    rx: Receiver<GripReply>,
    router: Arc<Router>,
    next_req: RequestId,
}

impl LiveClient {
    /// Send a raw request.
    pub fn send(
        &mut self,
        target: &LdapUrl,
        build: impl FnOnce(RequestId) -> GripRequest,
    ) -> RequestId {
        let id = self.next_req;
        self.next_req += 1;
        self.router.send_to_service(
            &target.to_string(),
            LiveMsg::Request {
                from: Address::Client(self.id),
                request: build(id),
            },
        );
        id
    }

    /// Issue a search and block (up to `timeout`) for its result.
    pub fn search(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
    ) -> Option<(ResultCode, Vec<Entry>, Vec<LdapUrl>)> {
        let id = self.send(target, |id| GripRequest::Search { id, spec });
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self.rx.recv_timeout(remaining) {
                Ok(GripReply::SearchResult {
                    id: rid,
                    code,
                    entries,
                    referrals,
                }) if rid == id => return Some((code, entries, referrals)),
                Ok(_) => continue, // stale reply from an earlier timeout
                Err(_) => return None,
            }
        }
    }

    /// Receive the next asynchronous reply (subscription updates).
    pub fn recv(&mut self, timeout: Duration) -> Option<GripReply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SimDeployment;
    use gis_giis::{Giis, GiisConfig};
    use gis_gris::HostSpec;
    use gis_ldap::{Dn, Filter};
    use gis_netsim::SimDuration;

    fn fast_host_gris(name: &str, seed: u64, dirs: &[LdapUrl]) -> Gris {
        let host = HostSpec::linux(name, 2);
        let mut gris = SimDeployment::standard_host_gris(&host, seed);
        gris.agent.interval = SimDuration::from_millis(100);
        gris.agent.ttl = SimDuration::from_millis(400);
        for d in dirs {
            gris.agent.add_target(d.clone());
        }
        gris
    }

    #[test]
    fn live_direct_query() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        let mut client = rt.client();
        let result = client.search(
            &url,
            SearchSpec::subtree(Dn::parse("hn=n1").unwrap(), Filter::always()),
            Duration::from_secs(5),
        );
        let (code, entries, _) = result.expect("live reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 4);
        rt.shutdown();
    }

    #[test]
    fn live_registration_and_chained_search() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        // Tighter chaining deadline for a fast test.
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis(giis);
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(fast_host_gris(
                name,
                i as u64,
                std::slice::from_ref(&giis_url),
            ));
        }
        // Let registrations propagate.
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("chained reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn live_killed_service_expires_from_directory() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(300),
        };
        rt.spawn_giis(giis);
        let gris = fast_host_gris("n1", 1, std::slice::from_ref(&giis_url));
        let gris_url = gris.config.url.clone();
        rt.spawn_gris(gris);
        std::thread::sleep(Duration::from_millis(400));

        let mut client = rt.client();
        let (_, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("host visible");
        assert_eq!(entries.len(), 1);

        rt.kill_service(&gris_url);
        // TTL 400ms: after ~1s the registration is swept.
        std::thread::sleep(Duration::from_millis(1200));
        let (code, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("directory still answers");
        assert_eq!(code, ResultCode::Success);
        assert!(entries.is_empty(), "dead host no longer listed");
        rt.shutdown();
    }

    #[test]
    fn live_subscription_updates_flow() {
        use gis_proto::{GripRequest, SubscriptionMode};
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        let mut client = rt.client();
        let sub_id = client.send(&url, |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("perf=load, hn=n1").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(SimDuration::from_millis(100)),
        });
        // Initial snapshot + at least two periodic deliveries within 1s.
        let mut updates = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while updates < 3 && std::time::Instant::now() < deadline {
            if let Some(reply) = client.recv(Duration::from_millis(200)) {
                if matches!(reply, gis_proto::GripReply::Update { id, .. } if id == sub_id) {
                    updates += 1;
                }
            }
        }
        assert!(
            updates >= 3,
            "periodic updates over live threads: {updates}"
        );
        // Unsubscribe stops the stream (allow in-flight deliveries).
        client.send(&url, |_| GripRequest::Unsubscribe { id: sub_id });
        std::thread::sleep(Duration::from_millis(300));
        while client.recv(Duration::from_millis(50)).is_some() {}
        assert!(
            client.recv(Duration::from_millis(300)).is_none(),
            "no updates after unsubscribe"
        );
        rt.shutdown();
    }

    #[test]
    fn live_parallel_clients() {
        let mut rt = LiveRuntime::new(Duration::from_millis(5));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);

        let mut threads = Vec::new();
        for _ in 0..8 {
            let mut client = rt.client();
            let url = url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..20 {
                    if client
                        .search(
                            &url,
                            SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                            Duration::from_secs(5),
                        )
                        .is_some()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 160, "all parallel queries answered");
        rt.shutdown();
    }
}
