//! Live multi-threaded runtime: the same GRIS/GIIS engines that run in
//! the simulator, executed over real OS threads and crossbeam channels.
//!
//! A shared [`Router`] plays the network. Clock readings map wall time
//! onto [`SimTime`] from the runtime's epoch, so every soft-state TTL and
//! cache TTL behaves identically to the simulated runtime. This
//! demonstrates the architecture's transport independence and provides
//! the substrate for the parallel-client throughput benchmarks.
//!
//! # Threading model
//!
//! Each service has one *owner* thread that holds the engine (`&mut`) and
//! performs every mutation: GRRP soft-state, harvest integration, chained
//! fan-out correlation, subscriptions, and the periodic `tick`. With
//! [`LiveRuntime::spawn_gris_pooled`] / [`spawn_giis_pooled`], N extra
//! *query worker* threads pull from the service's shared inbox and answer
//! the read path concurrently through the engine's cloneable query handle
//! ([`gis_gris::GrisQueryPath`] / [`gis_giis::GiisQueryPath`]); anything a
//! worker cannot handle (binds, subscriptions, GRRP, cache-missing
//! chained searches) is forwarded to the owner's private channel. The
//! plain `spawn_gris`/`spawn_giis` are the `workers = 0` special case:
//! the owner consumes the inbox directly, exactly the old single-thread
//! loop.
//!
//! [`spawn_giis_pooled`]: LiveRuntime::spawn_giis_pooled

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use gis_giis::{Giis, GiisAction, GiisQueryPath};
use gis_gris::Gris;
use gis_ldap::{Entry, LdapUrl};
use gis_netsim::{SimRng, SimTime};
use gis_proto::{
    GripReply, GripRequest, GrrpMessage, RequestId, ResultCode, SearchSpec, SpanRecord,
    TraceContext, TraceId, TraceSink,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a message came from / should go back to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Address {
    /// A client handle.
    Client(u64),
    /// A service, by URL string (chained requests).
    Service(String),
}

/// Messages carried between live threads.
#[derive(Debug)]
pub enum LiveMsg {
    /// A GRIP request with its reply address.
    Request {
        /// Who asked.
        from: Address,
        /// The request.
        request: GripRequest,
        /// Trace context, when the request is part of a traced query
        /// (the live analogue of the `ProtocolMessage::Traced` envelope).
        trace: Option<TraceContext>,
        /// When the message entered the queue it currently waits in
        /// (input to the `inbox-wait-us` histogram; reset on forward to
        /// the owner so each reading measures one queue).
        enqueued: Instant,
    },
    /// A GRIP reply delivered to a *service* (chained-query responses).
    ReplyToService {
        /// URL of the replying server.
        from_url: String,
        /// The reply.
        reply: GripReply,
    },
    /// A GRRP notification.
    Grrp(GrrpMessage),
    /// Control message: re-announce to registration targets immediately
    /// (sent by the runtime when a paused service is resumed).
    Reannounce,
    /// Stop the service thread.
    Shutdown,
}

/// Interns reply addresses as the `u64` client ids the engines key
/// sessions by. Shared between a service's owner thread and its query
/// workers so an id minted by either side means the same address.
#[derive(Clone)]
struct ClientInterner {
    inner: Arc<Mutex<InternerState>>,
}

struct InternerState {
    ids: HashMap<Address, u64>,
    addrs: HashMap<u64, Address>,
    next: u64,
}

impl ClientInterner {
    fn new() -> ClientInterner {
        ClientInterner {
            inner: Arc::new(Mutex::new(InternerState {
                ids: HashMap::new(),
                addrs: HashMap::new(),
                next: 1,
            })),
        }
    }

    fn intern(&self, addr: &Address) -> u64 {
        let mut s = self.inner.lock();
        if let Some(&id) = s.ids.get(addr) {
            return id;
        }
        let id = s.next;
        s.next += 1;
        s.ids.insert(addr.clone(), id);
        s.addrs.insert(id, addr.clone());
        id
    }

    fn address_of(&self, id: u64) -> Option<Address> {
        self.inner.lock().addrs.get(&id).cloned()
    }
}

/// Injected fault state for one service's inbound link, mirroring the
/// simulator's [`gis_netsim::LinkConfig`] loss/latency knobs plus the
/// crash-style `paused` blackhole.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceFault {
    /// Probability in `[0, 1]` that an inbound message is dropped.
    pub drop: f64,
    /// Extra delivery latency added to every inbound message.
    pub latency: Duration,
    /// When true, all inbound traffic is discarded (the live analogue of
    /// a simulator crash or partition: the thread keeps running but the
    /// network no longer reaches it).
    pub paused: bool,
}

/// The fault-injection plan attached to the live [`Router`]: per-service
/// fault state plus a seeded RNG so drop decisions replay deterministically
/// for a given seed and message order.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<String, ServiceFault>,
    rng: Option<SimRng>,
}

/// What the fault plan decided for one message.
enum Verdict {
    Deliver,
    DeliverAfter(Duration),
    DropFault,
    DropPaused,
}

impl FaultPlan {
    fn verdict(&mut self, url: &str) -> Verdict {
        let Some(fault) = self.faults.get(url) else {
            return Verdict::Deliver;
        };
        if fault.paused {
            return Verdict::DropPaused;
        }
        if fault.drop > 0.0 {
            let hit = self
                .rng
                .get_or_insert_with(|| SimRng::new(0))
                .chance(fault.drop);
            if hit {
                return Verdict::DropFault;
            }
        }
        if fault.latency > Duration::ZERO {
            return Verdict::DeliverAfter(fault.latency);
        }
        Verdict::Deliver
    }
}

/// Counters the live router keeps, mirroring the simulator's
/// [`gis_netsim::NetMetrics`]: every send is accounted for, including the
/// previously-invisible drops to unknown services.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveNetMetrics {
    /// Messages handed to the router for a service.
    pub sent: u64,
    /// Messages placed on a service inbox.
    pub delivered: u64,
    /// Drops because no service with that URL is registered (killed,
    /// never spawned, or mis-addressed).
    pub dropped_unknown: u64,
    /// Drops from an injected loss probability.
    pub dropped_fault: u64,
    /// Drops because the destination service is paused.
    pub dropped_paused: u64,
    /// Deliveries that had injected latency applied.
    pub delayed: u64,
}

#[derive(Default)]
struct RouterCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_unknown: AtomicU64,
    dropped_fault: AtomicU64,
    dropped_paused: AtomicU64,
    delayed: AtomicU64,
}

/// The shared "network": routes messages to service inboxes and client
/// reply channels, applying the [`FaultPlan`] on the way.
#[derive(Default)]
pub struct Router {
    services: RwLock<HashMap<String, Sender<LiveMsg>>>,
    clients: RwLock<HashMap<u64, Sender<GripReply>>>,
    faults: Mutex<FaultPlan>,
    counters: RouterCounters,
}

impl Router {
    fn send_to_service(self: &Arc<Self>, url: &str, msg: LiveMsg) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        match self.faults.lock().verdict(url) {
            Verdict::Deliver => self.deliver(url, msg),
            Verdict::DropFault => {
                self.counters.dropped_fault.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::DropPaused => {
                self.counters.dropped_paused.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::DeliverAfter(delay) => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                let router = Arc::clone(self);
                let url = url.to_owned();
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    router.deliver(&url, msg);
                });
            }
        }
    }

    fn deliver(&self, url: &str, msg: LiveMsg) {
        if let Some(tx) = self.services.read().get(url) {
            if tx.send(msg).is_ok() {
                self.counters.delivered.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Unknown or shut-down services drop traffic — the partition /
        // failure semantics the protocols are built for — but the drop
        // is now counted rather than silent.
        self.counters
            .dropped_unknown
            .fetch_add(1, Ordering::Relaxed);
    }

    fn send_to_client(&self, id: u64, reply: GripReply) {
        if let Some(tx) = self.clients.read().get(&id) {
            let _ = tx.send(reply);
        }
    }

    fn send_back(self: &Arc<Self>, addr: &Address, self_url: &str, reply: GripReply) {
        match addr {
            Address::Client(id) => self.send_to_client(*id, reply),
            Address::Service(url) => self.send_to_service(
                url,
                LiveMsg::ReplyToService {
                    from_url: self_url.to_owned(),
                    reply,
                },
            ),
        }
    }

    fn metrics(&self) -> LiveNetMetrics {
        LiveNetMetrics {
            sent: self.counters.sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped_unknown: self.counters.dropped_unknown.load(Ordering::Relaxed),
            dropped_fault: self.counters.dropped_fault.load(Ordering::Relaxed),
            dropped_paused: self.counters.dropped_paused.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
        }
    }
}

/// Execute a batch of GIIS effects against the live network. Shared by
/// the owner loop and the query workers.
fn perform_giis_actions(
    actions: Vec<GiisAction>,
    router: &Arc<Router>,
    interner: &ClientInterner,
    url: &str,
) {
    for action in actions {
        match action {
            GiisAction::SendRequest { to, request, trace } => router.send_to_service(
                &to.to_string(),
                LiveMsg::Request {
                    from: Address::Service(url.to_owned()),
                    request,
                    trace,
                    enqueued: Instant::now(),
                },
            ),
            GiisAction::SendGrrp { to, message } => {
                router.send_to_service(&to.to_string(), LiveMsg::Grrp(message))
            }
            GiisAction::Reply { client, reply } => {
                if let Some(addr) = interner.address_of(client) {
                    router.send_back(&addr, url, reply);
                }
            }
        }
    }
}

/// The live runtime: spawns service threads, hands out client handles.
pub struct LiveRuntime {
    router: Arc<Router>,
    epoch: Instant,
    handles: Vec<(Sender<LiveMsg>, JoinHandle<()>)>,
    next_client: AtomicU64,
    tick: Duration,
    sink: Arc<TraceSink>,
}

impl LiveRuntime {
    /// Create a runtime whose service threads tick at `tick` granularity.
    pub fn new(tick: Duration) -> LiveRuntime {
        LiveRuntime {
            router: Arc::new(Router::default()),
            epoch: Instant::now(),
            handles: Vec::new(),
            next_client: AtomicU64::new(1),
            tick,
            sink: Arc::new(TraceSink::new()),
        }
    }

    /// Wall time mapped onto the simulation clock type.
    pub fn now(&self) -> SimTime {
        SimTime::wall(self.epoch)
    }

    /// The shared span sink every spawned service records into. Traces
    /// started by [`LiveClient::search_traced`] assemble here.
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.sink)
    }

    /// Run a GRIS on its own thread (no query workers).
    pub fn spawn_gris(&mut self, gris: Gris) {
        self.spawn_gris_pooled(gris, 0);
    }

    /// Run a GRIS with `workers` query threads sharing its inbox. Workers
    /// answer `Search` requests concurrently through the engine's
    /// [`gis_gris::GrisQueryPath`]; binds, subscriptions, GRRP traffic
    /// and the periodic tick stay on the owner thread. `workers = 0`
    /// degenerates to the single-threaded loop.
    pub fn spawn_gris_pooled(&mut self, mut gris: Gris, workers: usize) {
        let url = gris.config.url.to_string();
        let (owner_tx, owner_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        let interner = ClientInterner::new();
        let epoch = self.epoch;
        let tick = self.tick;
        gris.set_trace_sink(Arc::clone(&self.sink));
        let obs_on = gris.config.observability;
        let registry = gris.metrics();
        let inbox_wait = registry.histogram("inbox-wait-us");
        let inbox_depth = registry.gauge("inbox-depth");

        let inbox_tx = if workers == 0 {
            owner_tx.clone()
        } else {
            let query = gris.query_path();
            let (in_tx, in_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
            for _ in 0..workers {
                let worker_in_tx = in_tx.clone();
                let in_rx = in_rx.clone();
                let owner_tx = owner_tx.clone();
                let query = query.clone();
                let interner = interner.clone();
                let router = Arc::clone(&self.router);
                let url = url.clone();
                let inbox_wait = Arc::clone(&inbox_wait);
                let inbox_depth = Arc::clone(&inbox_depth);
                let handle = std::thread::spawn(move || {
                    let now = || SimTime::wall(epoch);
                    loop {
                        match in_rx.recv() {
                            Ok(LiveMsg::Request {
                                from,
                                request,
                                trace,
                                enqueued,
                            }) => {
                                if obs_on {
                                    inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                                    inbox_depth.set(in_rx.len() as u64);
                                }
                                let cid = interner.intern(&from);
                                match query.handle_query_traced(cid, request, trace, now()) {
                                    Ok(replies) => {
                                        for reply in replies {
                                            router.send_back(&from, &url, reply);
                                        }
                                    }
                                    // Mutation-path request: the owner's.
                                    Err(request) => {
                                        let _ = owner_tx.send(LiveMsg::Request {
                                            from,
                                            request,
                                            trace,
                                            enqueued: Instant::now(),
                                        });
                                    }
                                }
                            }
                            Ok(LiveMsg::Shutdown) => {
                                // Propagate to sibling workers and the
                                // owner, then exit.
                                let _ = worker_in_tx.send(LiveMsg::Shutdown);
                                let _ = owner_tx.send(LiveMsg::Shutdown);
                                break;
                            }
                            Ok(other) => {
                                let _ = owner_tx.send(other);
                            }
                            Err(_) => break,
                        }
                    }
                });
                self.handles.push((in_tx.clone(), handle));
            }
            in_tx
        };

        self.router
            .services
            .write()
            .insert(url.clone(), inbox_tx.clone());
        let router = Arc::clone(&self.router);
        let handle = std::thread::spawn(move || {
            let now = || SimTime::wall(epoch);
            loop {
                match owner_rx.recv_timeout(tick) {
                    Ok(LiveMsg::Shutdown) => break,
                    Ok(LiveMsg::Request {
                        from,
                        request,
                        trace,
                        enqueued,
                    }) => {
                        if obs_on {
                            inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                            inbox_depth.set(owner_rx.len() as u64);
                        }
                        let cid = interner.intern(&from);
                        for reply in gris.handle_request_traced(cid, request, trace, now()) {
                            router.send_back(&from, &url, reply);
                        }
                    }
                    Ok(LiveMsg::Grrp(msg)) => {
                        gris.handle_grrp(&msg);
                    }
                    Ok(LiveMsg::Reannounce) => gris.agent.reannounce(),
                    Ok(LiveMsg::ReplyToService { .. }) => {}
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let out = gris.tick(now());
                for (dir, msg) in out.registrations {
                    router.send_to_service(&dir.to_string(), LiveMsg::Grrp(msg));
                }
                for (cid, reply) in out.updates {
                    if let Some(addr) = interner.address_of(cid) {
                        router.send_back(&addr, &url, reply);
                    }
                }
            }
        });
        self.handles.push((inbox_tx, handle));
    }

    /// Run a GIIS on its own thread (no query workers).
    pub fn spawn_giis(&mut self, giis: Giis) {
        self.spawn_giis_pooled(giis, 0);
    }

    /// Run a GIIS with `workers` query threads sharing its inbox. Workers
    /// answer what the engine's [`GiisQueryPath`] can serve without the
    /// owner — harvested-cache searches, chained-result-cache hits — and
    /// forward everything else (registrations, fan-out replies, cache
    /// misses) to the owner thread. `workers = 0` degenerates to the
    /// single-threaded loop.
    pub fn spawn_giis_pooled(&mut self, mut giis: Giis, workers: usize) {
        let url = giis.config.url.to_string();
        let (owner_tx, owner_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
        let interner = ClientInterner::new();
        let epoch = self.epoch;
        let tick = self.tick;
        giis.set_trace_sink(Arc::clone(&self.sink));
        let obs_on = giis.config.observability;
        let registry = giis.metrics();
        let inbox_wait = registry.histogram("inbox-wait-us");
        let inbox_depth = registry.gauge("inbox-depth");

        let inbox_tx = if workers == 0 {
            owner_tx.clone()
        } else {
            let query: GiisQueryPath = giis.query_path();
            let (in_tx, in_rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = unbounded();
            for _ in 0..workers {
                let worker_in_tx = in_tx.clone();
                let in_rx = in_rx.clone();
                let owner_tx = owner_tx.clone();
                let query = query.clone();
                let interner = interner.clone();
                let router = Arc::clone(&self.router);
                let url = url.clone();
                let inbox_wait = Arc::clone(&inbox_wait);
                let inbox_depth = Arc::clone(&inbox_depth);
                let handle = std::thread::spawn(move || {
                    let now = || SimTime::wall(epoch);
                    loop {
                        match in_rx.recv() {
                            Ok(LiveMsg::Request {
                                from,
                                request,
                                trace,
                                enqueued,
                            }) => {
                                if obs_on {
                                    inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                                    inbox_depth.set(in_rx.len() as u64);
                                }
                                let cid = interner.intern(&from);
                                match query.handle_query_traced(cid, request, trace, now()) {
                                    Ok(actions) => {
                                        perform_giis_actions(actions, &router, &interner, &url)
                                    }
                                    Err(request) => {
                                        let _ = owner_tx.send(LiveMsg::Request {
                                            from,
                                            request,
                                            trace,
                                            enqueued: Instant::now(),
                                        });
                                    }
                                }
                            }
                            Ok(LiveMsg::Shutdown) => {
                                let _ = worker_in_tx.send(LiveMsg::Shutdown);
                                let _ = owner_tx.send(LiveMsg::Shutdown);
                                break;
                            }
                            Ok(other) => {
                                let _ = owner_tx.send(other);
                            }
                            Err(_) => break,
                        }
                    }
                });
                self.handles.push((in_tx.clone(), handle));
            }
            in_tx
        };

        self.router
            .services
            .write()
            .insert(url.clone(), inbox_tx.clone());
        let router = Arc::clone(&self.router);
        let handle = std::thread::spawn(move || {
            let now = || SimTime::wall(epoch);
            loop {
                match owner_rx.recv_timeout(tick) {
                    Ok(LiveMsg::Shutdown) => break,
                    Ok(LiveMsg::Request {
                        from,
                        request,
                        trace,
                        enqueued,
                    }) => {
                        if obs_on {
                            inbox_wait.record(enqueued.elapsed().as_micros() as u64);
                            inbox_depth.set(owner_rx.len() as u64);
                        }
                        let cid = interner.intern(&from);
                        let actions = giis.handle_request_traced(cid, request, trace, now());
                        perform_giis_actions(actions, &router, &interner, &url);
                    }
                    Ok(LiveMsg::ReplyToService { from_url, reply }) => {
                        // A malformed source URL cannot be correlated to
                        // a child; drop the reply instead of attributing
                        // it to a placeholder server.
                        if let Ok(from) = LdapUrl::parse(&from_url) {
                            let actions = giis.handle_reply(&from, reply, now());
                            perform_giis_actions(actions, &router, &interner, &url);
                        }
                    }
                    Ok(LiveMsg::Grrp(msg)) => {
                        let actions = giis.handle_grrp(msg, now());
                        perform_giis_actions(actions, &router, &interner, &url);
                    }
                    Ok(LiveMsg::Reannounce) => giis.agent.reannounce(),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let actions = giis.tick(now());
                perform_giis_actions(actions, &router, &interner, &url);
            }
        });
        self.handles.push((inbox_tx, handle));
    }

    /// Create a synchronous client handle. Handles are `Send`: spread
    /// them across threads for parallel-load benchmarks.
    pub fn client(&self) -> LiveClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1024);
        self.router.clients.write().insert(id, tx);
        LiveClient {
            id,
            rx,
            router: Arc::clone(&self.router),
            next_req: 1,
            rng: SimRng::new(id),
            epoch: self.epoch,
            sink: Arc::clone(&self.sink),
        }
    }

    /// Simulate a service failure: unregister its inbox and stop the
    /// thread. Soft state at directories will expire naturally. A
    /// crash+restart is this followed by `spawn_gris`/`spawn_giis` with a
    /// fresh engine; the new agent re-announces on its first tick.
    pub fn kill_service(&mut self, url: &LdapUrl) {
        if let Some(tx) = self.router.services.write().remove(&url.to_string()) {
            let _ = tx.send(LiveMsg::Shutdown);
        }
    }

    /// Install (or replace) the injected fault state for one service's
    /// inbound link.
    pub fn set_fault(&self, url: &LdapUrl, fault: ServiceFault) {
        self.router
            .faults
            .lock()
            .faults
            .insert(url.to_string(), fault);
    }

    /// Remove the injected fault state for one service.
    pub fn clear_fault(&self, url: &LdapUrl) {
        self.router.faults.lock().faults.remove(&url.to_string());
    }

    /// Remove all injected faults (the netsim `heal_all` analogue).
    pub fn heal_all(&self) {
        self.router.faults.lock().faults.clear();
    }

    /// Seed the fault plan's RNG so drop decisions are reproducible for
    /// a given seed and message order.
    pub fn set_fault_seed(&self, seed: u64) {
        self.router.faults.lock().rng = Some(SimRng::new(seed));
    }

    /// Pause a service: blackhole its inbound traffic (netsim's crash
    /// semantics — the thread lives, the network no longer reaches it).
    pub fn pause_service(&self, url: &LdapUrl) {
        let mut plan = self.router.faults.lock();
        plan.faults.entry(url.to_string()).or_default().paused = true;
    }

    /// Resume a paused service and tell it to re-announce immediately,
    /// closing the visibility gap before the next scheduled refresh.
    pub fn resume_service(&self, url: &LdapUrl) {
        {
            let mut plan = self.router.faults.lock();
            plan.faults.entry(url.to_string()).or_default().paused = false;
        }
        self.router
            .send_to_service(&url.to_string(), LiveMsg::Reannounce);
    }

    /// Snapshot of the router's traffic counters.
    pub fn net_metrics(&self) -> LiveNetMetrics {
        self.router.metrics()
    }

    /// Shut down every service thread and join them.
    pub fn shutdown(mut self) {
        self.router.services.write().clear();
        for (tx, _) in &self.handles {
            let _ = tx.send(LiveMsg::Shutdown);
        }
        for (_, handle) in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Client-side retry policy: per-attempt deadline plus jittered
/// exponential backoff between attempts ("retry storms" are the client
/// half of the thundering-herd problem the GRRP jitter addresses on the
/// registration path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for each individual attempt.
    pub attempt_timeout: Duration,
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempt_timeout: Duration::from_secs(1),
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// A synchronous client of the live runtime.
pub struct LiveClient {
    id: u64,
    rx: Receiver<GripReply>,
    router: Arc<Router>,
    next_req: RequestId,
    /// Jitter source for retry backoff, seeded from the client id so a
    /// fleet of clients desynchronizes deterministically.
    rng: SimRng,
    epoch: Instant,
    sink: Arc<TraceSink>,
}

/// Terminal result of one client search: code, entries, referrals.
pub type SearchOutcome = (ResultCode, Vec<Entry>, Vec<LdapUrl>);

impl LiveClient {
    fn now(&self) -> SimTime {
        SimTime::wall(self.epoch)
    }

    /// Send a raw request.
    pub fn send(
        &mut self,
        target: &LdapUrl,
        build: impl FnOnce(RequestId) -> GripRequest,
    ) -> RequestId {
        let id = self.next_req;
        self.next_req += 1;
        self.router.send_to_service(
            &target.to_string(),
            LiveMsg::Request {
                from: Address::Client(self.id),
                request: build(id),
                trace: None,
                enqueued: Instant::now(),
            },
        );
        id
    }

    /// Issue a search and block (up to `timeout`) for its result.
    pub fn search(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
    ) -> Option<SearchOutcome> {
        let id = self.send(target, |id| GripRequest::Search { id, spec });
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self.rx.recv_timeout(remaining) {
                Ok(GripReply::SearchResult {
                    id: rid,
                    code,
                    entries,
                    referrals,
                }) if rid == id => return Some((code, entries, referrals)),
                Ok(_) => continue, // stale reply from an earlier timeout
                Err(_) => return None,
            }
        }
    }

    /// Issue a traced search: mints a fresh trace id, propagates the
    /// context through every hop (GIIS fan-out included), and records the
    /// client's root span when the reply arrives or the deadline passes.
    /// The returned [`TraceId`] keys the assembled span tree in the
    /// runtime's [`TraceSink`] (see [`LiveRuntime::trace_sink`]).
    pub fn search_traced(
        &mut self,
        target: &LdapUrl,
        spec: SearchSpec,
        timeout: Duration,
    ) -> (TraceId, Option<SearchOutcome>) {
        let root = self.sink.next_span();
        let trace = TraceId(root);
        let id = self.next_req;
        self.next_req += 1;
        let start = self.now();
        self.router.send_to_service(
            &target.to_string(),
            LiveMsg::Request {
                from: Address::Client(self.id),
                request: GripRequest::Search { id, spec },
                trace: Some(TraceContext {
                    trace,
                    parent: root,
                }),
                enqueued: Instant::now(),
            },
        );
        let deadline = Instant::now() + timeout;
        let result = loop {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break None;
            };
            match self.rx.recv_timeout(remaining) {
                Ok(GripReply::SearchResult {
                    id: rid,
                    code,
                    entries,
                    referrals,
                }) if rid == id => break Some((code, entries, referrals)),
                Ok(_) => continue,
                Err(_) => break None,
            }
        };
        self.sink.record(SpanRecord {
            trace,
            span: root,
            parent: None,
            service: format!("client:{}", self.id),
            name: "client.search".into(),
            start,
            end: self.now(),
            outcome: match &result {
                Some((code, ..)) => code.label().to_string(),
                None => "timeout".to_string(),
            },
        });
        (trace, result)
    }

    /// Issue a search with per-attempt deadlines and jittered exponential
    /// backoff between attempts. Each attempt is a fresh request id, so a
    /// late reply to an abandoned attempt is discarded, not mistaken for
    /// the current one.
    pub fn search_with_retry(
        &mut self,
        target: &LdapUrl,
        spec: &SearchSpec,
        policy: RetryPolicy,
    ) -> Option<SearchOutcome> {
        for attempt in 0..policy.max_attempts.max(1) {
            if let Some(result) = self.search(target, spec.clone(), policy.attempt_timeout) {
                return Some(result);
            }
            if attempt + 1 < policy.max_attempts {
                let exp = policy
                    .base_backoff
                    .saturating_mul(1u32 << attempt.min(16))
                    .min(policy.max_backoff);
                // Full-jitter half-spread: sleep in [exp/2, exp).
                let frac = 0.5 + self.rng.next_f64() / 2.0;
                std::thread::sleep(exp.mul_f64(frac));
            }
        }
        None
    }

    /// Receive the next asynchronous reply (subscription updates).
    pub fn recv(&mut self, timeout: Duration) -> Option<GripReply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SimDeployment;
    use gis_giis::{Giis, GiisConfig};
    use gis_gris::HostSpec;
    use gis_ldap::{Dn, Filter};
    use gis_netsim::SimDuration;

    fn fast_host_gris(name: &str, seed: u64, dirs: &[LdapUrl]) -> Gris {
        let host = HostSpec::linux(name, 2);
        let mut gris = SimDeployment::standard_host_gris(&host, seed);
        gris.agent.interval = SimDuration::from_millis(100);
        gris.agent.ttl = SimDuration::from_millis(400);
        for d in dirs {
            gris.agent.add_target(d.clone());
        }
        gris
    }

    #[test]
    fn live_direct_query() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        let mut client = rt.client();
        let result = client.search(
            &url,
            SearchSpec::subtree(Dn::parse("hn=n1").unwrap(), Filter::always()),
            Duration::from_secs(5),
        );
        let (code, entries, _) = result.expect("live reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 4);
        rt.shutdown();
    }

    #[test]
    fn live_registration_and_chained_search() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        // Tighter chaining deadline for a fast test.
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis(giis);
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(fast_host_gris(
                name,
                i as u64,
                std::slice::from_ref(&giis_url),
            ));
        }
        // Let registrations propagate.
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("chained reply");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn live_killed_service_expires_from_directory() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(300),
        };
        rt.spawn_giis(giis);
        let gris = fast_host_gris("n1", 1, std::slice::from_ref(&giis_url));
        let gris_url = gris.config.url.clone();
        rt.spawn_gris(gris);
        std::thread::sleep(Duration::from_millis(400));

        let mut client = rt.client();
        let (_, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("host visible");
        assert_eq!(entries.len(), 1);

        rt.kill_service(&gris_url);
        // TTL 400ms: after ~1s the registration is swept.
        std::thread::sleep(Duration::from_millis(1200));
        let (code, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("directory still answers");
        assert_eq!(code, ResultCode::Success);
        assert!(entries.is_empty(), "dead host no longer listed");
        rt.shutdown();
    }

    #[test]
    fn live_subscription_updates_flow() {
        use gis_proto::{GripRequest, SubscriptionMode};
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        let mut client = rt.client();
        let sub_id = client.send(&url, |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("perf=load, hn=n1").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(SimDuration::from_millis(100)),
        });
        // Initial snapshot + at least two periodic deliveries within 1s.
        let mut updates = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while updates < 3 && std::time::Instant::now() < deadline {
            if let Some(reply) = client.recv(Duration::from_millis(200)) {
                if matches!(reply, gis_proto::GripReply::Update { id, .. } if id == sub_id) {
                    updates += 1;
                }
            }
        }
        assert!(
            updates >= 3,
            "periodic updates over live threads: {updates}"
        );
        // Unsubscribe stops the stream (allow in-flight deliveries).
        client.send(&url, |_| GripRequest::Unsubscribe { id: sub_id });
        std::thread::sleep(Duration::from_millis(300));
        while client.recv(Duration::from_millis(50)).is_some() {}
        assert!(
            client.recv(Duration::from_millis(300)).is_none(),
            "no updates after unsubscribe"
        );
        rt.shutdown();
    }

    #[test]
    fn live_paused_service_blackholes_then_resumes() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        let mut client = rt.client();
        let spec = SearchSpec::lookup(Dn::parse("hn=n1").unwrap());

        rt.pause_service(&url);
        assert!(
            client
                .search(&url, spec.clone(), Duration::from_millis(300))
                .is_none(),
            "paused service is unreachable"
        );
        let m = rt.net_metrics();
        assert!(m.dropped_paused >= 1, "pause drops are counted: {m:?}");

        rt.resume_service(&url);
        assert!(
            client.search(&url, spec, Duration::from_secs(5)).is_some(),
            "resumed service answers again"
        );
        rt.shutdown();
    }

    #[test]
    fn live_injected_latency_delays_delivery() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        rt.set_fault(
            &url,
            ServiceFault {
                drop: 0.0,
                latency: Duration::from_millis(200),
                paused: false,
            },
        );
        let mut client = rt.client();
        let started = Instant::now();
        let result = client.search(
            &url,
            SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
            Duration::from_secs(5),
        );
        assert!(result.is_some(), "delayed message still delivered");
        assert!(
            started.elapsed() >= Duration::from_millis(200),
            "request path carried the injected latency"
        );
        assert!(rt.net_metrics().delayed >= 1);
        rt.shutdown();
    }

    #[test]
    fn live_full_loss_drops_deterministically() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        rt.set_fault_seed(42);
        rt.set_fault(
            &url,
            ServiceFault {
                drop: 1.0,
                latency: Duration::ZERO,
                paused: false,
            },
        );
        let mut client = rt.client();
        assert!(
            client
                .search(
                    &url,
                    SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                    Duration::from_millis(300),
                )
                .is_none(),
            "total loss yields no answer"
        );
        assert!(rt.net_metrics().dropped_fault >= 1);

        rt.heal_all();
        assert!(
            client
                .search(
                    &url,
                    SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                    Duration::from_secs(5),
                )
                .is_some(),
            "healed link delivers"
        );
        rt.shutdown();
    }

    #[test]
    fn live_search_with_retry_outlasts_transient_outage() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);
        rt.pause_service(&url);

        // Heal the outage from another thread while the client is mid-retry.
        let rt_ref = &rt;
        let heal_url = url.clone();
        let result = std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(350));
                rt_ref.resume_service(&heal_url);
            });
            let mut client = rt_ref.client();
            client.search_with_retry(
                &url,
                &SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                RetryPolicy {
                    attempt_timeout: Duration::from_millis(200),
                    max_attempts: 8,
                    base_backoff: Duration::from_millis(40),
                    max_backoff: Duration::from_millis(200),
                },
            )
        });
        let (code, entries, _) = result.expect("a later attempt lands after the heal");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1);
        rt.shutdown();
    }

    #[test]
    fn live_pooled_gris_answers_in_parallel() {
        let mut rt = LiveRuntime::new(Duration::from_millis(5));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris_pooled(gris, 4);

        let mut threads = Vec::new();
        for _ in 0..8 {
            let mut client = rt.client();
            let url = url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..20 {
                    if client
                        .search(
                            &url,
                            SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                            Duration::from_secs(5),
                        )
                        .is_some()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 160, "all queries answered through the worker pool");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_gris_mutation_path_still_works() {
        use gis_proto::{GripRequest, SubscriptionMode};
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris_pooled(gris, 2);
        let mut client = rt.client();
        // Subscriptions are owner-thread work: a worker must forward the
        // request, and updates must still reach the client.
        let sub_id = client.send(&url, |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("perf=load, hn=n1").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(SimDuration::from_millis(100)),
        });
        let mut updates = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while updates < 2 && std::time::Instant::now() < deadline {
            if let Some(reply) = client.recv(Duration::from_millis(200)) {
                if matches!(reply, gis_proto::GripReply::Update { id, .. } if id == sub_id) {
                    updates += 1;
                }
            }
        }
        assert!(updates >= 2, "subscription updates via pooled spawn");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_giis_serves_harvested_snapshots() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Harvest {
            refresh: SimDuration::from_millis(200),
        };
        rt.spawn_giis_pooled(giis, 4);
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(fast_host_gris(
                name,
                i as u64,
                std::slice::from_ref(&giis_url),
            ));
        }
        // Registration + first harvest round-trip.
        std::thread::sleep(Duration::from_millis(600));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let mut client = rt.client();
            let giis_url = giis_url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..10 {
                    if let Some((code, entries, _)) = client.search(
                        &giis_url,
                        SearchSpec::subtree(
                            Dn::root(),
                            Filter::parse("(objectclass=computer)").unwrap(),
                        ),
                        Duration::from_secs(5),
                    ) {
                        if code == ResultCode::Success && entries.len() == 2 {
                            ok += 1;
                        }
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 40, "workers answer from the harvested snapshot");
        rt.shutdown();
    }

    #[test]
    fn live_pooled_giis_chained_miss_reaches_owner() {
        let mut rt = LiveRuntime::new(Duration::from_millis(10));
        let giis_url = LdapUrl::server("giis.vo");
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        );
        giis.config.mode = gis_giis::GiisMode::Chain {
            timeout: SimDuration::from_millis(500),
        };
        rt.spawn_giis_pooled(giis, 2);
        for (i, name) in ["n1", "n2"].iter().enumerate() {
            rt.spawn_gris(fast_host_gris(
                name,
                i as u64,
                std::slice::from_ref(&giis_url),
            ));
        }
        std::thread::sleep(Duration::from_millis(400));
        let mut client = rt.client();
        let (code, entries, _) = client
            .search(
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                Duration::from_secs(5),
            )
            .expect("worker forwards the miss; owner fans out");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn live_parallel_clients() {
        let mut rt = LiveRuntime::new(Duration::from_millis(5));
        let gris = fast_host_gris("n1", 1, &[]);
        let url = gris.config.url.clone();
        rt.spawn_gris(gris);

        let mut threads = Vec::new();
        for _ in 0..8 {
            let mut client = rt.client();
            let url = url.clone();
            threads.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..20 {
                    if client
                        .search(
                            &url,
                            SearchSpec::lookup(Dn::parse("hn=n1").unwrap()),
                            Duration::from_secs(5),
                        )
                        .is_some()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 160, "all parallel queries answered");
        rt.shutdown();
    }
}
