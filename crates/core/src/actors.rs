//! Simulation-runtime actors: GRIS, GIIS and client state machines bound
//! to the deterministic network simulator.
//!
//! The protocol engines in `gis-gris`/`gis-giis` are sans-IO; these
//! adapters move their messages over `gis-netsim` and drive their timers.
//! Service endpoints are addressed by LDAP URL; a shared [`NameService`]
//! (the deployment's bootstrap "DNS") maps URLs to simulator nodes.

use gis_giis::{Giis, GiisAction};
use gis_gris::Gris;
use gis_ldap::LdapUrl;
use gis_netsim::{Actor, Ctx, NodeId, SimDuration, SimTime};
use gis_proto::{GripReply, GripRequest, ProtocolMessage, RequestId, SearchSpec};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Maps service URLs to simulator nodes (and back). Stands in for DNS +
/// the static bootstrap configuration of §9.
#[derive(Clone, Default)]
pub struct NameService {
    inner: Arc<RwLock<NameMaps>>,
}

#[derive(Default)]
struct NameMaps {
    by_url: HashMap<String, NodeId>,
    by_node: HashMap<NodeId, LdapUrl>,
}

impl NameService {
    /// Empty name service.
    pub fn new() -> NameService {
        NameService::default()
    }

    /// Register a service endpoint.
    pub fn register(&self, url: &LdapUrl, node: NodeId) {
        let mut maps = self.inner.write();
        maps.by_url.insert(url.to_string(), node);
        maps.by_node.insert(node, url.clone());
    }

    /// Resolve a URL to its node.
    pub fn resolve(&self, url: &LdapUrl) -> Option<NodeId> {
        self.inner.read().by_url.get(&url.to_string()).copied()
    }

    /// Reverse-resolve a node to its URL.
    pub fn url_of(&self, node: NodeId) -> Option<LdapUrl> {
        self.inner.read().by_node.get(&node).cloned()
    }
}

/// Timer token used by service actors for their periodic tick.
const TICK: u64 = 0;

/// A GRIS bound to a simulator node.
pub struct GrisActor {
    /// The protocol engine (public so experiments can inspect stats and
    /// inject provider failures via `Sim::actor_mut`).
    pub gris: Gris,
    names: NameService,
    tick_every: SimDuration,
}

impl GrisActor {
    /// Wrap a GRIS engine; `tick_every` bounds timer granularity
    /// (registration refresh and subscription delivery cadence).
    pub fn new(gris: Gris, names: NameService, tick_every: SimDuration) -> GrisActor {
        GrisActor {
            gris,
            names,
            tick_every,
        }
    }

    fn flush_tick(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>) {
        let out = self.gris.tick(ctx.now());
        for (dir, msg) in out.registrations {
            if let Some(node) = self.names.resolve(&dir) {
                ctx.send(node, ProtocolMessage::Grrp(msg));
            }
        }
        for (client, reply) in out.updates {
            ctx.send(NodeId(client as u32), ProtocolMessage::Reply(reply));
        }
    }
}

impl Actor<ProtocolMessage> for GrisActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>) {
        // Runs on boot *and* on simulator restart: re-announce
        // immediately rather than waiting out the refresh interval, so
        // directories re-learn a recovered service as fast as the
        // network allows.
        self.gris.agent.reannounce();
        self.flush_tick(ctx);
        ctx.set_timer(self.tick_every, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMessage>,
        from: NodeId,
        msg: ProtocolMessage,
    ) {
        let (trace, msg) = msg.untraced();
        match msg {
            ProtocolMessage::Request(req) => {
                let now = ctx.now();
                for reply in self
                    .gris
                    .handle_request_traced(u64::from(from.0), req, trace, now)
                {
                    ctx.send(from, ProtocolMessage::Reply(reply));
                }
            }
            ProtocolMessage::Grrp(msg) => {
                self.gris.handle_grrp(&msg);
            }
            ProtocolMessage::Reply(_) => { /* a GRIS issues no requests */ }
            ProtocolMessage::Traced { .. } => { /* nested envelopes are rejected on decode */ }
            ProtocolMessage::Handshake(_) => {
                // The §7 handshake authenticates *connections*; the
                // simulated fabric is connectionless, so binds stay
                // in-band (GripRequest::Bind).
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>, _token: u64) {
        self.flush_tick(ctx);
        ctx.set_timer(self.tick_every, TICK);
    }
}

/// A GIIS bound to a simulator node.
pub struct GiisActor {
    /// The protocol engine.
    pub giis: Giis,
    names: NameService,
    tick_every: SimDuration,
}

impl GiisActor {
    /// Wrap a GIIS engine.
    pub fn new(giis: Giis, names: NameService, tick_every: SimDuration) -> GiisActor {
        GiisActor {
            giis,
            names,
            tick_every,
        }
    }

    fn perform(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>, actions: Vec<GiisAction>) {
        for action in actions {
            match action {
                GiisAction::SendRequest { to, request, trace } => {
                    if let Some(node) = self.names.resolve(&to) {
                        let msg = ProtocolMessage::Request(request);
                        let msg = match trace {
                            Some(tctx) => msg.traced(tctx),
                            None => msg,
                        };
                        ctx.send(node, msg);
                    }
                    // Unresolvable children simply never answer; the
                    // pending-query deadline converts that into partial
                    // results, exactly like a partitioned child.
                }
                GiisAction::SendGrrp { to, message } => {
                    if let Some(node) = self.names.resolve(&to) {
                        ctx.send(node, ProtocolMessage::Grrp(message));
                    }
                }
                GiisAction::Reply { client, reply } => {
                    ctx.send(NodeId(client as u32), ProtocolMessage::Reply(reply));
                }
            }
        }
    }
}

impl Actor<ProtocolMessage> for GiisActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>) {
        // As for GrisActor: restart re-announces to parents immediately.
        self.giis.agent.reannounce();
        let actions = self.giis.tick(ctx.now());
        self.perform(ctx, actions);
        ctx.set_timer(self.tick_every, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMessage>,
        from: NodeId,
        msg: ProtocolMessage,
    ) {
        let now = ctx.now();
        let (trace, msg) = msg.untraced();
        let actions = match msg {
            ProtocolMessage::Request(req) => {
                self.giis
                    .handle_request_traced(u64::from(from.0), req, trace, now)
            }
            ProtocolMessage::Reply(reply) => {
                let from_url = self
                    .names
                    .url_of(from)
                    .unwrap_or_else(|| LdapUrl::server("unknown"));
                self.giis.handle_reply(&from_url, reply, now)
            }
            ProtocolMessage::Grrp(msg) => self.giis.handle_grrp(msg, now),
            ProtocolMessage::Traced { .. } => Vec::new(), // nested: rejected on decode
            ProtocolMessage::Handshake(_) => Vec::new(),  // connection-oriented; see GRIS note
        };
        self.perform(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtocolMessage>, _token: u64) {
        let actions = self.giis.tick(ctx.now());
        self.perform(ctx, actions);
        ctx.set_timer(self.tick_every, TICK);
    }
}

/// A scriptable client: experiments inject requests via `Sim::invoke` and
/// read the recorded replies afterwards.
pub struct ClientActor {
    names: NameService,
    next_id: RequestId,
    /// When each request was sent.
    pub sent_at: BTreeMap<RequestId, SimTime>,
    /// Replies received, in arrival order, per request id (subscriptions
    /// accumulate several).
    pub replies: BTreeMap<RequestId, Vec<(SimTime, GripReply)>>,
}

impl ClientActor {
    /// Create a client.
    pub fn new(names: NameService) -> ClientActor {
        ClientActor {
            names,
            next_id: 1,
            sent_at: BTreeMap::new(),
            replies: BTreeMap::new(),
        }
    }

    /// Send an arbitrary GRIP request to `target`; returns the request id.
    pub fn request(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMessage>,
        target: &LdapUrl,
        build: impl FnOnce(RequestId) -> GripRequest,
    ) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.sent_at.insert(id, ctx.now());
        if let Some(node) = self.names.resolve(target) {
            ctx.send(node, ProtocolMessage::Request(build(id)));
        }
        id
    }

    /// Issue a search.
    pub fn search(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMessage>,
        target: &LdapUrl,
        spec: SearchSpec,
    ) -> RequestId {
        self.request(ctx, target, |id| GripRequest::Search { id, spec })
    }

    /// The first terminal search result for a request, if it has arrived.
    pub fn search_result(&self, id: RequestId) -> Option<&GripReply> {
        self.replies.get(&id)?.iter().map(|(_, r)| r).find(|r| {
            matches!(
                r,
                GripReply::SearchResult { .. } | GripReply::BindResult { .. }
            )
        })
    }

    /// All updates received for a subscription.
    pub fn updates(&self, id: RequestId) -> Vec<&GripReply> {
        self.replies
            .get(&id)
            .map(|v| {
                v.iter()
                    .map(|(_, r)| r)
                    .filter(|r| matches!(r, GripReply::Update { .. }))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Round-trip latency of a completed request.
    pub fn latency(&self, id: RequestId) -> Option<SimDuration> {
        let sent = *self.sent_at.get(&id)?;
        let (arrived, _) = self.replies.get(&id)?.first()?;
        Some(arrived.since(sent))
    }
}

impl Actor<ProtocolMessage> for ClientActor {
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMessage>,
        _from: NodeId,
        msg: ProtocolMessage,
    ) {
        let (_, msg) = msg.untraced();
        if let ProtocolMessage::Reply(reply) = msg {
            self.replies
                .entry(reply.id())
                .or_default()
                .push((ctx.now(), reply));
        }
    }
}
