//! Configuring information services (§9): how a provider finds the
//! directories it should register with.
//!
//! The paper lists three techniques; all are implemented here.
//!
//! 1. **Manual configuration** — "users or system administrators can
//!    configure information providers with the addresses of directories":
//!    [`manual_join`] (and note that registering a site *directory* adds
//!    the whole organization at once).
//! 2. **Automated discovery based on a hierarchical discovery service** —
//!    [`discover_directories`] searches a name-serving root directory for
//!    registered aggregate directories matching the provider's namespace,
//!    and [`join_via_hierarchy`] wires the result into the provider's
//!    registration agent.
//! 3. **Automated discovery based on other information services** (SLP /
//!    DNS-style local defaults) — [`local_default_directory`] resolves a
//!    site's conventional well-known directory name.

use crate::actors::NameService;
use crate::deploy::SimDeployment;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, NodeId};
use gis_proto::SearchSpec;

/// Technique 1 — manual configuration: point a provider's registration
/// agent at explicit directory addresses.
pub fn manual_join(dep: &mut SimDeployment, gris_node: NodeId, directories: &[LdapUrl]) {
    let gris = dep.gris_mut(gris_node);
    for d in directories {
        gris.agent.add_target(d.clone());
    }
}

/// Technique 2a — query a (name-serving) root directory for registered
/// aggregate directories whose namespace is related to `namespace`
/// (either could scope the other). Returns their GRIP endpoints.
pub fn discover_directories(
    dep: &mut SimDeployment,
    client: NodeId,
    root: &LdapUrl,
    namespace: &Dn,
) -> Vec<LdapUrl> {
    let Some((_, entries, _)) = dep.search_and_wait(
        client,
        root,
        SearchSpec::subtree(
            Dn::root(),
            Filter::parse("(objectclass=registration)").expect("valid filter"),
        ),
        secs(10),
    ) else {
        return Vec::new();
    };
    entries
        .iter()
        .filter(|e| {
            let ns = e.dn();
            ns.is_under(namespace) || namespace.is_under(ns)
        })
        .filter_map(|e| e.get_str("url"))
        .filter_map(|u| LdapUrl::parse(u).ok())
        .collect()
}

/// Technique 2b — full flow: discover matching directories through the
/// hierarchy and register the provider with each. Returns how many
/// directories were joined.
pub fn join_via_hierarchy(
    dep: &mut SimDeployment,
    gris_node: NodeId,
    client: NodeId,
    root: &LdapUrl,
) -> usize {
    let namespace = dep.gris(gris_node).config.suffix.clone();
    let dirs = discover_directories(dep, client, root, &namespace);
    let n = dirs.len();
    manual_join(dep, gris_node, &dirs);
    n
}

/// Technique 3 — a local default service in the SLP role: "clients can
/// use SLP to locate a default local directory from which to initiate VO
/// resource discovery." We model the convention that each site exposes
/// its default directory under a well-known name.
pub fn local_default_directory(names: &NameService, site: &str) -> Option<LdapUrl> {
    let url = LdapUrl::server(format!("giis.default.{site}"));
    names.resolve(&url).map(|_| url)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_giis::{Giis, GiisConfig, GiisMode};
    use gis_gris::HostSpec;

    /// Root name directory + two site chaining directories registered in
    /// it; a new host bootstraps itself via the hierarchy.
    #[test]
    fn hierarchy_bootstrap_joins_matching_directories() {
        let mut dep = SimDeployment::new(71);
        let root_url = LdapUrl::server("giis.root");
        let mut root_config = GiisConfig::chaining(root_url.clone(), Dn::root());
        root_config.mode = GiisMode::Name;
        dep.add_giis(Giis::new(root_config, secs(30), secs(90)));

        for org in ["O1", "O2"] {
            let url = LdapUrl::server(format!("giis.site.{org}"));
            let mut site = Giis::new(
                GiisConfig::chaining(url, Dn::parse(&format!("o={org}")).unwrap()),
                secs(30),
                secs(90),
            );
            site.agent.add_target(root_url.clone());
            dep.add_giis(site);
        }
        let client = dep.add_client("bootstrap");
        dep.run_for(secs(2)); // site directories register with the root

        // A host in O1 discovers its site directory through the root.
        let host = HostSpec::linux("newbie", 2).at(Dn::parse("o=O1").unwrap());
        let (gris_node, _) = dep.add_standard_host(&host, 3, &[]);
        dep.run_for(secs(1));
        let joined = join_via_hierarchy(&mut dep, gris_node, client, &root_url);
        assert_eq!(joined, 1, "only the O1 site directory matches");
        assert_eq!(
            dep.gris(gris_node).agent.targets(),
            &[LdapUrl::server("giis.site.O1")]
        );

        // After the bootstrap, the host becomes discoverable through the
        // site directory.
        dep.run_for(secs(35)); // next refresh cycle registers it
        let (_, entries, _) = dep
            .search_and_wait(
                client,
                &LdapUrl::server("giis.site.O1"),
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                secs(10),
            )
            .unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get_str("hn"), Some("newbie"));
    }

    #[test]
    fn discovery_filters_by_namespace() {
        let mut dep = SimDeployment::new(72);
        let root_url = LdapUrl::server("giis.root");
        let mut root_config = GiisConfig::chaining(root_url.clone(), Dn::root());
        root_config.mode = GiisMode::Name;
        dep.add_giis(Giis::new(root_config, secs(30), secs(90)));
        for org in ["O1", "O2", "O3"] {
            let url = LdapUrl::server(format!("giis.site.{org}"));
            let mut site = Giis::new(
                GiisConfig::chaining(url, Dn::parse(&format!("o={org}")).unwrap()),
                secs(30),
                secs(90),
            );
            site.agent.add_target(root_url.clone());
            dep.add_giis(site);
        }
        let client = dep.add_client("c");
        dep.run_for(secs(2));

        let o2 = discover_directories(
            &mut dep,
            client,
            &root_url,
            &Dn::parse("hn=x, o=O2").unwrap(),
        );
        assert_eq!(o2, vec![LdapUrl::server("giis.site.O2")]);

        // A root-scoped consumer (e.g. a whole-VO directory) matches all.
        let all = discover_directories(&mut dep, client, &root_url, &Dn::root());
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn manual_join_is_additive() {
        let mut dep = SimDeployment::new(73);
        let host = HostSpec::linux("m", 2);
        let (gris_node, _) = dep.add_standard_host(&host, 1, &[]);
        manual_join(
            &mut dep,
            gris_node,
            &[LdapUrl::server("d1"), LdapUrl::server("d2")],
        );
        manual_join(&mut dep, gris_node, &[LdapUrl::server("d2")]);
        assert_eq!(dep.gris(gris_node).agent.targets().len(), 2);
    }

    #[test]
    fn local_default_lookup() {
        let mut dep = SimDeployment::new(74);
        let url = LdapUrl::server("giis.default.anl");
        dep.add_giis(Giis::new(
            GiisConfig::chaining(url.clone(), Dn::root()),
            secs(30),
            secs(90),
        ));
        assert_eq!(local_default_directory(&dep.names, "anl"), Some(url));
        assert_eq!(local_default_directory(&dep.names, "unknown-site"), None);
    }
}
