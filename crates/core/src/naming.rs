//! Unique-name generation (§8 of the paper).
//!
//! "We describe two possible approaches, one based on naming authorities
//! and one on probabilistic techniques."
//!
//! * [`NamingAuthority`] — allocates names guaranteed unique within its
//!   scope; authorities nest hierarchically ("particularly in the latter
//!   case, a hierarchical organization of this service will be important,
//!   for scalability"), mirroring §5.1's observation that each aggregate
//!   directory can serve as a local naming authority. Names are only
//!   *relatively* unique: distinct authorities may issue the same local
//!   name under different scopes.
//! * [`GuidGenerator`] — "we assign names at random from a large name
//!   space, hence obtaining a name that is highly likely to be unique
//!   ... such names do not contain any structural information", so GUIDs
//!   compose with (rather than replace) hierarchical scoping.

use gis_ldap::{Dn, Rdn};
use gis_netsim::SimRng;
use std::collections::BTreeSet;

/// A naming authority for one scope.
#[derive(Debug)]
pub struct NamingAuthority {
    scope: Dn,
    issued: BTreeSet<String>,
    counter: u64,
}

impl NamingAuthority {
    /// Create an authority over `scope` (the DN suffix all of its names
    /// share). The root authority has the empty scope.
    pub fn new(scope: Dn) -> NamingAuthority {
        NamingAuthority {
            scope,
            issued: BTreeSet::new(),
            counter: 0,
        }
    }

    /// The scope within which this authority's names are unique.
    pub fn scope(&self) -> &Dn {
        &self.scope
    }

    /// Number of names issued so far.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// Claim a specific name (e.g. a host registering its own hostname).
    /// Fails if the name is already taken within this scope.
    pub fn claim(&mut self, attr: &str, value: &str) -> Option<Dn> {
        let key = format!("{}={value}", attr.to_ascii_lowercase());
        if !self.issued.insert(key) {
            return None;
        }
        Some(self.scope.child(Rdn::new(attr, value)))
    }

    /// Allocate a fresh name with the given attribute type and prefix,
    /// unique within this scope: `prefix-<n>`.
    pub fn allocate(&mut self, attr: &str, prefix: &str) -> Dn {
        loop {
            self.counter += 1;
            let value = format!("{prefix}-{}", self.counter);
            if let Some(dn) = self.claim(attr, &value) {
                return dn;
            }
        }
    }

    /// Spawn a child authority for a sub-scope. The delegation itself is
    /// a claimed name, so sibling sub-scopes cannot collide.
    pub fn delegate(&mut self, attr: &str, value: &str) -> Option<NamingAuthority> {
        let scope = self.claim(attr, value)?;
        Some(NamingAuthority::new(scope))
    }
}

/// A 128-bit globally-unique-identifier generator (probabilistic
/// uniqueness, no structure).
#[derive(Debug)]
pub struct GuidGenerator {
    rng: SimRng,
}

/// A 128-bit identifier rendered as 32 hex digits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub u128);

impl std::fmt::Display for Guid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl GuidGenerator {
    /// Create a generator (seeded; the simulation's entropy source).
    pub fn new(seed: u64) -> GuidGenerator {
        GuidGenerator {
            rng: SimRng::new(seed),
        }
    }

    /// Draw a fresh GUID.
    #[allow(clippy::should_implement_trait)] // deliberate: "draw the next id"
    pub fn next(&mut self) -> Guid {
        let hi = self.rng.next_u64() as u128;
        let lo = self.rng.next_u64() as u128;
        Guid((hi << 64) | lo)
    }

    /// A GUID as an entry name under a scope: `guid=<hex>, <scope>` —
    /// combining probabilistic uniqueness with hierarchical scoping, the
    /// composition §8 recommends ("we can use other techniques, such as
    /// the hierarchies of Section 5.1, for that purpose").
    pub fn next_dn(&mut self, scope: &Dn) -> Dn {
        scope.child(Rdn::new("guid", self.next().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_allocates_unique_names() {
        let mut auth = NamingAuthority::new(Dn::parse("o=O1").unwrap());
        let a = auth.allocate("hn", "node");
        let b = auth.allocate("hn", "node");
        assert_ne!(a, b);
        assert!(a.is_under(auth.scope()));
        assert_eq!(a.to_string(), "hn=node-1, o=O1");
        assert_eq!(auth.issued_count(), 2);
    }

    #[test]
    fn claim_rejects_duplicates() {
        let mut auth = NamingAuthority::new(Dn::root());
        assert!(auth.claim("hn", "hostX").is_some());
        assert!(auth.claim("hn", "hostX").is_none());
        assert!(auth.claim("HN", "hostX").is_none(), "attr case-insensitive");
        assert!(auth.claim("hn", "hostY").is_some());
    }

    #[test]
    fn allocate_skips_claimed_names() {
        let mut auth = NamingAuthority::new(Dn::root());
        auth.claim("hn", "n-1").unwrap();
        let dn = auth.allocate("hn", "n");
        assert_eq!(dn.to_string(), "hn=n-2");
    }

    #[test]
    fn delegation_creates_nested_scopes() {
        let mut root = NamingAuthority::new(Dn::root());
        let mut o1 = root.delegate("o", "O1").unwrap();
        let mut o2 = root.delegate("o", "O2").unwrap();
        assert!(
            root.delegate("o", "O1").is_none(),
            "scope already delegated"
        );

        // The same local name in different scopes: relatively unique (§8).
        let a = o1.claim("hn", "R1").unwrap();
        let b = o2.claim("hn", "R1").unwrap();
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "hn=R1, o=O1");
        assert_eq!(b.to_string(), "hn=R1, o=O2");
    }

    #[test]
    fn guids_are_distinct_and_structureless() {
        let mut g = GuidGenerator::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(g.next()), "collision in 10k draws");
        }
    }

    #[test]
    fn guid_display_is_32_hex_digits() {
        let mut g = GuidGenerator::new(1);
        let s = g.next().to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn guid_dn_composes_with_scope() {
        let mut g = GuidGenerator::new(2);
        let scope = Dn::parse("o=O1").unwrap();
        let dn = g.next_dn(&scope);
        assert!(dn.is_strictly_under(&scope));
        assert_eq!(dn.rdn().unwrap().attr(), "guid");
        // Scoped search finds it; the GUID itself carries no structure.
        assert!(dn.is_under(&scope));
    }

    #[test]
    fn generators_with_same_seed_agree() {
        let mut a = GuidGenerator::new(9);
        let mut b = GuidGenerator::new(9);
        assert_eq!(a.next(), b.next());
    }
}
