//! Deterministic state reconstruction: one `apply` function shared by
//! the live engines (mirroring a logged op into their state) and by
//! recovery (replaying the WAL tail over a loaded snapshot). Using the
//! *same* code for both is what makes "recovered state == pre-crash
//! state" a theorem instead of a hope.

use std::collections::BTreeMap;

use gis_ldap::{Dit, Dn, Entry, LdapUrl};
use gis_netsim::SimTime;
use gis_proto::SoftStateRegistry;

use crate::snapshot::{GroupSnap, LoadedSnapshot, RegSnap};
use crate::wal::WalOp;

/// Per-source attribution state: what one child service (GIIS) or one
/// provider slot (GRIS) contributed, and when it last refreshed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupState {
    /// Last refresh (harvest / provider fetch) clock, if any.
    pub at: Option<SimTime>,
    /// DNs this source owns in the shared tree.
    pub dns: Vec<Dn>,
    /// Rows cached outside the shared tree (GRIS slot caches).
    pub entries: Vec<Entry>,
}

/// The full durable state of a directory service, as reconstructed by
/// recovery (snapshot + WAL tail) or maintained shadow-style by
/// [`DurableDit`](crate::DurableDit).
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Highest applied WAL sequence number.
    pub seq: u64,
    /// The directory information tree.
    pub dit: Dit,
    /// Soft-state registrations with their original expiry clocks.
    pub registry: SoftStateRegistry,
    /// Per-source attribution, keyed by source name.
    pub groups: BTreeMap<String, GroupState>,
    /// Registration-agent target directories.
    pub targets: Vec<LdapUrl>,
}

impl RecoveredState {
    /// Empty state (a service starting fresh).
    pub fn empty() -> RecoveredState {
        RecoveredState::default()
    }

    /// Rebuild state from a validated snapshot image.
    pub fn from_snapshot(snap: LoadedSnapshot) -> RecoveredState {
        // Bulk-build: snapshot entries are written in key order, so the
        // sorted-run index construction is near-linear — this dominates
        // restart time for large trees.
        let dit = Dit::bulk_load(snap.entries);
        let mut registry = SoftStateRegistry::new();
        registry.restore(snap.regs.into_iter().map(RegSnap::into_registration));
        let groups = snap
            .groups
            .into_iter()
            .map(|g| {
                (
                    g.name,
                    GroupState {
                        at: g.at,
                        dns: g.dns,
                        entries: g.entries,
                    },
                )
            })
            .collect();
        RecoveredState {
            seq: snap.seq,
            dit,
            registry,
            groups,
            targets: snap.targets,
        }
    }

    /// Capture the group map back into snapshot form.
    pub fn group_snaps(&self) -> Vec<GroupSnap> {
        self.groups
            .iter()
            .map(|(name, g)| GroupSnap {
                name: name.clone(),
                at: g.at,
                dns: g.dns.clone(),
                entries: g.entries.clone(),
            })
            .collect()
    }

    /// Apply one op to this state (replay path).
    pub fn apply(&mut self, op: &WalOp) {
        apply_op(
            &mut self.dit,
            &mut self.registry,
            &mut self.groups,
            &mut self.targets,
            op,
        );
    }
}

/// Apply one logged op to the state pieces. Exactly mirrors what the
/// live engines do at their journaling sites; the pieces are split out
/// so a caller can borrow the DIT from inside a `SharedDit::mutate`
/// closure while the rest lives elsewhere.
pub fn apply_op(
    dit: &mut Dit,
    registry: &mut SoftStateRegistry,
    groups: &mut BTreeMap<String, GroupState>,
    targets: &mut Vec<LdapUrl>,
    op: &WalOp,
) {
    match op {
        WalOp::Upsert(e) => {
            dit.upsert(e.clone());
        }
        WalOp::Delete(dn) => {
            dit.delete(dn);
        }
        WalOp::DeleteSubtree(dn) => {
            dit.delete_subtree(dn);
        }
        WalOp::Observe { msg, now } => {
            let key = msg.service_url.to_string();
            if registry.observe(msg.clone(), *now) {
                groups.entry(key).or_default();
            }
        }
        WalOp::Sweep { now } => {
            for url in registry.sweep(*now) {
                if let Some(g) = groups.remove(&url.to_string()) {
                    for dn in &g.dns {
                        dit.delete(dn);
                    }
                }
            }
        }
        WalOp::Harvest {
            child,
            entries,
            now,
        } => {
            let g = groups.entry(child.to_string()).or_default();
            let fresh: std::collections::BTreeSet<&Dn> = entries.iter().map(|e| e.dn()).collect();
            for dn in &g.dns {
                if !fresh.contains(dn) {
                    dit.delete(dn);
                }
            }
            g.dns = entries.iter().map(|e| e.dn().clone()).collect();
            g.at = Some(*now);
            for e in entries {
                dit.upsert(e.clone());
            }
        }
        WalOp::Target { directory } => {
            if !targets.contains(directory) {
                targets.push(directory.clone());
            }
        }
        WalOp::Forget { url } => {
            registry.forget(url);
            if let Some(g) = groups.remove(&url.to_string()) {
                for dn in &g.dns {
                    dit.delete(dn);
                }
            }
        }
        WalOp::Delta {
            child,
            upserts,
            deletes,
            now,
        } => {
            let g = groups.entry(child.to_string()).or_default();
            for dn in deletes {
                dit.delete(dn);
                g.dns.retain(|d| d != dn);
            }
            for e in upserts {
                if !g.dns.contains(e.dn()) {
                    g.dns.push(e.dn().clone());
                }
                dit.upsert(e.clone());
            }
            g.at = Some(*now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;
    use gis_proto::GrrpMessage;

    fn reg(host: &str, from_s: u64, ttl_s: u64) -> GrrpMessage {
        GrrpMessage::register(
            LdapUrl::server(host),
            Dn::parse(&format!("hn={host}")).unwrap(),
            SimTime::ZERO + secs(from_s),
            secs(ttl_s),
        )
    }

    #[test]
    fn observe_harvest_sweep_lifecycle() {
        let mut st = RecoveredState::empty();
        st.apply(&WalOp::Observe {
            msg: reg("h1", 1, 30),
            now: SimTime::ZERO + secs(1),
        });
        assert_eq!(st.registry.len(), 1);
        assert!(st.groups.contains_key("ldap://h1:389"));

        let e = Entry::at("hn=h1").unwrap().with_class("computer");
        st.apply(&WalOp::Harvest {
            child: LdapUrl::server("h1"),
            entries: vec![e],
            now: SimTime::ZERO + secs(2),
        });
        assert_eq!(st.dit.len(), 1);
        assert_eq!(st.groups["ldap://h1:389"].at, Some(SimTime::ZERO + secs(2)));

        // Sweep past expiry purges the registration and its rows.
        st.apply(&WalOp::Sweep {
            now: SimTime::ZERO + secs(60),
        });
        assert_eq!(st.registry.len(), 0);
        assert!(st.groups.is_empty());
        assert_eq!(st.dit.len(), 0);
    }

    #[test]
    fn harvest_drops_stale_rows() {
        let mut st = RecoveredState::empty();
        let child = LdapUrl::server("h1");
        let old = Entry::at("hn=old").unwrap().with_class("c");
        let new = Entry::at("hn=new").unwrap().with_class("c");
        st.apply(&WalOp::Harvest {
            child: child.clone(),
            entries: vec![old],
            now: SimTime::ZERO + secs(1),
        });
        st.apply(&WalOp::Harvest {
            child,
            entries: vec![new],
            now: SimTime::ZERO + secs(2),
        });
        assert_eq!(st.dit.len(), 1);
        assert!(st.dit.get(&Dn::parse("hn=new").unwrap()).is_some());
        assert!(st.dit.get(&Dn::parse("hn=old").unwrap()).is_none());
    }

    #[test]
    fn delta_applies_incremental_changes() {
        let mut st = RecoveredState::empty();
        let child = LdapUrl::server("giis.child");
        st.apply(&WalOp::Harvest {
            child: child.clone(),
            entries: vec![
                Entry::at("hn=a").unwrap().with_class("c"),
                Entry::at("hn=b").unwrap().with_class("c"),
            ],
            now: SimTime::ZERO + secs(1),
        });
        st.apply(&WalOp::Delta {
            child: child.clone(),
            upserts: vec![Entry::at("hn=c").unwrap().with_class("c")],
            deletes: vec![Dn::parse("hn=a").unwrap()],
            now: SimTime::ZERO + secs(2),
        });
        assert_eq!(st.dit.len(), 2);
        assert!(st.dit.get(&Dn::parse("hn=a").unwrap()).is_none());
        assert!(st.dit.get(&Dn::parse("hn=c").unwrap()).is_some());
        let g = &st.groups[&child.to_string()];
        assert_eq!(g.at, Some(SimTime::ZERO + secs(2)));
        assert_eq!(g.dns.len(), 2);
        // A later sweep that expires the child purges delta-applied rows.
        st.apply(&WalOp::Forget { url: child });
        assert_eq!(st.dit.len(), 0);
    }

    #[test]
    fn targets_dedup() {
        let mut st = RecoveredState::empty();
        let dir = LdapUrl::server("giis.vo");
        st.apply(&WalOp::Target {
            directory: dir.clone(),
        });
        st.apply(&WalOp::Target { directory: dir });
        assert_eq!(st.targets.len(), 1);
    }
}
