//! Length-prefixed, CRC-guarded frames — the common record format of
//! the WAL and snapshot files.
//!
//! Every frame is `[len: u32 LE][crc32(payload): u32 LE][payload]`. A
//! reader walks frames sequentially and stops at the first violation
//! (truncated header, oversize length, short payload, CRC mismatch),
//! reporting the byte offset where the good prefix ends — which is
//! exactly what torn-tail truncation needs.

use crate::crc::crc32;

/// Defensive ceiling on one frame's payload; anything larger is treated
/// as corruption (a torn length field reads as garbage).
pub const MAX_FRAME: usize = 256 << 20;

/// Frame header size: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// Append one framed payload to `out`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One step of frame iteration.
#[derive(Debug)]
pub enum FrameStep<'a> {
    /// A checksummed payload.
    Frame(&'a [u8]),
    /// Clean end of input.
    End,
    /// The frame starting at `offset` is damaged; `reason` says how.
    /// Bytes `..offset` are the valid prefix.
    Bad { offset: usize, reason: String },
}

/// Sequential frame reader over a byte buffer.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Read frames starting at `start` (past any file magic).
    pub fn new(buf: &'a [u8], start: usize) -> FrameReader<'a> {
        FrameReader { buf, pos: start }
    }

    /// Offset of the next unread byte.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Advance to the next frame.
    pub fn step(&mut self) -> FrameStep<'a> {
        let start = self.pos;
        let remaining = self.buf.len() - start;
        if remaining == 0 {
            return FrameStep::End;
        }
        if remaining < FRAME_HEADER {
            return FrameStep::Bad {
                offset: start,
                reason: format!("truncated frame header ({remaining} bytes)"),
            };
        }
        let len = u32::from_le_bytes([
            self.buf[start],
            self.buf[start + 1],
            self.buf[start + 2],
            self.buf[start + 3],
        ]) as usize;
        let want = u32::from_le_bytes([
            self.buf[start + 4],
            self.buf[start + 5],
            self.buf[start + 6],
            self.buf[start + 7],
        ]);
        if len > MAX_FRAME {
            return FrameStep::Bad {
                offset: start,
                reason: format!("oversized frame length {len}"),
            };
        }
        if remaining - FRAME_HEADER < len {
            return FrameStep::Bad {
                offset: start,
                reason: format!(
                    "frame payload truncated ({} of {len} bytes)",
                    remaining - FRAME_HEADER
                ),
            };
        }
        let payload = &self.buf[start + FRAME_HEADER..start + FRAME_HEADER + len];
        if crc32(payload) != want {
            return FrameStep::Bad {
                offset: start,
                reason: "frame checksum mismatch".to_owned(),
            };
        }
        self.pos = start + FRAME_HEADER + len;
        FrameStep::Frame(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_torn_tail() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"alpha");
        put_frame(&mut buf, b"beta");
        let good_len = buf.len();
        put_frame(&mut buf, b"gamma-long-record");
        buf.truncate(good_len + 11); // tear the third frame mid-payload

        let mut r = FrameReader::new(&buf, 0);
        assert!(matches!(r.step(), FrameStep::Frame(b"alpha")));
        assert!(matches!(r.step(), FrameStep::Frame(b"beta")));
        match r.step() {
            FrameStep::Bad { offset, .. } => assert_eq!(offset, good_len),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"payload");
        buf[FRAME_HEADER + 3] ^= 0x40;
        let mut r = FrameReader::new(&buf, 0);
        assert!(matches!(r.step(), FrameStep::Bad { offset: 0, .. }));
    }

    #[test]
    fn empty_is_clean_end() {
        let mut r = FrameReader::new(&[], 0);
        assert!(matches!(r.step(), FrameStep::End));
    }
}
