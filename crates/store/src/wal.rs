//! The append-only mutation log.
//!
//! `wal.log` is an 8-byte magic (`GISWAL01`) followed by CRC-framed
//! records (see [`crate::frame`]). Each record is a sequence number plus
//! one [`WalOp`] — every DIT mutation and soft-state clock event a
//! directory engine performs, logged *before* it is applied. Payloads
//! reuse the `gis-ldap` wire codec, so entries, DNs and GRRP messages
//! persist in exactly the encoding they travel in.
//!
//! Reading is tolerant by design: the first damaged frame ends the
//! valid prefix (torn final record → truncate, don't replay), and a
//! record that fails wire decode inside a CRC-valid frame is treated
//! the same way (version skew is indistinguishable from corruption at
//! this layer).

use bytes::{BufMut, BytesMut};
use gis_ldap::{Dn, Entry, LdapUrl, Wire, WireReader};
use gis_netsim::SimTime;
use gis_proto::GrrpMessage;

use crate::frame::{put_frame, FrameReader, FrameStep};

/// The WAL's on-disk name.
pub const WAL_FILE: &str = "wal.log";
/// Magic + format version.
pub const WAL_MAGIC: &[u8; 8] = b"GISWAL01";

/// One logged mutation or soft-state clock event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert-or-replace one entry in the DIT.
    Upsert(Entry),
    /// Delete one entry.
    Delete(Dn),
    /// Delete an entry and everything below it.
    DeleteSubtree(Dn),
    /// A GRRP registration/refresh was accepted at `now` — the clock
    /// event that sets a soft-state expiry deadline.
    Observe {
        /// The registration message (carries the validity interval).
        msg: GrrpMessage,
        /// Receipt time.
        now: SimTime,
    },
    /// A registry sweep ran at `now`: expired registrations (and their
    /// attributed cache rows) were purged.
    Sweep {
        /// Sweep time.
        now: SimTime,
    },
    /// A harvest batch from `child` replaced that child's rows.
    Harvest {
        /// The child whose rows are replaced.
        child: LdapUrl,
        /// The fresh entry set.
        entries: Vec<Entry>,
        /// Integration time (refresh clock).
        now: SimTime,
    },
    /// The registration agent accepted an invitation to register with
    /// `directory`.
    Target {
        /// The directory to keep registered with.
        directory: LdapUrl,
    },
    /// A service was explicitly forgotten (policy, not expiry).
    Forget {
        /// The forgotten service.
        url: LdapUrl,
    },
    /// An incremental federation delta from `child` was applied: some
    /// of that child's rows replaced, some deleted. (A full sync is
    /// logged as [`WalOp::Harvest`] — same replace-all semantics.)
    Delta {
        /// The child the delta came from.
        child: LdapUrl,
        /// Created/modified entries.
        upserts: Vec<Entry>,
        /// Deleted DNs.
        deletes: Vec<Dn>,
        /// Integration time (sync clock).
        now: SimTime,
    },
}

fn put_time(buf: &mut BytesMut, t: SimTime) {
    gis_ldap::codec::put_varint(buf, t.0);
}

fn read_time(r: &mut WireReader<'_>) -> gis_ldap::Result<SimTime> {
    Ok(SimTime(r.read_varint()?))
}

impl Wire for WalOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalOp::Upsert(e) => {
                buf.put_u8(1);
                e.encode(buf);
            }
            WalOp::Delete(dn) => {
                buf.put_u8(2);
                dn.encode(buf);
            }
            WalOp::DeleteSubtree(dn) => {
                buf.put_u8(3);
                dn.encode(buf);
            }
            WalOp::Observe { msg, now } => {
                buf.put_u8(4);
                msg.encode(buf);
                put_time(buf, *now);
            }
            WalOp::Sweep { now } => {
                buf.put_u8(5);
                put_time(buf, *now);
            }
            WalOp::Harvest {
                child,
                entries,
                now,
            } => {
                buf.put_u8(6);
                child.encode(buf);
                entries.encode(buf);
                put_time(buf, *now);
            }
            WalOp::Target { directory } => {
                buf.put_u8(7);
                directory.encode(buf);
            }
            WalOp::Forget { url } => {
                buf.put_u8(8);
                url.encode(buf);
            }
            WalOp::Delta {
                child,
                upserts,
                deletes,
                now,
            } => {
                buf.put_u8(9);
                child.encode(buf);
                upserts.encode(buf);
                deletes.encode(buf);
                put_time(buf, *now);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> gis_ldap::Result<WalOp> {
        Ok(match r.read_u8()? {
            1 => WalOp::Upsert(Entry::decode(r)?),
            2 => WalOp::Delete(Dn::decode(r)?),
            3 => WalOp::DeleteSubtree(Dn::decode(r)?),
            4 => WalOp::Observe {
                msg: GrrpMessage::decode(r)?,
                now: read_time(r)?,
            },
            5 => WalOp::Sweep { now: read_time(r)? },
            6 => WalOp::Harvest {
                child: LdapUrl::decode(r)?,
                entries: Vec::<Entry>::decode(r)?,
                now: read_time(r)?,
            },
            7 => WalOp::Target {
                directory: LdapUrl::decode(r)?,
            },
            8 => WalOp::Forget {
                url: LdapUrl::decode(r)?,
            },
            9 => WalOp::Delta {
                child: LdapUrl::decode(r)?,
                upserts: Vec::<Entry>::decode(r)?,
                deletes: Vec::<Dn>::decode(r)?,
                now: read_time(r)?,
            },
            tag => {
                return Err(gis_ldap::LdapError::Codec(format!(
                    "unknown wal op tag {tag}"
                )))
            }
        })
    }
}

impl WalOp {
    /// Shift every embedded timestamp by `delta_us` (saturating at the
    /// timeline's origin) — recovery's clock-rebasing hook.
    pub fn rebase(&mut self, delta_us: i64) {
        match self {
            WalOp::Observe { msg, now } => {
                msg.valid_from = rebase_time(msg.valid_from, delta_us);
                msg.valid_until = rebase_time(msg.valid_until, delta_us);
                *now = rebase_time(*now, delta_us);
            }
            WalOp::Sweep { now } | WalOp::Harvest { now, .. } | WalOp::Delta { now, .. } => {
                *now = rebase_time(*now, delta_us);
            }
            _ => {}
        }
    }
}

/// Shift one timestamp by `delta_us` microseconds, clamping at zero
/// (instants before the new timeline's origin are simply "long ago").
pub fn rebase_time(t: SimTime, delta_us: i64) -> SimTime {
    let v = (t.0 as i128) + i128::from(delta_us);
    SimTime(v.clamp(0, u64::MAX as i128) as u64)
}

/// One WAL record: a monotonically increasing sequence number and the
/// op it logs. Records at or below a snapshot's covered sequence are
/// skipped on replay.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Position in the mutation sequence (1-based, never reused).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

impl Wire for WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        gis_ldap::codec::put_varint(buf, self.seq);
        self.op.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> gis_ldap::Result<WalRecord> {
        Ok(WalRecord {
            seq: r.read_varint()?,
            op: WalOp::decode(r)?,
        })
    }
}

/// Encode one record as a framed WAL segment (header + CRC + payload).
pub fn frame_record(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.to_wire();
    let mut out = Vec::with_capacity(payload.len() + crate::frame::FRAME_HEADER);
    put_frame(&mut out, &payload);
    out
}

/// The outcome of scanning a WAL image.
#[derive(Debug)]
pub struct WalScan {
    /// Records in the valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + intact frames). The
    /// file should be truncated to this length if `torn` is set.
    pub valid_len: u64,
    /// Why scanning stopped early, if it did.
    pub torn: Option<String>,
}

/// Scan a WAL image: verify the magic, then walk frames until the first
/// damaged one. Never fails — damage shortens the valid prefix.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn: Some(if bytes.is_empty() {
                "empty wal file".to_owned()
            } else {
                "bad wal magic".to_owned()
            }),
        };
    }
    let mut records = Vec::new();
    let mut reader = FrameReader::new(bytes, WAL_MAGIC.len());
    loop {
        let frame_start = reader.pos();
        match reader.step() {
            FrameStep::End => {
                return WalScan {
                    records,
                    valid_len: frame_start as u64,
                    torn: None,
                }
            }
            FrameStep::Bad { offset, reason } => {
                return WalScan {
                    records,
                    valid_len: offset as u64,
                    torn: Some(reason),
                }
            }
            FrameStep::Frame(payload) => match WalRecord::from_wire(payload) {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    return WalScan {
                        records,
                        valid_len: frame_start as u64,
                        torn: Some(format!("undecodable record: {e}")),
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn sample_ops() -> Vec<WalOp> {
        let e = Entry::at("hn=host1").unwrap().with_class("computer");
        vec![
            WalOp::Upsert(e.clone()),
            WalOp::Observe {
                msg: GrrpMessage::register(
                    LdapUrl::server("gris.host1"),
                    Dn::parse("hn=host1").unwrap(),
                    SimTime::ZERO + secs(1),
                    secs(30),
                ),
                now: SimTime::ZERO + secs(1),
            },
            WalOp::Harvest {
                child: LdapUrl::server("gris.host1"),
                entries: vec![e],
                now: SimTime::ZERO + secs(2),
            },
            WalOp::Sweep {
                now: SimTime::ZERO + secs(40),
            },
            WalOp::Delete(Dn::parse("hn=host1").unwrap()),
            WalOp::DeleteSubtree(Dn::root()),
            WalOp::Target {
                directory: LdapUrl::server("giis.vo"),
            },
            WalOp::Forget {
                url: LdapUrl::server("gris.host1"),
            },
            WalOp::Delta {
                child: LdapUrl::server("giis.child"),
                upserts: vec![Entry::at("hn=host2")
                    .unwrap()
                    .with("mds-sync-version", 3i64)],
                deletes: vec![Dn::parse("hn=host3").unwrap()],
                now: SimTime::ZERO + secs(3),
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rec = WalRecord {
                seq: i as u64 + 1,
                op,
            };
            let framed = frame_record(&rec);
            let mut img = WAL_MAGIC.to_vec();
            img.extend_from_slice(&framed);
            let scan = scan_wal(&img);
            assert!(scan.torn.is_none());
            assert_eq!(scan.records, vec![rec]);
            assert_eq!(scan.valid_len, img.len() as u64);
        }
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let mut img = WAL_MAGIC.to_vec();
        let ops = sample_ops();
        for (i, op) in ops.iter().enumerate() {
            img.extend_from_slice(&frame_record(&WalRecord {
                seq: i as u64 + 1,
                op: op.clone(),
            }));
        }
        let full = img.len();
        img.truncate(full - 3);
        let scan = scan_wal(&img);
        assert!(scan.torn.is_some());
        assert_eq!(scan.records.len(), ops.len() - 1);
        assert!(scan.valid_len < img.len() as u64);
    }

    #[test]
    fn bad_magic_is_empty_scan() {
        let scan = scan_wal(b"NOTAWAL0rest");
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_some());
    }

    #[test]
    fn rebase_clamps_at_origin() {
        assert_eq!(rebase_time(SimTime(5), -10), SimTime(0));
        assert_eq!(rebase_time(SimTime(5), 10), SimTime(15));
        assert_eq!(rebase_time(SimTime(u64::MAX), 1), SimTime(u64::MAX));
    }
}
