//! Durable DIT storage: checksummed snapshots + a mutation WAL, with
//! crash recovery — the persistence layer under GRIS and GIIS.
//!
//! MDS-2's information is *soft state*: it can always be reconstructed
//! from the providers, given enough re-registration and harvest traffic.
//! Persistence is therefore an availability optimization, not a
//! correctness requirement — which sets the design's priorities:
//!
//! 1. **Never serve corrupt state.** Every on-disk frame carries a
//!    CRC32; a torn write is detected and *truncated*, a damaged
//!    snapshot is *skipped*. The fallback is always a smaller intact
//!    prefix, at worst the empty tree the system could start from
//!    anyway.
//! 2. **Never panic on bad storage.** Recovery is infallible by policy;
//!    every degradation becomes a [`RecoveryReport`] warning that
//!    services surface as metrics.
//! 3. **Preserve the soft-state clocks.** A provider registered before
//!    a crash is still registered after recovery *with its original
//!    expiry deadline*, so restart does not silently extend (or cut
//!    short) anyone's lifetime, and re-registration becomes a cheap
//!    refresh instead of a stampede.
//!
//! The layering, bottom-up: [`crc`] and [`frame`] define the record
//! format shared by both files; [`storage`] abstracts the disk (with an
//! in-memory model that has real fsync semantics for crash tests);
//! [`wal`] and [`snapshot`] define the two file formats; [`replay`]
//! reconstructs state; [`journal`] orchestrates append → fsync →
//! snapshot → compact; [`durable`] packages it with a
//! [`SharedDit`](gis_ldap::SharedDit); [`crash`] provides the seeded
//! kill-points the recovery oracle is tested against.

pub mod crash;
pub mod crc;
pub mod durable;
pub mod frame;
pub mod journal;
#[cfg(unix)]
pub mod mmap;
pub mod replay;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use crash::{CrashPlan, KillPoint, ALL_KILL_POINTS};
pub use durable::DurableDit;
pub use journal::{FsyncPolicy, Journal, JournalOptions, RecoveryReport, TimeBase, ANCHOR_FILE};
pub use replay::{apply_op, GroupState, RecoveredState};
pub use snapshot::{
    decode_snapshot, encode_snapshot, parse_snap_name, snap_name, GroupSnap, LoadedSnapshot,
    RegSnap, SnapshotContent,
};
pub use storage::{Blob, FileStorage, MemStorage, Storage, StoreError, StoreResult};
pub use wal::{scan_wal, WalOp, WalRecord, WalScan, WAL_FILE, WAL_MAGIC};
