//! Checksummed full-state snapshots.
//!
//! A snapshot file `snap-<seq>.snap` is the 8-byte magic `GISSNAP1`
//! followed by CRC-framed, tagged sections:
//!
//! | tag | section | payload |
//! |-----|---------|---------|
//! | 1   | meta    | version, covered seq, section counts |
//! | 2   | entries | a chunk of DIT entries (≤ [`ENTRY_CHUNK`]) |
//! | 3   | regs    | soft-state registrations with their clocks |
//! | 4   | groups  | per-source attribution (harvested DNs / cached rows) |
//! | 5   | targets | registration-agent target directories |
//! | 255 | end     | total frame count (completeness proof) |
//!
//! The meta frame must come first and the end frame last; section
//! counts and the frame count are cross-checked, and every frame
//! carries its own CRC32 — so a torn write, a lying rename, or bit rot
//! is *detected* (the loader reports the file invalid and recovery
//! falls back to the previous snapshot) rather than replayed into a
//! half-tree.
//!
//! Entries are chunked so the loader touches bounded buffers; with the
//! mmap read path the image is decoded straight out of the page cache.

use bytes::{BufMut, BytesMut};
use gis_ldap::{Dn, Entry, LdapUrl, Wire, WireReader};
use gis_netsim::SimTime;
use gis_proto::{GrrpMessage, Registration};

use crate::frame::{put_frame, FrameReader, FrameStep};
use crate::storage::{StoreError, StoreResult};
use crate::wal::rebase_time;

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"GISSNAP1";
/// Current format version.
pub const SNAP_VERSION: u32 = 1;
/// Entries per entry frame.
pub const ENTRY_CHUNK: usize = 4096;

const TAG_META: u8 = 1;
const TAG_ENTRIES: u8 = 2;
const TAG_REGS: u8 = 3;
const TAG_GROUPS: u8 = 4;
const TAG_TARGETS: u8 = 5;
const TAG_END: u8 = 255;

/// The on-disk name for a snapshot covering `seq`.
pub fn snap_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Parse a snapshot file name back to its covered sequence number.
pub fn parse_snap_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// A persisted soft-state registration: the message plus the receiver
/// clocks, so restart preserves both the expiry deadline and the
/// registration's age/refresh history.
#[derive(Debug, Clone, PartialEq)]
pub struct RegSnap {
    /// The most recent registration message (carries `valid_until`).
    pub message: GrrpMessage,
    /// First receipt time.
    pub first_seen: SimTime,
    /// Most recent receipt time.
    pub last_seen: SimTime,
    /// Number of messages received.
    pub refresh_count: u64,
}

impl RegSnap {
    /// Capture a live registration.
    pub fn of(reg: &Registration) -> RegSnap {
        RegSnap {
            message: reg.message.clone(),
            first_seen: reg.first_seen,
            last_seen: reg.last_seen,
            refresh_count: reg.refresh_count,
        }
    }

    /// Rebuild the live registration.
    pub fn into_registration(self) -> Registration {
        Registration {
            message: self.message,
            first_seen: self.first_seen,
            last_seen: self.last_seen,
            refresh_count: self.refresh_count,
        }
    }

    /// Shift embedded clocks onto a restarted timeline.
    pub fn rebase(&mut self, delta_us: i64) {
        self.message.valid_from = rebase_time(self.message.valid_from, delta_us);
        self.message.valid_until = rebase_time(self.message.valid_until, delta_us);
        self.first_seen = rebase_time(self.first_seen, delta_us);
        self.last_seen = rebase_time(self.last_seen, delta_us);
    }
}

impl Wire for RegSnap {
    fn encode(&self, buf: &mut BytesMut) {
        self.message.encode(buf);
        gis_ldap::codec::put_varint(buf, self.first_seen.0);
        gis_ldap::codec::put_varint(buf, self.last_seen.0);
        gis_ldap::codec::put_varint(buf, self.refresh_count);
    }

    fn decode(r: &mut WireReader<'_>) -> gis_ldap::Result<RegSnap> {
        Ok(RegSnap {
            message: GrrpMessage::decode(r)?,
            first_seen: SimTime(r.read_varint()?),
            last_seen: SimTime(r.read_varint()?),
            refresh_count: r.read_varint()?,
        })
    }
}

/// Per-source attribution: which DNs (GIIS harvest cache) or cached
/// rows (GRIS provider slots) a named source contributed, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSnap {
    /// Source name: a child service URL (GIIS) or provider slot (GRIS).
    pub name: String,
    /// The source's refresh clock (last harvest / last fetch), if it
    /// has ever refreshed.
    pub at: Option<SimTime>,
    /// DNs attributed to this source in the shared tree (GIIS).
    pub dns: Vec<Dn>,
    /// Rows cached for this source outside the shared tree (GRIS slot
    /// caches, where per-slot sets may overlap by DN).
    pub entries: Vec<Entry>,
}

impl GroupSnap {
    /// Shift the refresh clock onto a restarted timeline.
    pub fn rebase(&mut self, delta_us: i64) {
        self.at = self.at.map(|t| rebase_time(t, delta_us));
    }
}

impl Wire for GroupSnap {
    fn encode(&self, buf: &mut BytesMut) {
        gis_ldap::codec::put_str(buf, &self.name);
        match self.at {
            None => buf.put_u8(0),
            Some(t) => {
                buf.put_u8(1);
                gis_ldap::codec::put_varint(buf, t.0);
            }
        }
        self.dns.encode(buf);
        self.entries.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> gis_ldap::Result<GroupSnap> {
        Ok(GroupSnap {
            name: r.read_str()?,
            at: match r.read_u8()? {
                0 => None,
                _ => Some(SimTime(r.read_varint()?)),
            },
            dns: Vec::<Dn>::decode(r)?,
            entries: Vec::<Entry>::decode(r)?,
        })
    }
}

/// Everything a snapshot persists, ready to encode.
pub struct SnapshotContent<'i, 'e> {
    /// Soft-state registrations with clocks.
    pub regs: Vec<RegSnap>,
    /// Per-source attribution state.
    pub groups: Vec<GroupSnap>,
    /// Registration-agent targets.
    pub targets: Vec<LdapUrl>,
    /// The DIT entries (borrowed; typically an `Arc<Dit>` iterator).
    pub entries: &'i mut dyn Iterator<Item = &'e Entry>,
}

/// A decoded, validated snapshot.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The WAL sequence this image covers (replay records above this).
    pub seq: u64,
    /// All DIT entries.
    pub entries: Vec<Entry>,
    /// Registrations with clocks.
    pub regs: Vec<RegSnap>,
    /// Attribution state.
    pub groups: Vec<GroupSnap>,
    /// Agent targets.
    pub targets: Vec<LdapUrl>,
}

struct Meta {
    version: u32,
    seq: u64,
    entry_count: u64,
    reg_count: u64,
    group_count: u64,
    target_count: u64,
}

impl Wire for Meta {
    fn encode(&self, buf: &mut BytesMut) {
        gis_ldap::codec::put_varint(buf, u64::from(self.version));
        gis_ldap::codec::put_varint(buf, self.seq);
        gis_ldap::codec::put_varint(buf, self.entry_count);
        gis_ldap::codec::put_varint(buf, self.reg_count);
        gis_ldap::codec::put_varint(buf, self.group_count);
        gis_ldap::codec::put_varint(buf, self.target_count);
    }

    fn decode(r: &mut WireReader<'_>) -> gis_ldap::Result<Meta> {
        Ok(Meta {
            version: u32::try_from(r.read_varint()?)
                .map_err(|_| gis_ldap::LdapError::Codec("version overflow".into()))?,
            seq: r.read_varint()?,
            entry_count: r.read_varint()?,
            reg_count: r.read_varint()?,
            group_count: r.read_varint()?,
            target_count: r.read_varint()?,
        })
    }
}

fn tagged(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(body.len() + 1);
    payload.push(tag);
    payload.extend_from_slice(body);
    payload
}

/// Encode a complete snapshot image (magic + all frames). The caller
/// hands it to [`Storage::write_atomic`] under [`snap_name`].
///
/// [`Storage::write_atomic`]: crate::Storage::write_atomic
pub fn encode_snapshot(seq: u64, content: SnapshotContent<'_, '_>) -> Vec<u8> {
    let mut entry_frames: Vec<Vec<u8>> = Vec::new();
    let mut entry_count: u64 = 0;
    let mut chunk = BytesMut::new();
    let mut in_chunk: usize = 0;
    let mut chunk_header = BytesMut::new();
    for e in content.entries {
        e.encode(&mut chunk);
        in_chunk += 1;
        entry_count += 1;
        if in_chunk == ENTRY_CHUNK {
            chunk_header.clear();
            gis_ldap::codec::put_varint(&mut chunk_header, in_chunk as u64);
            let mut body = Vec::with_capacity(chunk_header.len() + chunk.len());
            body.extend_from_slice(&chunk_header);
            body.extend_from_slice(&chunk);
            entry_frames.push(tagged(TAG_ENTRIES, &body));
            chunk.clear();
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        chunk_header.clear();
        gis_ldap::codec::put_varint(&mut chunk_header, in_chunk as u64);
        let mut body = Vec::with_capacity(chunk_header.len() + chunk.len());
        body.extend_from_slice(&chunk_header);
        body.extend_from_slice(&chunk);
        entry_frames.push(tagged(TAG_ENTRIES, &body));
    }

    let meta = Meta {
        version: SNAP_VERSION,
        seq,
        entry_count,
        reg_count: content.regs.len() as u64,
        group_count: content.groups.len() as u64,
        target_count: content.targets.len() as u64,
    };

    let mut image = SNAP_MAGIC.to_vec();
    put_frame(&mut image, &tagged(TAG_META, &meta.to_wire()));
    let mut frames: u64 = 1;
    for f in &entry_frames {
        put_frame(&mut image, f);
        frames += 1;
    }
    put_frame(&mut image, &tagged(TAG_REGS, &content.regs.to_wire()));
    put_frame(&mut image, &tagged(TAG_GROUPS, &content.groups.to_wire()));
    put_frame(&mut image, &tagged(TAG_TARGETS, &content.targets.to_wire()));
    frames += 3;
    let mut end = BytesMut::new();
    gis_ldap::codec::put_varint(&mut end, frames);
    put_frame(&mut image, &tagged(TAG_END, &end));
    image
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Decode one `TAG_ENTRIES` payload: a count-prefixed run of entries.
fn decode_entry_chunk(body: &[u8]) -> StoreResult<Vec<Entry>> {
    let mut r = WireReader::new(body);
    let n = r
        .read_len()
        .map_err(|e| corrupt(format!("entry chunk: {e}")))?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Entry::decode(&mut r).map_err(|e| corrupt(format!("entry: {e}")))?);
    }
    if !r.is_done() {
        return Err(corrupt("trailing bytes in entry chunk"));
    }
    Ok(out)
}

/// Decode every entry chunk, in chunk order. Chunks are self-contained,
/// so on a multi-core host they are fanned out over scoped threads; a
/// single-core host (or a single chunk) decodes inline. Either path
/// yields byte-identical results and errors on the first bad chunk.
fn decode_entry_chunks(chunks: &[&[u8]]) -> StoreResult<Vec<Entry>> {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = cores.min(chunks.len());
    let decoded: Vec<StoreResult<Vec<Entry>>> = if workers > 1 {
        // Contiguous shards keep output assembly a simple in-order append.
        let per = chunks.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .chunks(per)
                .map(|shard| {
                    s.spawn(move || {
                        shard
                            .iter()
                            .map(|c| decode_entry_chunk(c))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("snapshot decode worker panicked"))
                .collect()
        })
    } else {
        chunks.iter().map(|c| decode_entry_chunk(c)).collect()
    };
    let mut entries = Vec::new();
    for part in decoded {
        entries.extend(part?);
    }
    Ok(entries)
}

/// Decode and validate a snapshot image. Any framing, checksum, count
/// or ordering violation fails the whole image (the caller falls back
/// to an older snapshot or starts empty).
pub fn decode_snapshot(bytes: &[u8]) -> StoreResult<LoadedSnapshot> {
    if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let mut reader = FrameReader::new(bytes, SNAP_MAGIC.len());
    let mut meta: Option<Meta> = None;
    let mut entry_chunks: Vec<&[u8]> = Vec::new();
    let mut regs: Vec<RegSnap> = Vec::new();
    let mut groups: Vec<GroupSnap> = Vec::new();
    let mut targets: Vec<LdapUrl> = Vec::new();
    let mut frames: u64 = 0;
    let mut ended = false;

    loop {
        match reader.step() {
            FrameStep::End => break,
            FrameStep::Bad { offset, reason } => {
                return Err(corrupt(format!("frame at {offset}: {reason}")));
            }
            FrameStep::Frame(payload) => {
                if ended {
                    return Err(corrupt("frames after end marker"));
                }
                let (&tag, body) = payload
                    .split_first()
                    .ok_or_else(|| corrupt("empty frame"))?;
                match tag {
                    TAG_META => {
                        if meta.is_some() || frames != 0 {
                            return Err(corrupt("duplicate or misplaced meta frame"));
                        }
                        let m = Meta::from_wire(body).map_err(|e| corrupt(format!("meta: {e}")))?;
                        if m.version != SNAP_VERSION {
                            return Err(corrupt(format!(
                                "unsupported snapshot version {}",
                                m.version
                            )));
                        }
                        meta = Some(m);
                    }
                    TAG_ENTRIES => {
                        if meta.is_none() {
                            return Err(corrupt("entries before meta"));
                        }
                        // Defer decoding: chunks are validated (CRC) by the
                        // frame walk and decoded together afterwards, in
                        // parallel when cores allow.
                        entry_chunks.push(body);
                    }
                    TAG_REGS => {
                        regs = Vec::<RegSnap>::from_wire(body)
                            .map_err(|e| corrupt(format!("regs: {e}")))?;
                    }
                    TAG_GROUPS => {
                        groups = Vec::<GroupSnap>::from_wire(body)
                            .map_err(|e| corrupt(format!("groups: {e}")))?;
                    }
                    TAG_TARGETS => {
                        targets = Vec::<LdapUrl>::from_wire(body)
                            .map_err(|e| corrupt(format!("targets: {e}")))?;
                    }
                    TAG_END => {
                        let mut r = WireReader::new(body);
                        let want = r.read_varint().map_err(|e| corrupt(format!("end: {e}")))?;
                        if want != frames {
                            return Err(corrupt(format!(
                                "frame count mismatch: end says {want}, saw {frames}"
                            )));
                        }
                        ended = true;
                    }
                    other => return Err(corrupt(format!("unknown section tag {other}"))),
                }
                if tag != TAG_END {
                    frames += 1;
                }
            }
        }
    }

    let meta = meta.ok_or_else(|| corrupt("missing meta frame"))?;
    if !ended {
        return Err(corrupt("missing end marker (torn snapshot)"));
    }
    let entries = decode_entry_chunks(&entry_chunks)?;
    if entries.len() as u64 != meta.entry_count
        || regs.len() as u64 != meta.reg_count
        || groups.len() as u64 != meta.group_count
        || targets.len() as u64 != meta.target_count
    {
        return Err(corrupt("section counts disagree with meta"));
    }
    Ok(LoadedSnapshot {
        seq: meta.seq,
        entries,
        regs,
        groups,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn sample_content() -> (Vec<Entry>, Vec<RegSnap>, Vec<GroupSnap>, Vec<LdapUrl>) {
        let entries: Vec<Entry> = (0..3)
            .map(|i| {
                Entry::at(&format!("hn=h{i}"))
                    .unwrap()
                    .with_class("computer")
                    .with("idx", i as u64)
            })
            .collect();
        let regs = vec![RegSnap {
            message: GrrpMessage::register(
                LdapUrl::server("gris.h0"),
                Dn::parse("hn=h0").unwrap(),
                SimTime::ZERO + secs(1),
                secs(30),
            ),
            first_seen: SimTime::ZERO + secs(1),
            last_seen: SimTime::ZERO + secs(21),
            refresh_count: 3,
        }];
        let groups = vec![GroupSnap {
            name: "ldap://gris.h0".into(),
            at: Some(SimTime::ZERO + secs(2)),
            dns: vec![Dn::parse("hn=h0").unwrap()],
            entries: Vec::new(),
        }];
        (entries, regs, groups, vec![LdapUrl::server("giis.vo")])
    }

    fn encode_sample(seq: u64) -> Vec<u8> {
        let (entries, regs, groups, targets) = sample_content();
        let mut it = entries.iter();
        encode_snapshot(
            seq,
            SnapshotContent {
                regs,
                groups,
                targets,
                entries: &mut it,
            },
        )
    }

    #[test]
    fn roundtrip() {
        let image = encode_sample(42);
        let loaded = decode_snapshot(&image).unwrap();
        let (entries, regs, groups, targets) = sample_content();
        assert_eq!(loaded.seq, 42);
        assert_eq!(loaded.entries, entries);
        assert_eq!(loaded.regs, regs);
        assert_eq!(loaded.groups, groups);
        assert_eq!(loaded.targets, targets);
    }

    #[test]
    fn every_truncation_is_rejected_not_misread() {
        let image = encode_sample(7);
        for cut in 0..image.len() {
            assert!(
                decode_snapshot(&image[..cut]).is_err(),
                "truncation to {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let image = encode_sample(7);
        // Flip one bit in every 97th byte (full sweep is slow in debug).
        for byte in (0..image.len()).step_by(97) {
            let mut bad = image.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode_snapshot(&bad).is_err(),
                "bit flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(parse_snap_name(&snap_name(0)), Some(0));
        assert_eq!(parse_snap_name(&snap_name(123456)), Some(123456));
        assert_eq!(parse_snap_name("wal.log"), None);
        assert_eq!(parse_snap_name("snap-xyz.snap"), None);
    }

    #[test]
    fn chunking_survives_many_entries() {
        let entries: Vec<Entry> = (0..ENTRY_CHUNK + 10)
            .map(|i| Entry::at(&format!("hn=h{i}")).unwrap().with_class("c"))
            .collect();
        let mut it = entries.iter();
        let image = encode_snapshot(
            1,
            SnapshotContent {
                regs: Vec::new(),
                groups: Vec::new(),
                targets: Vec::new(),
                entries: &mut it,
            },
        );
        let loaded = decode_snapshot(&image).unwrap();
        assert_eq!(loaded.entries.len(), ENTRY_CHUNK + 10);
    }
}
