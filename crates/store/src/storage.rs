//! The pluggable storage layer: a small named-file abstraction with an
//! in-memory backend (tests, crash modelling), a real filesystem backend
//! (fsync + atomic rename), and mmap-backed reads for snapshot loading.
//!
//! The durability model is explicit: `append` may land in a volatile
//! cache until `sync` is called, while `write_atomic` is all-or-nothing
//! *and* durable on return (write temp → fsync → rename → fsync dir).
//! [`MemStorage`] mirrors exactly that model — appended bytes past the
//! last `sync` are discarded by [`MemStorage::crash`] — so recovery
//! tests exercise the same lose-the-tail semantics a real power cut has.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use parking_lot::Mutex;

/// Errors from the storage layer. Everything is recoverable by policy:
/// callers degrade to "start empty + warn", never panic.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error from the backing store.
    Io(std::io::Error),
    /// A frame or file failed validation (bad magic, CRC mismatch,
    /// truncated header, decode error). The payload names the problem.
    Corrupt(String),
    /// An injected crash fired (test machinery only). `durable` reports
    /// whether the record being written survived to durable storage —
    /// the recovery oracle's ground truth.
    Crashed { durable: bool },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Crashed { durable } => {
                write!(f, "injected crash (record durable: {durable})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Result alias for the storage layer.
pub type StoreResult<T> = Result<T, StoreError>;

/// Bytes read back from a backend: either an owned buffer or a mapped
/// file view. Derefs to `[u8]` either way.
#[derive(Debug)]
pub enum Blob {
    /// Heap-owned bytes.
    Owned(Vec<u8>),
    /// An mmap'd read-only view (file backend with mmap enabled).
    #[cfg(unix)]
    Mapped(crate::mmap::Mmap),
}

impl std::ops::Deref for Blob {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Blob::Owned(v) => v,
            #[cfg(unix)]
            Blob::Mapped(m) => m,
        }
    }
}

/// A flat namespace of named byte files — everything the WAL and
/// snapshot machinery needs from a disk, small enough that an in-memory
/// model can implement it bit-for-bit (including fsync semantics).
pub trait Storage: Send + Sync {
    /// Names present, sorted.
    fn list(&self) -> StoreResult<Vec<String>>;
    /// Current length of `name`, or `None` if absent.
    fn len(&self, name: &str) -> StoreResult<Option<u64>>;
    /// Read the whole file.
    fn read(&self, name: &str) -> StoreResult<Blob>;
    /// Append bytes to `name`, creating it if absent. Durable only after
    /// [`Storage::sync`].
    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// Make all appended bytes of `name` durable.
    fn sync(&self, name: &str) -> StoreResult<()>;
    /// Truncate `name` to `len` bytes (drops a torn tail).
    fn truncate(&self, name: &str, len: u64) -> StoreResult<()>;
    /// Replace `name` with `data`, atomically and durably: a crash at
    /// any point leaves either the old content or the new, never a mix.
    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// Delete `name` (ok if absent).
    fn remove(&self, name: &str) -> StoreResult<()>;
}

#[derive(Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes below this offset survive a crash; the tail is volatile.
    durable_len: usize,
}

/// In-memory backend with an explicit crash model: [`MemStorage::crash`]
/// discards every byte appended since the last `sync`, exactly as a
/// power cut discards an unsynced page cache.
#[derive(Default)]
pub struct MemStorage {
    files: Mutex<BTreeMap<String, MemFile>>,
}

impl MemStorage {
    /// Empty store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Simulate a process/machine crash: volatile tails vanish. The
    /// store can then be "reopened" by recovering from it again.
    pub fn crash(&self) {
        let mut files = self.files.lock();
        for f in files.values_mut() {
            f.data.truncate(f.durable_len);
        }
    }

    /// Total durable bytes across all files (diagnostics).
    pub fn durable_bytes(&self) -> usize {
        self.files.lock().values().map(|f| f.durable_len).sum()
    }
}

impl Storage for MemStorage {
    fn list(&self) -> StoreResult<Vec<String>> {
        Ok(self.files.lock().keys().cloned().collect())
    }

    fn len(&self, name: &str) -> StoreResult<Option<u64>> {
        Ok(self.files.lock().get(name).map(|f| f.data.len() as u64))
    }

    fn read(&self, name: &str) -> StoreResult<Blob> {
        self.files
            .lock()
            .get(name)
            .map(|f| Blob::Owned(f.data.clone()))
            .ok_or_else(|| {
                StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no such mem file: {name}"),
                ))
            })
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.files
            .lock()
            .entry(name.to_owned())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> StoreResult<()> {
        if let Some(f) = self.files.lock().get_mut(name) {
            f.durable_len = f.data.len();
        }
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> StoreResult<()> {
        if let Some(f) = self.files.lock().get_mut(name) {
            let len = len as usize;
            f.data.truncate(len);
            f.durable_len = f.durable_len.min(len);
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let mut files = self.files.lock();
        files.insert(
            name.to_owned(),
            MemFile {
                data: data.to_vec(),
                durable_len: data.len(),
            },
        );
        Ok(())
    }

    fn remove(&self, name: &str) -> StoreResult<()> {
        self.files.lock().remove(name);
        Ok(())
    }
}

/// Filesystem backend rooted at one directory. Append handles are cached
/// so the WAL hot path is one `write(2)` (plus `fdatasync` per the
/// journal's fsync policy); snapshots go through write-temp → fsync →
/// rename → fsync-dir so a crash never exposes a half-written file under
/// the final name.
pub struct FileStorage {
    root: PathBuf,
    handles: Mutex<HashMap<String, File>>,
    use_mmap: bool,
}

impl FileStorage {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<FileStorage> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileStorage {
            root,
            handles: Mutex::new(HashMap::new()),
            use_mmap: cfg!(unix),
        })
    }

    /// Disable mmap reads (reads copy through a heap buffer instead).
    pub fn without_mmap(mut self) -> FileStorage {
        self.use_mmap = false;
        self
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn with_handle<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut File) -> std::io::Result<R>,
    ) -> StoreResult<R> {
        let mut handles = self.handles.lock();
        if !handles.contains_key(name) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(self.path(name))?;
            handles.insert(name.to_owned(), file);
        }
        let file = handles
            .get_mut(name)
            .ok_or_else(|| StoreError::Io(std::io::Error::other("handle vanished under lock")))?;
        Ok(f(file)?)
    }

    fn sync_dir(&self) {
        // Directory fsync makes the rename itself durable; failure here
        // (some filesystems refuse) only weakens durability, never
        // correctness, so it is deliberately non-fatal.
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl Storage for FileStorage {
    fn list(&self) -> StoreResult<Vec<String>> {
        let mut names = Vec::new();
        for dent in std::fs::read_dir(&self.root)? {
            let dent = dent?;
            if dent.file_type()?.is_file() {
                if let Ok(name) = dent.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn len(&self, name: &str) -> StoreResult<Option<u64>> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn read(&self, name: &str) -> StoreResult<Blob> {
        #[cfg(unix)]
        if self.use_mmap {
            let file = File::open(self.path(name))?;
            return Ok(Blob::Mapped(crate::mmap::Mmap::map(&file)?));
        }
        let mut buf = Vec::new();
        File::open(self.path(name))?.read_to_end(&mut buf)?;
        Ok(Blob::Owned(buf))
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.with_handle(name, |f| f.write_all(data))
    }

    fn sync(&self, name: &str) -> StoreResult<()> {
        self.with_handle(name, |f| f.sync_data())
    }

    fn truncate(&self, name: &str, len: u64) -> StoreResult<()> {
        self.with_handle(name, |f| {
            f.set_len(len)?;
            // The cached handle is in append mode; reposition defensively
            // for platforms that honor the cursor.
            f.seek(SeekFrom::End(0)).map(|_| ())
        })
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        self.sync_dir();
        // Any cached append handle now points at the unlinked old inode.
        self.handles.lock().remove(name);
        Ok(())
    }

    fn remove(&self, name: &str) -> StoreResult<()> {
        self.handles.lock().remove(name);
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_discards_unsynced_tail() {
        let s = MemStorage::new();
        s.append("wal", b"durable").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"-volatile").unwrap();
        s.crash();
        assert_eq!(&*s.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn mem_write_atomic_is_durable() {
        let s = MemStorage::new();
        s.write_atomic("snap", b"image").unwrap();
        s.crash();
        assert_eq!(&*s.read("snap").unwrap(), b"image");
    }

    #[test]
    fn file_roundtrip_append_truncate() {
        let root = std::env::temp_dir().join(format!("gis-store-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let s = FileStorage::open(&root).unwrap();
        s.append("wal", b"hello ").unwrap();
        s.append("wal", b"world").unwrap();
        s.sync("wal").unwrap();
        assert_eq!(&*s.read("wal").unwrap(), b"hello world");
        s.truncate("wal", 5).unwrap();
        assert_eq!(&*s.read("wal").unwrap(), b"hello");
        s.append("wal", b"!").unwrap();
        assert_eq!(&*s.read("wal").unwrap(), b"hello!");
        s.write_atomic("snap", b"image-v1").unwrap();
        assert_eq!(&*s.read("snap").unwrap(), b"image-v1");
        assert_eq!(s.list().unwrap(), vec!["snap".to_owned(), "wal".to_owned()]);
        s.remove("wal").unwrap();
        assert_eq!(s.len("wal").unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }
}
