//! Seeded crash injection for the durability machinery.
//!
//! A [`CrashPlan`] arms exactly one kill-point: when the journal's
//! mutation counter reaches `at_op` and execution passes the named
//! [`KillPoint`], the operation returns [`StoreError::Crashed`]
//! (carrying whether the in-flight record made it to durable storage)
//! instead of completing. Paired with [`MemStorage::crash`] this gives a
//! deterministic model of "the process died right *there*" for every
//! interesting *there* in the append → apply → snapshot-rename pipeline.
//!
//! [`StoreError::Crashed`]: crate::StoreError::Crashed
//! [`MemStorage::crash`]: crate::MemStorage::crash

/// Where in the durability pipeline the injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Before the WAL frame is appended: the op is lost entirely.
    BeforeWalAppend,
    /// Mid-append: a durable *prefix* of the frame lands (a torn write).
    /// Recovery must detect the tear via CRC and truncate it.
    MidWalAppend,
    /// After append+sync, before the in-memory apply: the op is durable
    /// but the crashed process never acted on it. Recovery replays it.
    AfterWalAppend,
    /// After the in-memory apply: durable and applied; the op survives.
    AfterApply,
    /// At snapshot time, before anything is written.
    BeforeSnapshotWrite,
    /// A truncated snapshot image becomes visible under the *final* name
    /// (models a lying disk / non-atomic rename). Recovery must reject
    /// it by CRC and fall back to the previous snapshot + WAL.
    TornSnapshotVisible,
    /// The temp image is written but the rename never happens.
    BeforeSnapshotRename,
    /// The rename landed but the WAL was not yet compacted: the WAL
    /// still holds records the snapshot already covers. Recovery must
    /// skip them by sequence number, not re-apply them.
    AfterSnapshotRename,
}

/// All kill-points, in pipeline order (test matrices iterate this).
pub const ALL_KILL_POINTS: [KillPoint; 8] = [
    KillPoint::BeforeWalAppend,
    KillPoint::MidWalAppend,
    KillPoint::AfterWalAppend,
    KillPoint::AfterApply,
    KillPoint::BeforeSnapshotWrite,
    KillPoint::TornSnapshotVisible,
    KillPoint::BeforeSnapshotRename,
    KillPoint::AfterSnapshotRename,
];

/// One armed crash: fire at `point` while processing mutation number
/// `at_op` (1-based; snapshot points use the count of ops logged so
/// far). `torn_keep` bounds how many bytes of the in-flight frame or
/// image survive at the tearing kill-points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based mutation index at which to fire.
    pub at_op: u64,
    /// The pipeline location.
    pub point: KillPoint,
    /// Bytes of the frame/image kept by `MidWalAppend` /
    /// `TornSnapshotVisible` (clamped to strictly less than the whole).
    pub torn_keep: usize,
}

impl CrashPlan {
    /// Arm `point` at mutation `at_op` with a default half-frame tear.
    pub fn at(at_op: u64, point: KillPoint) -> CrashPlan {
        CrashPlan {
            at_op,
            point,
            torn_keep: usize::MAX,
        }
    }

    /// Set the torn-write length.
    pub fn keeping(mut self, torn_keep: usize) -> CrashPlan {
        self.torn_keep = torn_keep;
        self
    }
}
