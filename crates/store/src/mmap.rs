//! Read-only memory mapping for snapshot loading (unix only).
//!
//! Million-entry snapshots are read once, sequentially, at startup;
//! mapping the file avoids a second copy of the whole image through a
//! heap buffer and lets the page cache feed the decoder directly. No
//! external crate is available offline, so this is a thin, safe wrapper
//! over the two raw syscalls (`mmap`/`munmap`); the mapping is private
//! and read-only, and unmapped on drop.

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, privately mapped view of a file. Derefs to `[u8]`.
pub struct Mmap {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

// The mapping is PROT_READ/MAP_PRIVATE: no aliasing writers through this
// handle, so sharing the view across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only. Empty files yield an empty (unmapped) view:
    /// `mmap` rejects zero-length mappings.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is valid for the duration of the call; we request a
        // fresh read-only private mapping and check for MAP_FAILED.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: exactly the region returned by mmap in map().
            unsafe {
                ffi::munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mmap({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("gis-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"hello mapping")
            .unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(&*m, b"hello mapping");
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_is_empty_view() {
        let dir = std::env::temp_dir().join(format!("gis-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        std::fs::File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert!(m.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
