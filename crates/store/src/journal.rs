//! The journal: WAL appends, periodic snapshots, and crash recovery,
//! glued to a [`Storage`] backend.
//!
//! Write path (per mutation): frame the record, append to `wal.log`,
//! fsync per [`FsyncPolicy`], *then* the caller applies the op in
//! memory. Snapshot path (every [`JournalOptions::snapshot_every`]
//! records): encode the full state, `write_atomic` it under a
//! sequence-stamped name, reset the WAL to bare magic (compaction), and
//! prune all but the newest two snapshots.
//!
//! Recovery ([`Journal::open`]) never fails: every damaged artifact
//! degrades — a corrupt newest snapshot falls back to the previous one,
//! a torn WAL tail is truncated at the last intact record, a missing
//! directory starts empty — and each degradation lands in
//! [`RecoveryReport::warnings`] so services can surface it as a metric
//! instead of a panic.

use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use gis_netsim::SimTime;

use crate::crash::{CrashPlan, KillPoint};
use crate::replay::RecoveredState;
use crate::snapshot::{
    decode_snapshot, encode_snapshot, parse_snap_name, snap_name, SnapshotContent,
};
use crate::storage::{Storage, StoreError, StoreResult};
use crate::wal::{frame_record, scan_wal, WalOp, WalRecord, WAL_FILE, WAL_MAGIC};

/// Name of the timeline-anchor file: 8 LE bytes holding the unix-epoch
/// microsecond instant at which this journal's sim timeline began.
pub const ANCHOR_FILE: &str = "anchor";

/// When WAL appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record: a crash loses at most the op in flight.
    #[default]
    Always,
    /// fsync every `n` records: bounded loss window, amortized cost.
    EveryN(u32),
    /// Never fsync explicitly (the OS flushes eventually): fastest, and
    /// recovery still lands on *some* intact prefix thanks to framing.
    Never,
}

/// How recovered timestamps relate to the restarted process's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeBase {
    /// The new timeline continues the old one (same epoch): recovered
    /// clocks are already correct. Right for deterministic sims and for
    /// live restarts within one runtime.
    #[default]
    Continue,
    /// The new timeline has its own origin: shift every recovered clock
    /// by the wall-time delta between the two origins (held in the
    /// [`ANCHOR_FILE`]), so a registration 10s from expiry at the crash
    /// is still ~10s from expiry after a 5s-later restart.
    Absolute,
}

/// Journal tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalOptions {
    /// Durability of individual WAL appends.
    pub fsync: FsyncPolicy,
    /// Take a snapshot after this many WAL records (0 = never, caller
    /// snapshots explicitly).
    pub snapshot_every: u64,
    /// Clock-rebasing behaviour on recovery.
    pub base: TimeBase,
    /// Armed crash injection (tests only).
    pub crash: Option<CrashPlan>,
}

/// What recovery found and did — one warning per degradation, so a
/// service can count them without parsing logs.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Snapshot file the state was loaded from, if any.
    pub snapshot: Option<String>,
    /// Sequence covered by that snapshot (0 if none).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records: usize,
    /// Why the WAL tail was truncated, if it was.
    pub torn_tail: Option<String>,
    /// Microseconds every recovered clock was shifted by.
    pub rebase_delta_us: i64,
    /// Human-readable degradations (corrupt snapshot skipped, WAL
    /// damage, anchor trouble, ...).
    pub warnings: Vec<String>,
}

fn unix_now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// The write-side handle: owns the WAL cursor and snapshot cadence.
pub struct Journal {
    storage: Arc<dyn Storage>,
    opts: JournalOptions,
    /// Sequence number the next logged record gets.
    next_seq: u64,
    /// Records logged since the last snapshot (compaction debt).
    records_since_snapshot: u64,
    /// Appends since the last explicit sync (for `FsyncPolicy::EveryN`).
    unsynced: u32,
    /// 1-based count of mutations this instance has processed — the
    /// clock crash plans are armed against.
    ops_counter: u64,
}

impl Journal {
    /// Recover state from `storage` and open a write handle positioned
    /// after the last durable record. Infallible by policy: damage
    /// degrades toward empty state, with a warning per degradation.
    pub fn open(
        storage: Arc<dyn Storage>,
        opts: JournalOptions,
        now: SimTime,
    ) -> (Journal, RecoveredState, RecoveryReport) {
        let mut report = RecoveryReport::default();

        // Clear leftovers from interrupted atomic writes.
        match storage.list() {
            Ok(names) => {
                for name in names.iter().filter(|n| n.ends_with(".tmp")) {
                    if storage.remove(name).is_ok() {
                        report
                            .warnings
                            .push(format!("removed interrupted temp file {name}"));
                    }
                }
            }
            Err(e) => report.warnings.push(format!("cannot list store: {e}")),
        }

        let delta_us = Self::anchor_delta(&storage, opts.base, now, &mut report);
        report.rebase_delta_us = delta_us;

        // Newest intact snapshot wins; corrupt ones are skipped (never
        // replayed), not fatal.
        let mut snap_names: Vec<(u64, String)> = storage
            .list()
            .unwrap_or_default()
            .into_iter()
            .filter_map(|n| parse_snap_name(&n).map(|seq| (seq, n)))
            .collect();
        snap_names.sort();
        let mut state = RecoveredState::empty();
        for (seq, name) in snap_names.iter().rev() {
            let image = match storage.read(name) {
                Ok(b) => b,
                Err(e) => {
                    report
                        .warnings
                        .push(format!("cannot read snapshot {name}: {e}"));
                    continue;
                }
            };
            match decode_snapshot(&image) {
                Ok(mut snap) => {
                    if delta_us != 0 {
                        for r in &mut snap.regs {
                            r.rebase(delta_us);
                        }
                        for g in &mut snap.groups {
                            g.rebase(delta_us);
                        }
                    }
                    state = RecoveredState::from_snapshot(snap);
                    report.snapshot = Some(name.clone());
                    report.snapshot_seq = *seq;
                    break;
                }
                Err(e) => {
                    report
                        .warnings
                        .push(format!("snapshot {name} invalid, skipping: {e}"));
                }
            }
        }

        // Replay the WAL tail: records above the snapshot's sequence, in
        // order, through the same apply path the live engine uses.
        let mut last_seq = state.seq;
        match storage.len(WAL_FILE) {
            Ok(Some(_)) => match storage.read(WAL_FILE) {
                Ok(bytes) => {
                    let scan = scan_wal(&bytes);
                    if let Some(reason) = &scan.torn {
                        report.warnings.push(format!(
                            "wal damaged after {} records: {reason}; truncating",
                            scan.records.len()
                        ));
                        report.torn_tail = Some(reason.clone());
                        if scan.valid_len < WAL_MAGIC.len() as u64 {
                            if let Err(e) = storage.write_atomic(WAL_FILE, WAL_MAGIC) {
                                report.warnings.push(format!("cannot reset wal: {e}"));
                            }
                        } else if let Err(e) = storage.truncate(WAL_FILE, scan.valid_len) {
                            report.warnings.push(format!("cannot truncate wal: {e}"));
                        }
                    }
                    for mut rec in scan.records {
                        if rec.seq <= state.seq {
                            continue; // already covered by the snapshot
                        }
                        if delta_us != 0 {
                            rec.op.rebase(delta_us);
                        }
                        state.apply(&rec.op);
                        state.seq = rec.seq;
                        last_seq = rec.seq;
                        report.wal_records += 1;
                    }
                }
                Err(e) => report.warnings.push(format!("cannot read wal: {e}")),
            },
            Ok(None) => {
                if let Err(e) = storage.write_atomic(WAL_FILE, WAL_MAGIC) {
                    report.warnings.push(format!("cannot create wal: {e}"));
                }
            }
            Err(e) => report.warnings.push(format!("cannot stat wal: {e}")),
        }

        let journal = Journal {
            storage,
            opts,
            next_seq: last_seq + 1,
            records_since_snapshot: report.wal_records as u64,
            unsynced: 0,
            ops_counter: 0,
        };
        (journal, state, report)
    }

    /// Read (or establish) the timeline anchor and compute the clock
    /// shift recovery must apply.
    fn anchor_delta(
        storage: &Arc<dyn Storage>,
        base: TimeBase,
        now: SimTime,
        report: &mut RecoveryReport,
    ) -> i64 {
        let new_origin = unix_now_us().saturating_sub(now.0);
        let old_origin = match storage.len(ANCHOR_FILE) {
            Ok(Some(8)) => match storage.read(ANCHOR_FILE) {
                Ok(b) => {
                    let mut raw = [0u8; 8];
                    raw.copy_from_slice(&b[..8]);
                    Some(u64::from_le_bytes(raw))
                }
                Err(e) => {
                    report.warnings.push(format!("cannot read anchor: {e}"));
                    None
                }
            },
            Ok(Some(n)) => {
                report
                    .warnings
                    .push(format!("anchor has {n} bytes, expected 8; ignoring"));
                None
            }
            Ok(None) => None,
            Err(e) => {
                report.warnings.push(format!("cannot stat anchor: {e}"));
                None
            }
        };
        match base {
            TimeBase::Continue => {
                // Same timeline: no shift. Establish the anchor on first
                // open so a later Absolute restart has a reference.
                if old_origin.is_none() {
                    if let Err(e) = storage.write_atomic(ANCHOR_FILE, &new_origin.to_le_bytes()) {
                        report.warnings.push(format!("cannot write anchor: {e}"));
                    }
                }
                0
            }
            TimeBase::Absolute => {
                let delta = match old_origin {
                    Some(old) => {
                        let d = i128::from(old) - i128::from(new_origin);
                        d.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
                    }
                    None => 0,
                };
                if let Err(e) = storage.write_atomic(ANCHOR_FILE, &new_origin.to_le_bytes()) {
                    report.warnings.push(format!("cannot write anchor: {e}"));
                }
                delta
            }
        }
    }

    fn armed(&self, point: KillPoint) -> Option<CrashPlan> {
        self.opts
            .crash
            .filter(|p| p.point == point && p.at_op == self.ops_counter)
    }

    /// Log one op ahead of applying it. Returns the record's sequence
    /// number; on injected crash, [`StoreError::Crashed`] reports whether
    /// the record reached durable storage.
    pub fn log(&mut self, op: &WalOp) -> StoreResult<u64> {
        self.ops_counter += 1;
        if self.armed(KillPoint::BeforeWalAppend).is_some() {
            return Err(StoreError::Crashed { durable: false });
        }
        let rec = WalRecord {
            seq: self.next_seq,
            op: op.clone(),
        };
        let frame = frame_record(&rec);
        if let Some(plan) = self.armed(KillPoint::MidWalAppend) {
            // A torn write: a strict prefix of the frame lands and is
            // even synced — recovery must cut it off by CRC.
            let keep = plan.torn_keep.min(frame.len().saturating_sub(1));
            self.storage.append(WAL_FILE, &frame[..keep])?;
            self.storage.sync(WAL_FILE)?;
            return Err(StoreError::Crashed { durable: false });
        }
        self.storage.append(WAL_FILE, &frame)?;
        let synced = match self.opts.fsync {
            FsyncPolicy::Always => {
                self.storage.sync(WAL_FILE)?;
                true
            }
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.storage.sync(WAL_FILE)?;
                    self.unsynced = 0;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Never => false,
        };
        if self.armed(KillPoint::AfterWalAppend).is_some() {
            return Err(StoreError::Crashed { durable: synced });
        }
        self.next_seq += 1;
        self.records_since_snapshot += 1;
        Ok(rec.seq)
    }

    /// Mark the just-logged op as applied in memory (the second half of
    /// the log → apply pair; only here for the AfterApply kill-point).
    pub fn applied(&mut self) -> StoreResult<()> {
        if self.armed(KillPoint::AfterApply).is_some() {
            return Err(StoreError::Crashed { durable: true });
        }
        Ok(())
    }

    /// True when enough records have accumulated to warrant a snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.opts.snapshot_every > 0 && self.records_since_snapshot >= self.opts.snapshot_every
    }

    /// Sequence number that a snapshot taken right now would cover.
    pub fn covered_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records logged since the last compaction.
    pub fn wal_backlog(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Write a snapshot of `content`, compact the WAL into it, and prune
    /// old snapshots (the newest two are kept: the one just written plus
    /// one fallback in case it is later found damaged).
    pub fn snapshot(&mut self, content: SnapshotContent<'_, '_>) -> StoreResult<u64> {
        if self.armed(KillPoint::BeforeSnapshotWrite).is_some() {
            return Err(StoreError::Crashed { durable: true });
        }
        let seq = self.covered_seq();
        let name = snap_name(seq);
        let image = encode_snapshot(seq, content);
        if let Some(plan) = self.armed(KillPoint::TornSnapshotVisible) {
            // Model a non-atomic rename / lying disk: a truncated image
            // appears under the final name. Recovery must reject it.
            let keep = plan.torn_keep.min(image.len().saturating_sub(1));
            self.storage.write_atomic(&name, &image[..keep])?;
            return Err(StoreError::Crashed { durable: true });
        }
        if self.armed(KillPoint::BeforeSnapshotRename).is_some() {
            // The temp image landed but the rename never happened.
            self.storage.write_atomic(&format!("{name}.tmp"), &image)?;
            return Err(StoreError::Crashed { durable: true });
        }
        self.storage.write_atomic(&name, &image)?;
        if self.armed(KillPoint::AfterSnapshotRename).is_some() {
            // Snapshot landed, WAL not yet compacted: replay must skip
            // the covered records by sequence, not re-apply them.
            return Err(StoreError::Crashed { durable: true });
        }
        self.storage.write_atomic(WAL_FILE, WAL_MAGIC)?;
        self.records_since_snapshot = 0;
        self.unsynced = 0;
        let mut snaps: Vec<(u64, String)> = self
            .storage
            .list()?
            .into_iter()
            .filter_map(|n| parse_snap_name(&n).map(|s| (s, n)))
            .collect();
        snaps.sort();
        while snaps.len() > 2 {
            let (_, old) = snaps.remove(0);
            self.storage.remove(&old)?;
        }
        Ok(seq)
    }

    /// The backing store.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use gis_ldap::Entry;
    use gis_netsim::secs;

    fn upsert(i: u64) -> WalOp {
        WalOp::Upsert(
            Entry::at(&format!("hn=h{i}"))
                .unwrap()
                .with_class("computer")
                .with("idx", i),
        )
    }

    fn opts() -> JournalOptions {
        JournalOptions {
            fsync: FsyncPolicy::Always,
            ..JournalOptions::default()
        }
    }

    #[test]
    fn log_then_recover() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let (mut j, state, report) = Journal::open(storage.clone(), opts(), SimTime::ZERO);
        assert_eq!(state.dit.len(), 0);
        assert!(report.snapshot.is_none());
        for i in 0..5 {
            j.log(&upsert(i)).unwrap();
            j.applied().unwrap();
        }
        let (_, state, report) = Journal::open(storage, opts(), SimTime::ZERO + secs(1));
        assert_eq!(state.dit.len(), 5);
        assert_eq!(state.seq, 5);
        assert_eq!(report.wal_records, 5);
        assert!(report.torn_tail.is_none());
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let (mut j, mut state, _) = Journal::open(storage.clone(), opts(), SimTime::ZERO);
        for i in 0..10 {
            j.log(&upsert(i)).unwrap();
            state.apply(&upsert(i));
        }
        let published = state.dit.clone();
        let mut it = published.iter();
        let seq = j
            .snapshot(SnapshotContent {
                regs: Vec::new(),
                groups: state.group_snaps(),
                targets: state.targets.clone(),
                entries: &mut it,
            })
            .unwrap();
        assert_eq!(seq, 10);
        // Two more after the snapshot.
        for i in 10..12 {
            j.log(&upsert(i)).unwrap();
        }
        let (_, rec, report) = Journal::open(storage, opts(), SimTime::ZERO);
        assert_eq!(report.snapshot_seq, 10);
        assert_eq!(report.wal_records, 2);
        assert_eq!(rec.dit.len(), 12);
        assert_eq!(rec.seq, 12);
    }

    #[test]
    fn unsynced_tail_is_lost_cleanly() {
        let storage = Arc::new(MemStorage::new());
        let dyn_storage: Arc<dyn Storage> = storage.clone();
        let o = JournalOptions {
            fsync: FsyncPolicy::Never,
            ..JournalOptions::default()
        };
        let (mut j, _, _) = Journal::open(dyn_storage.clone(), o, SimTime::ZERO);
        for i in 0..4 {
            j.log(&upsert(i)).unwrap();
        }
        storage.crash();
        let (_, state, _) = Journal::open(dyn_storage, o, SimTime::ZERO);
        // Nothing was synced; the WAL file itself (created atomically)
        // survives but all appended records were volatile.
        assert_eq!(state.dit.len(), 0);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let (mut j, mut state, _) = Journal::open(storage.clone(), opts(), SimTime::ZERO);
        for i in 0..3 {
            j.log(&upsert(i)).unwrap();
            state.apply(&upsert(i));
        }
        let snap1 = state.dit.clone();
        let mut it = snap1.iter();
        j.snapshot(SnapshotContent {
            regs: Vec::new(),
            groups: Vec::new(),
            targets: Vec::new(),
            entries: &mut it,
        })
        .unwrap();
        // Plant a corrupt newer snapshot.
        storage
            .write_atomic(&snap_name(99), b"GISSNAP1garbage")
            .unwrap();
        let (_, rec, report) = Journal::open(storage, opts(), SimTime::ZERO);
        assert_eq!(report.snapshot_seq, 3);
        assert_eq!(rec.dit.len(), 3);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("invalid, skipping")));
    }

    #[test]
    fn absolute_rebase_shifts_clocks() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let o = JournalOptions {
            base: TimeBase::Absolute,
            ..opts()
        };
        // First open at sim time 100s establishes the anchor.
        let (mut j, _, _) = Journal::open(storage.clone(), o, SimTime::ZERO + secs(100));
        let msg = gis_proto::GrrpMessage::register(
            gis_ldap::LdapUrl::server("h1"),
            gis_ldap::Dn::parse("hn=h1").unwrap(),
            SimTime::ZERO + secs(100),
            secs(60),
        );
        j.log(&WalOp::Observe {
            msg,
            now: SimTime::ZERO + secs(100),
        })
        .unwrap();
        // Reopen on a timeline whose origin is (wall-identically) 80s
        // later in sim coordinates: sim clock restarts at 20s.
        let (_, state, report) = Journal::open(storage, o, SimTime::ZERO + secs(20));
        // delta ≈ old_origin - new_origin = (wall-100s) - (wall-20s) = -80s
        // (within a small tolerance for wall time passing between opens).
        let tol = 2_000_000i64;
        assert!(
            (report.rebase_delta_us + 80_000_000).abs() < tol,
            "delta {} not ≈ -80s",
            report.rebase_delta_us
        );
        let reg = state.registry.registrations().next().unwrap();
        let expires = reg.expires_at().0 as i64;
        // Originally expired at 160s; on the new timeline ≈ 80s.
        assert!(
            (expires - 80_000_000).abs() < tol,
            "expiry {expires} not ≈ 80s"
        );
    }
}
