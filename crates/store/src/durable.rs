//! [`DurableDit`]: a [`SharedDit`] whose mutations are journaled.
//!
//! This is the self-contained write-ahead pairing used by the crash
//! oracle and by embedders that don't need a full directory engine:
//! every [`DurableDit::apply`] logs the op, mirrors it through the
//! *same* [`apply_op`] recovery uses (inside the `SharedDit` single-
//! writer path, so readers always see a published prefix of the op
//! sequence), and snapshots on cadence. The live GRIS/GIIS engines use
//! [`Journal`] directly — their apply sites are their own code — but
//! their recovery goes through the identical `Journal::open` path.

use std::collections::BTreeMap;
use std::sync::Arc;

use gis_ldap::{LdapUrl, SharedDit};
use gis_netsim::SimTime;
use gis_proto::SoftStateRegistry;

use crate::journal::{Journal, JournalOptions, RecoveryReport};
use crate::replay::{apply_op, GroupState, RecoveredState};
use crate::snapshot::{RegSnap, SnapshotContent};
use crate::storage::{Storage, StoreResult};
use crate::wal::WalOp;

/// A journaled directory state: shared tree + registry + attribution,
/// every mutation WAL-logged before it is applied.
pub struct DurableDit {
    shared: Arc<SharedDit>,
    registry: SoftStateRegistry,
    groups: BTreeMap<String, GroupState>,
    targets: Vec<LdapUrl>,
    journal: Journal,
}

impl DurableDit {
    /// Recover from `storage` and open for writing.
    pub fn open(
        storage: Arc<dyn Storage>,
        opts: JournalOptions,
        now: SimTime,
    ) -> (DurableDit, RecoveryReport) {
        let (journal, state, report) = Journal::open(storage, opts, now);
        let RecoveredState {
            dit,
            registry,
            groups,
            targets,
            ..
        } = state;
        (
            DurableDit {
                shared: Arc::new(SharedDit::from_dit(dit)),
                registry,
                groups,
                targets,
                journal,
            },
            report,
        )
    }

    /// Log `op`, apply it, and snapshot if the cadence says so. On an
    /// injected crash the error's `durable` flag reports whether the
    /// record survived — the oracle's ground truth.
    pub fn apply(&mut self, op: &WalOp) -> StoreResult<()> {
        self.journal.log(op)?;
        self.shared.mutate(|dit| {
            apply_op(
                dit,
                &mut self.registry,
                &mut self.groups,
                &mut self.targets,
                op,
            )
        });
        self.journal.applied()?;
        if self.journal.wants_snapshot() {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Force a snapshot of the current state.
    pub fn snapshot_now(&mut self) -> StoreResult<u64> {
        let published = self.shared.snapshot();
        let regs: Vec<RegSnap> = self.registry.registrations().map(RegSnap::of).collect();
        let groups: Vec<_> = self
            .groups
            .iter()
            .map(|(name, g)| crate::snapshot::GroupSnap {
                name: name.clone(),
                at: g.at,
                dns: g.dns.clone(),
                entries: g.entries.clone(),
            })
            .collect();
        let mut it = published.iter();
        self.journal.snapshot(SnapshotContent {
            regs,
            groups,
            targets: self.targets.clone(),
            entries: &mut it,
        })
    }

    /// The shared tree (readers hold this).
    pub fn shared(&self) -> &Arc<SharedDit> {
        &self.shared
    }

    /// The soft-state registry.
    pub fn registry(&self) -> &SoftStateRegistry {
        &self.registry
    }

    /// Per-source attribution.
    pub fn groups(&self) -> &BTreeMap<String, GroupState> {
        &self.groups
    }

    /// Agent targets.
    pub fn targets(&self) -> &[LdapUrl] {
        &self.targets
    }

    /// The journal (cadence queries, explicit sequencing).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use gis_ldap::{Dn, Entry};
    use gis_netsim::secs;
    use gis_proto::GrrpMessage;

    fn opts(snapshot_every: u64) -> JournalOptions {
        JournalOptions {
            snapshot_every,
            ..JournalOptions::default()
        }
    }

    #[test]
    fn apply_recover_roundtrip() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let (mut d, _) = DurableDit::open(storage.clone(), opts(0), SimTime::ZERO);
        d.apply(&WalOp::Upsert(
            Entry::at("hn=h1").unwrap().with_class("computer"),
        ))
        .unwrap();
        d.apply(&WalOp::Observe {
            msg: GrrpMessage::register(
                LdapUrl::server("h1"),
                Dn::parse("hn=h1").unwrap(),
                SimTime::ZERO,
                secs(30),
            ),
            now: SimTime::ZERO,
        })
        .unwrap();
        drop(d);
        let (d2, report) = DurableDit::open(storage, opts(0), SimTime::ZERO + secs(1));
        assert_eq!(report.wal_records, 2);
        assert_eq!(d2.shared().len(), 1);
        assert_eq!(d2.registry().len(), 1);
        assert!(d2.groups().contains_key("ldap://h1:389"));
    }

    #[test]
    fn auto_snapshot_on_cadence() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let (mut d, _) = DurableDit::open(storage.clone(), opts(4), SimTime::ZERO);
        for i in 0..6 {
            d.apply(&WalOp::Upsert(
                Entry::at(&format!("hn=h{i}")).unwrap().with_class("c"),
            ))
            .unwrap();
        }
        assert_eq!(d.journal().wal_backlog(), 2); // 4 compacted, 2 since
        drop(d);
        let (d2, report) = DurableDit::open(storage, opts(4), SimTime::ZERO);
        assert_eq!(report.snapshot_seq, 4);
        assert_eq!(report.wal_records, 2);
        assert_eq!(d2.shared().len(), 6);
    }
}
