//! The crash-recovery oracle.
//!
//! Property: for ANY mutation sequence and ANY seeded kill-point, the
//! state recovered after the crash equals a replay of exactly the
//! durably-logged prefix of that sequence. With `FsyncPolicy::Always`
//! the durable prefix is known precisely — every `Ok` apply plus the
//! in-flight op iff the injected error says it reached disk — so the
//! oracle asserts *equality*, not just plausibility.
//!
//! This is what makes the WAL design trustworthy: the recovery path is
//! exercised against every pipeline interleaving (op lost, torn frame,
//! logged-not-applied, torn snapshot visible, snapshot renamed but WAL
//! not compacted, ...) with the tree, the soft-state registry (and its
//! expiry clocks), harvest attribution, and agent targets all compared.

use std::collections::BTreeMap;
use std::sync::Arc;

use gis_ldap::{Dn, Entry, LdapUrl};
use gis_netsim::{secs, SimTime};
use gis_proto::{GrrpMessage, Registration};
use gis_store::{
    CrashPlan, DurableDit, FsyncPolicy, GroupState, JournalOptions, MemStorage, RecoveredState,
    Storage, StoreError, WalOp, ALL_KILL_POINTS,
};
use proptest::prelude::*;

const HOSTS: [&str; 4] = ["h0", "h1", "h2", "h3"];

/// Abstract mutation choices; materialized with a deterministic clock
/// (op `i` happens at `secs(i + 1)`).
#[derive(Debug, Clone)]
enum OpSpec {
    Upsert { host: usize, val: u8 },
    Delete { host: usize },
    Observe { host: usize, ttl_s: u8 },
    Sweep,
    Harvest { host: usize, rows: u8 },
    Target { host: usize },
    Forget { host: usize },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    // The vendored proptest's `prop_oneof!` is unweighted; mutation-heavy
    // variants are simply listed twice to bias the mix toward them.
    prop_oneof![
        (0..HOSTS.len(), any::<u8>()).prop_map(|(host, val)| OpSpec::Upsert { host, val }),
        (0..HOSTS.len(), any::<u8>()).prop_map(|(host, val)| OpSpec::Upsert { host, val }),
        (0..HOSTS.len()).prop_map(|host| OpSpec::Delete { host }),
        (0..HOSTS.len(), 1u8..20).prop_map(|(host, ttl_s)| OpSpec::Observe { host, ttl_s }),
        (0..HOSTS.len(), 1u8..20).prop_map(|(host, ttl_s)| OpSpec::Observe { host, ttl_s }),
        Just(OpSpec::Sweep),
        (0..HOSTS.len(), 0u8..4).prop_map(|(host, rows)| OpSpec::Harvest { host, rows }),
        (0..HOSTS.len(), 0u8..4).prop_map(|(host, rows)| OpSpec::Harvest { host, rows }),
        (0..HOSTS.len()).prop_map(|host| OpSpec::Target { host }),
        (0..HOSTS.len()).prop_map(|host| OpSpec::Forget { host }),
    ]
}

fn materialize(specs: &[OpSpec]) -> Vec<WalOp> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let now = SimTime::ZERO + secs(i as u64 + 1);
            match spec {
                OpSpec::Upsert { host, val } => WalOp::Upsert(
                    Entry::at(&format!("hn={}", HOSTS[*host]))
                        .unwrap()
                        .with_class("computer")
                        .with("v", u64::from(*val)),
                ),
                OpSpec::Delete { host } => {
                    WalOp::Delete(Dn::parse(&format!("hn={}", HOSTS[*host])).unwrap())
                }
                OpSpec::Observe { host, ttl_s } => WalOp::Observe {
                    msg: GrrpMessage::register(
                        LdapUrl::server(HOSTS[*host]),
                        Dn::parse(&format!("hn={}", HOSTS[*host])).unwrap(),
                        now,
                        secs(u64::from(*ttl_s)),
                    ),
                    now,
                },
                OpSpec::Sweep => WalOp::Sweep { now },
                OpSpec::Harvest { host, rows } => WalOp::Harvest {
                    child: LdapUrl::server(HOSTS[*host]),
                    entries: (0..*rows)
                        .map(|r| {
                            Entry::at(&format!("sn=s{r},hn={}", HOSTS[*host]))
                                .unwrap()
                                .with_class("service")
                        })
                        .collect(),
                    now,
                },
                OpSpec::Target { host } => WalOp::Target {
                    directory: LdapUrl::server(HOSTS[*host]),
                },
                OpSpec::Forget { host } => WalOp::Forget {
                    url: LdapUrl::server(HOSTS[*host]),
                },
            }
        })
        .collect()
}

/// Everything recovery must reproduce, in comparable form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    entries: Vec<Entry>,
    regs: Vec<Registration>,
    groups: BTreeMap<String, GroupState>,
    targets: Vec<LdapUrl>,
}

fn fingerprint_of(
    entries: Vec<Entry>,
    regs: Vec<Registration>,
    groups: BTreeMap<String, GroupState>,
    targets: Vec<LdapUrl>,
) -> Fingerprint {
    let mut entries = entries;
    entries.sort_by_cached_key(|e| e.dn().to_string());
    Fingerprint {
        entries,
        regs,
        groups,
        targets,
    }
}

fn durable_fingerprint(d: &DurableDit) -> Fingerprint {
    fingerprint_of(
        d.shared().snapshot().iter().cloned().collect(),
        d.registry().registrations().cloned().collect(),
        d.groups().clone(),
        d.targets().to_vec(),
    )
}

fn expected_fingerprint(ops: &[WalOp]) -> Fingerprint {
    let mut st = RecoveredState::empty();
    for op in ops {
        st.apply(op);
    }
    fingerprint_of(
        st.dit.iter().cloned().collect(),
        st.registry.registrations().cloned().collect(),
        st.groups,
        st.targets,
    )
}

/// Run `ops` against a journaled state with `plan` armed, crash the
/// storage, recover, and assert recovered == replay(durable prefix).
fn check_crash_recovery(ops: &[WalOp], plan: CrashPlan, snapshot_every: u64) {
    let storage = Arc::new(MemStorage::new());
    let dyn_storage: Arc<dyn Storage> = storage.clone();
    let armed = JournalOptions {
        fsync: FsyncPolicy::Always,
        snapshot_every,
        crash: Some(plan),
        ..JournalOptions::default()
    };
    let (mut d, _) = DurableDit::open(dyn_storage.clone(), armed, SimTime::ZERO);

    // Apply until the injected crash; track the durable prefix length.
    let mut durable_prefix = 0usize;
    for op in ops {
        match d.apply(op) {
            Ok(()) => durable_prefix += 1,
            Err(StoreError::Crashed { durable }) => {
                if durable {
                    durable_prefix += 1;
                }
                break;
            }
            Err(e) => panic!("unexpected storage error: {e}"),
        }
    }
    drop(d);
    storage.crash();

    let clean = JournalOptions {
        fsync: FsyncPolicy::Always,
        snapshot_every,
        ..JournalOptions::default()
    };
    let (recovered, report) = DurableDit::open(dyn_storage, clean, SimTime::ZERO);
    let got = durable_fingerprint(&recovered);
    let want = expected_fingerprint(&ops[..durable_prefix]);
    assert_eq!(
        got, want,
        "recovered state != durable prefix replay\nplan: {plan:?}\nreport: {report:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: every kill-point × every crash position ×
    /// arbitrary mutation sequences.
    #[test]
    fn recovery_equals_durable_prefix(
        specs in proptest::collection::vec(op_strategy(), 1..12),
        at_op_frac in 0.0f64..1.0,
        point_idx in 0..ALL_KILL_POINTS.len(),
        torn_keep in 0usize..64,
    ) {
        let ops = materialize(&specs);
        let at_op = 1 + (at_op_frac * ops.len() as f64) as u64;
        let plan = CrashPlan::at(at_op, ALL_KILL_POINTS[point_idx]).keeping(torn_keep);
        // snapshot_every=3 exercises snapshot + compaction mid-sequence,
        // so snapshot kill-points actually fire.
        check_crash_recovery(&ops, plan, 3);
    }

    /// Without snapshots, recovery is pure WAL replay; same oracle.
    #[test]
    fn recovery_without_snapshots(
        specs in proptest::collection::vec(op_strategy(), 1..10),
        at_op in 1u64..10,
        point_idx in 0..4usize, // WAL-side kill points only
    ) {
        let ops = materialize(&specs);
        let plan = CrashPlan::at(at_op, ALL_KILL_POINTS[point_idx]);
        check_crash_recovery(&ops, plan, 0);
    }

    /// A stale snapshot plus a longer WAL tail recovers to the same
    /// state as snapshot-after-compaction (satellite: replay ≡ compact).
    #[test]
    fn stale_snapshot_plus_wal_equals_compacted(
        specs in proptest::collection::vec(op_strategy(), 2..14),
    ) {
        let ops = materialize(&specs);
        let mid = ops.len() / 2;

        // Store A: snapshot forced mid-sequence, WAL holds the tail.
        let sa = Arc::new(MemStorage::new());
        let da: Arc<dyn Storage> = sa.clone();
        let (mut a, _) = DurableDit::open(da.clone(), JournalOptions::default(), SimTime::ZERO);
        for (i, op) in ops.iter().enumerate() {
            a.apply(op).unwrap();
            if i + 1 == mid {
                a.snapshot_now().unwrap();
            }
        }
        drop(a);

        // Store B: snapshot after every op was applied (full compaction).
        let sb = Arc::new(MemStorage::new());
        let db: Arc<dyn Storage> = sb.clone();
        let (mut b, _) = DurableDit::open(db.clone(), JournalOptions::default(), SimTime::ZERO);
        for op in &ops {
            b.apply(op).unwrap();
        }
        b.snapshot_now().unwrap();
        drop(b);

        let (ra, rep_a) = DurableDit::open(da, JournalOptions::default(), SimTime::ZERO);
        let (rb, rep_b) = DurableDit::open(db, JournalOptions::default(), SimTime::ZERO);
        prop_assert!(rep_a.wal_records > 0 || ops.len() == mid);
        prop_assert_eq!(rep_b.wal_records, 0);
        prop_assert_eq!(durable_fingerprint(&ra), durable_fingerprint(&rb));
    }
}

/// Soft-state expiry clocks survive restart: a provider registered
/// before the crash expires at its *original* deadline afterwards, and
/// a pre-deadline sweep does not purge it (satellite: clock persistence).
#[test]
fn expiry_clocks_survive_restart() {
    let storage = Arc::new(MemStorage::new());
    let dyn_storage: Arc<dyn Storage> = storage.clone();
    let (mut d, _) = DurableDit::open(
        dyn_storage.clone(),
        JournalOptions::default(),
        SimTime::ZERO,
    );
    let registered_at = SimTime::ZERO + secs(5);
    let ttl = secs(30);
    d.apply(&WalOp::Observe {
        msg: GrrpMessage::register(
            LdapUrl::server("h0"),
            Dn::parse("hn=h0").unwrap(),
            registered_at,
            ttl,
        ),
        now: registered_at,
    })
    .unwrap();
    let deadline = d.registry().registrations().next().unwrap().expires_at();
    assert_eq!(deadline, registered_at + ttl);
    drop(d);
    storage.crash();

    // Recover "later" on the same timeline (TimeBase::Continue).
    let (d2, _) = DurableDit::open(
        dyn_storage,
        JournalOptions::default(),
        SimTime::ZERO + secs(20),
    );
    let reg = d2.registry().registrations().next().expect("survived");
    assert_eq!(reg.expires_at(), deadline, "expiry deadline drifted");
    assert_eq!(reg.first_seen, registered_at, "registration age lost");

    // Original deadline still governs: fresh just before, purged after.
    let mut st = RecoveredState {
        registry: d2.registry().clone(),
        ..RecoveredState::empty()
    };
    assert!(st
        .registry
        .is_fresh(&LdapUrl::server("h0"), SimTime(deadline.0 - secs(1).0)));
    let purged = st.registry.sweep(deadline + secs(1));
    assert_eq!(purged, vec![LdapUrl::server("h0")]);
}

/// Re-registration after recovery is a refresh, not a new registration:
/// the provider was never forgotten.
#[test]
fn reregistration_after_recovery_is_refresh() {
    let storage = Arc::new(MemStorage::new());
    let dyn_storage: Arc<dyn Storage> = storage.clone();
    let (mut d, _) = DurableDit::open(
        dyn_storage.clone(),
        JournalOptions::default(),
        SimTime::ZERO,
    );
    d.apply(&WalOp::Observe {
        msg: GrrpMessage::register(
            LdapUrl::server("h0"),
            Dn::parse("hn=h0").unwrap(),
            SimTime::ZERO + secs(1),
            secs(60),
        ),
        now: SimTime::ZERO + secs(1),
    })
    .unwrap();
    drop(d);
    storage.crash();

    let (d2, _) = DurableDit::open(
        dyn_storage,
        JournalOptions::default(),
        SimTime::ZERO + secs(10),
    );
    let mut registry = d2.registry().clone();
    let is_new = registry.observe(
        GrrpMessage::register(
            LdapUrl::server("h0"),
            Dn::parse("hn=h0").unwrap(),
            SimTime::ZERO + secs(10),
            secs(60),
        ),
        SimTime::ZERO + secs(10),
    );
    assert!(!is_new, "pre-crash provider treated as brand new");
    let reg = registry.registrations().next().unwrap();
    assert_eq!(reg.refresh_count, 2);
    assert_eq!(reg.first_seen, SimTime::ZERO + secs(1));
}

/// Deterministic spot-check of every kill-point at every position for
/// one representative sequence (fast, non-random complement to the
/// proptest sweep; also what `exp_persistence --smoke` re-runs).
#[test]
fn kill_matrix_spot_check() {
    let specs = vec![
        OpSpec::Observe { host: 0, ttl_s: 10 },
        OpSpec::Harvest { host: 0, rows: 2 },
        OpSpec::Upsert { host: 1, val: 7 },
        OpSpec::Observe { host: 1, ttl_s: 3 },
        OpSpec::Sweep,
        OpSpec::Target { host: 2 },
        OpSpec::Forget { host: 0 },
    ];
    let ops = materialize(&specs);
    for point in ALL_KILL_POINTS {
        for at_op in 1..=ops.len() as u64 {
            for torn_keep in [0, 3, 11] {
                check_crash_recovery(&ops, CrashPlan::at(at_op, point).keeping(torn_keep), 3);
            }
        }
    }
}
