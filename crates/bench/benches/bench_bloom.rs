//! Microbenchmarks: Bloom summary construction and membership probes
//! (the lossy-aggregation routing path, §5.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_giis::{attr_token, BloomFilter};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.sample_size(60).measurement_time(Duration::from_secs(2));

    let tokens: Vec<String> = (0..1000)
        .map(|i| attr_token("system", &format!("os-{i}")))
        .collect();

    g.bench_function("build_1000_tokens_10bpe", |b| {
        b.iter_batched(
            || BloomFilter::for_capacity(1000, 10),
            |mut bf| {
                for t in &tokens {
                    bf.insert(t);
                }
                bf
            },
            BatchSize::SmallInput,
        )
    });

    let mut bf = BloomFilter::for_capacity(1000, 10);
    for t in &tokens {
        bf.insert(t);
    }
    g.bench_function("probe_hit", |b| {
        b.iter(|| black_box(&bf).may_contain(black_box(&tokens[500])))
    });
    g.bench_function("probe_miss", |b| {
        b.iter(|| black_box(&bf).may_contain(black_box("system=absent")))
    });
    g.bench_function("attr_token_format", |b| {
        b.iter(|| attr_token(black_box("System"), black_box("Linux 2.4")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
