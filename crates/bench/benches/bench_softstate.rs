//! Microbenchmarks: soft-state registry operations — the GIIS's GRRP
//! ingest path (§10.4: "these actions comprise little more than
//! management of a list of active providers").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{secs, SimTime};
use gis_proto::{GrrpMessage, SoftStateRegistry};
use std::hint::black_box;
use std::time::Duration;

fn populated(n: usize, now: SimTime) -> SoftStateRegistry {
    let mut reg = SoftStateRegistry::new();
    for i in 0..n {
        reg.observe(
            GrrpMessage::register(
                LdapUrl::server(format!("gris.h{i}")),
                Dn::parse(&format!("hn=h{i}")).unwrap(),
                now,
                secs(90),
            ),
            now,
        );
    }
    reg
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("softstate");
    g.sample_size(40).measurement_time(Duration::from_secs(2));
    let t0 = SimTime::ZERO;

    g.bench_function("observe_new", |b| {
        b.iter_batched(
            SoftStateRegistry::new,
            |mut reg| {
                reg.observe(
                    GrrpMessage::register(
                        LdapUrl::server("gris.new"),
                        Dn::parse("hn=new").unwrap(),
                        t0,
                        secs(90),
                    ),
                    t0,
                );
                reg
            },
            BatchSize::SmallInput,
        )
    });

    let mut refresh_reg = populated(1000, t0);
    g.bench_function("observe_refresh_in_1000", |b| {
        b.iter(|| {
            refresh_reg.observe(
                GrrpMessage::register(
                    LdapUrl::server("gris.h500"),
                    Dn::parse("hn=h500").unwrap(),
                    t0 + secs(1),
                    secs(90),
                ),
                t0 + secs(1),
            )
        })
    });

    for n in [100usize, 1000, 10_000] {
        let reg = populated(n, t0);
        g.bench_function(format!("active_iter_{n}"), |b| {
            b.iter(|| black_box(&reg).active(t0 + secs(10)).count())
        });
        // A sweep that purges nothing leaves the registry untouched, so
        // it can run repeatedly on one instance with no per-iteration
        // clone: this measures the early-return path alone.
        let mut noop_reg = populated(n, t0);
        g.bench_function(format!("sweep_none_expired_{n}"), |b| {
            b.iter(|| noop_reg.sweep(t0 + secs(10)))
        });
        g.bench_function(format!("sweep_all_expired_{n}"), |b| {
            b.iter_batched(
                || reg.clone(),
                |mut r| {
                    let purged = r.sweep(t0 + secs(1000));
                    (r, purged)
                },
                BatchSize::SmallInput,
            )
        });
        // O(1) when nothing has lapsed: answered from the expiry heap's
        // minimum without iterating the table.
        g.bench_function(format!("active_count_fresh_{n}"), |b| {
            b.iter(|| black_box(&reg).active_count(t0 + secs(10)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
