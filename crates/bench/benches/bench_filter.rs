//! Microbenchmarks: RFC 2254 filter parsing and evaluation — the hot
//! path of every GRIP search.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_ldap::{Entry, Filter};
use std::hint::black_box;
use std::time::Duration;

fn sample_entry() -> Entry {
    Entry::at("perf=load, hn=hostX, o=O1")
        .unwrap()
        .with_class("perf")
        .with_class("loadaverage")
        .with("system", "linux 2.4")
        .with("arch", "x86")
        .with("cpucount", 8i64)
        .with("memorymb", 4096i64)
        .with("load1", 0.8f64)
        .with("load5", 1.2f64)
        .with("free", 33515i64)
        .with("path", "/disks/scratch1")
}

const SIMPLE: &str = "(objectclass=computer)";
const COMPLEX: &str =
    "(&(objectclass=loadaverage)(|(load5<=1.5)(cpucount>=16))(!(system=*irix*))(arch=x86))";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter");
    g.sample_size(60).measurement_time(Duration::from_secs(2));

    g.bench_function("parse_simple", |b| {
        b.iter(|| Filter::parse(black_box(SIMPLE)).unwrap())
    });
    g.bench_function("parse_complex", |b| {
        b.iter(|| Filter::parse(black_box(COMPLEX)).unwrap())
    });

    let entry = sample_entry();
    let simple = Filter::parse(SIMPLE).unwrap();
    let complex = Filter::parse(COMPLEX).unwrap();
    g.bench_function("eval_simple", |b| {
        b.iter(|| black_box(&simple).matches(black_box(&entry)))
    });
    g.bench_function("eval_complex", |b| {
        b.iter(|| black_box(&complex).matches(black_box(&entry)))
    });

    // The three evaluator paths rebuilt to run without per-comparison
    // allocations: substring scan, approx token match, and
    // non-numeric ordering.
    let substr = Filter::parse("(path=*scratch*)").unwrap();
    g.bench_function("eval_substring", |b| {
        b.iter(|| black_box(&substr).matches(black_box(&entry)))
    });
    let approx = Filter::Approx("system".into(), "LINUX   2.4".into());
    g.bench_function("eval_approx", |b| {
        b.iter(|| black_box(&approx).matches(black_box(&entry)))
    });
    let lexico = Filter::parse("(arch>=x10)").unwrap();
    g.bench_function("eval_ordering_lexicographic", |b| {
        b.iter(|| black_box(&lexico).matches(black_box(&entry)))
    });

    g.bench_function("display_complex", |b| {
        b.iter_batched(|| complex.clone(), |f| f.to_string(), BatchSize::SmallInput)
    });

    // Evaluation over a batch of 1000 entries — the per-search workload
    // of a mid-sized GRIS.
    let entries: Vec<Entry> = (0..1000)
        .map(|i| {
            sample_entry()
                .with("idx", i as i64)
                .with("load5", (i % 40) as f64 / 10.0)
        })
        .collect();
    g.bench_function("eval_complex_x1000", |b| {
        b.iter(|| entries.iter().filter(|e| complex.matches(e)).count())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
