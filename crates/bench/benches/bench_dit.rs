//! Microbenchmarks: DIT scoped search over a populated tree (the local
//! answer path of a harvesting GIIS).

use criterion::{criterion_group, criterion_main, Criterion};
use gis_ldap::{Dit, Dn, Entry, Filter, Rdn, Scope};
use std::hint::black_box;
use std::time::Duration;

/// 100 orgs x 20 hosts x (host + perf entry) = 4000 entries.
fn build_dit() -> Dit {
    let mut dit = Dit::new();
    for o in 0..100 {
        let org = Dn::from_rdns(vec![Rdn::new("o", format!("O{o}"))]);
        for h in 0..20 {
            let host_dn = org.child(Rdn::new("hn", format!("h{h}")));
            dit.upsert(
                Entry::new(host_dn.clone())
                    .with_class("computer")
                    .with("system", if h % 2 == 0 { "linux" } else { "irix" })
                    .with("cpucount", (1 + h % 8) as i64),
            );
            dit.upsert(
                Entry::new(host_dn.child(Rdn::new("perf", "load")))
                    .with_class("loadaverage")
                    .with("load5", (h % 30) as f64 / 10.0),
            );
        }
    }
    dit
}

fn bench(c: &mut Criterion) {
    let dit = build_dit();
    let mut g = c.benchmark_group("dit");
    g.sample_size(40).measurement_time(Duration::from_secs(2));

    let all = Filter::always();
    let selective = Filter::parse("(&(objectclass=computer)(system=linux)(cpucount>=4))").unwrap();
    let root = Dn::root();
    let one_org = Dn::parse("o=O42").unwrap();
    let one_host = Dn::parse("hn=h7, o=O42").unwrap();

    g.bench_function("lookup_base", |b| {
        b.iter(|| dit.search(black_box(&one_host), Scope::Base, &all, &[], 0))
    });
    g.bench_function("subtree_org_scoped", |b| {
        b.iter(|| dit.search(black_box(&one_org), Scope::Sub, &selective, &[], 0))
    });
    g.bench_function("subtree_root_selective", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &selective, &[], 0))
    });
    g.bench_function("subtree_root_match_all", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &all, &[], 0))
    });
    g.bench_function("one_level_org", |b| {
        b.iter(|| dit.search(black_box(&one_org), Scope::One, &all, &[], 0))
    });
    g.bench_function("upsert_delete", |b| {
        let mut dit = build_dit();
        let dn = Dn::parse("hn=new, o=O0").unwrap();
        b.iter(|| {
            dit.upsert(Entry::new(dn.clone()).with_class("computer"));
            dit.delete(&dn);
        })
    });
    g.finish();

    bench_deep(c);
}

/// 5-level DIT: 5 orgs x 5 ous x 20 hosts x 10 services x 1 sensor
/// = 10,530 entries. Models a large VO-wide GIIS cache.
fn build_deep_dit() -> Dit {
    let mut dit = Dit::new();
    for o in 0..5 {
        let org = Dn::from_rdns(vec![Rdn::new("o", format!("O{o}"))]);
        dit.upsert(Entry::new(org.clone()).with_class("organization"));
        for u in 0..5 {
            let ou = org.child(Rdn::new("ou", format!("U{u}")));
            dit.upsert(Entry::new(ou.clone()).with_class("organizationalunit"));
            for h in 0..20 {
                let host = ou.child(Rdn::new("hn", format!("h{h}")));
                dit.upsert(
                    Entry::new(host.clone())
                        .with_class("computer")
                        .with("system", if h % 2 == 0 { "linux" } else { "irix" }),
                );
                for s in 0..10 {
                    let svc = host.child(Rdn::new("svc", format!("s{s}")));
                    dit.upsert(
                        Entry::new(svc.clone())
                            .with_class("service")
                            .with("free", ((h * 7 + s * 13) % 500) as i64),
                    );
                    dit.upsert(
                        Entry::new(svc.child(Rdn::new("perf", "load")))
                            .with_class("loadaverage")
                            .with("load5", ((h + s) % 30) as f64 / 10.0)
                            .with("free", ((h * 11 + s) % 500) as i64),
                    );
                }
            }
        }
    }
    dit
}

/// Deep-tree cases isolating the hierarchical index: the filter is
/// deliberately *not* class-pinned (`free>=250` — no equality term an
/// index could serve), so scoping is the only thing saving work.
fn bench_deep(c: &mut Criterion) {
    let dit = build_deep_dit();
    assert!(dit.len() >= 10_000, "deep tree holds {} entries", dit.len());
    let mut g = c.benchmark_group("dit_deep");
    g.sample_size(40).measurement_time(Duration::from_secs(2));

    let unpinned = Filter::parse("(free>=250)").unwrap();
    let root = Dn::root();
    let org = Dn::parse("o=O1").unwrap();
    let ou = Dn::parse("ou=U2, o=O1").unwrap();
    let host = Dn::parse("hn=h7, ou=U2, o=O1").unwrap();

    // Root-scoped scan: every entry is in scope, so this bounds what any
    // implementation must do — and is what a scoped search also cost
    // before the subtree range index existed.
    g.bench_function("root_scan_unpinned", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &unpinned, &[], 0))
    });
    g.bench_function("subtree_org_unpinned", |b| {
        b.iter(|| dit.search(black_box(&org), Scope::Sub, &unpinned, &[], 0))
    });
    g.bench_function("subtree_host_unpinned", |b| {
        b.iter(|| dit.search(black_box(&host), Scope::Sub, &unpinned, &[], 0))
    });
    g.bench_function("one_level_ou", |b| {
        b.iter(|| dit.search(black_box(&ou), Scope::One, &Filter::always(), &[], 0))
    });
    // Equality-index path on a deep tree: naming-attr term intersected
    // with a class term.
    let pinned = Filter::parse("(&(objectclass=computer)(hn=h7))").unwrap();
    g.bench_function("indexed_and_intersection", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &pinned, &[], 0))
    });
    // Shared-handle hot path: no per-entry deep copies on the way out.
    g.bench_function("subtree_org_shared", |b| {
        b.iter(|| dit.search_shared(black_box(&org), Scope::Sub, &unpinned, &[], 0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
