//! Microbenchmarks: DIT scoped search over a populated tree (the local
//! answer path of a harvesting GIIS).

use criterion::{criterion_group, criterion_main, Criterion};
use gis_ldap::{Dit, Dn, Entry, Filter, Rdn, Scope};
use std::hint::black_box;
use std::time::Duration;

/// 100 orgs x 20 hosts x (host + perf entry) = 4000 entries.
fn build_dit() -> Dit {
    let mut dit = Dit::new();
    for o in 0..100 {
        let org = Dn::from_rdns(vec![Rdn::new("o", format!("O{o}"))]);
        for h in 0..20 {
            let host_dn = org.child(Rdn::new("hn", format!("h{h}")));
            dit.upsert(
                Entry::new(host_dn.clone())
                    .with_class("computer")
                    .with("system", if h % 2 == 0 { "linux" } else { "irix" })
                    .with("cpucount", (1 + h % 8) as i64),
            );
            dit.upsert(
                Entry::new(host_dn.child(Rdn::new("perf", "load")))
                    .with_class("loadaverage")
                    .with("load5", (h % 30) as f64 / 10.0),
            );
        }
    }
    dit
}

fn bench(c: &mut Criterion) {
    let dit = build_dit();
    let mut g = c.benchmark_group("dit");
    g.sample_size(40).measurement_time(Duration::from_secs(2));

    let all = Filter::always();
    let selective = Filter::parse("(&(objectclass=computer)(system=linux)(cpucount>=4))").unwrap();
    let root = Dn::root();
    let one_org = Dn::parse("o=O42").unwrap();
    let one_host = Dn::parse("hn=h7, o=O42").unwrap();

    g.bench_function("lookup_base", |b| {
        b.iter(|| dit.search(black_box(&one_host), Scope::Base, &all, &[], 0))
    });
    g.bench_function("subtree_org_scoped", |b| {
        b.iter(|| dit.search(black_box(&one_org), Scope::Sub, &selective, &[], 0))
    });
    g.bench_function("subtree_root_selective", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &selective, &[], 0))
    });
    g.bench_function("subtree_root_match_all", |b| {
        b.iter(|| dit.search(black_box(&root), Scope::Sub, &all, &[], 0))
    });
    g.bench_function("one_level_org", |b| {
        b.iter(|| dit.search(black_box(&one_org), Scope::One, &all, &[], 0))
    });
    g.bench_function("upsert_delete", |b| {
        let mut dit = build_dit();
        let dn = Dn::parse("hn=new, o=O0").unwrap();
        b.iter(|| {
            dit.upsert(Entry::new(dn.clone()).with_class("computer"));
            dit.delete(&dn);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
