//! Microbenchmarks: discrete-event simulator throughput — bounds how
//! large the partition/scalability experiments can go.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_netsim::{ms, Actor, Ctx, LinkConfig, NodeId, Sim, SimDuration, SimTime};
use std::time::Duration;

/// A ring node: forwards each received token to the next node.
struct RingNode {
    next: NodeId,
    hops_remaining: u64,
}

impl Actor<u64> for RingNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
        if self.hops_remaining > 0 {
            self.hops_remaining -= 1;
            ctx.send(self.next, msg + 1);
        }
    }
}

/// Build a ring of `n` nodes and inject one token that circulates for
/// `hops` total deliveries.
fn ring_sim(n: u32, hops: u64) -> Sim<u64> {
    let mut sim: Sim<u64> = Sim::new(1);
    sim.set_default_link(LinkConfig {
        latency: ms(1),
        jitter: SimDuration::ZERO,
        loss: 0.0,
    });
    for i in 0..n {
        let next = NodeId((i + 1) % n);
        sim.add_node(
            format!("n{i}"),
            Box::new(RingNode {
                next,
                hops_remaining: hops,
            }),
        );
    }
    sim.send_external(NodeId(0), 0);
    sim
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.sample_size(20).measurement_time(Duration::from_secs(3));

    for (nodes, hops) in [(10u32, 10_000u64), (1000, 10_000)] {
        g.bench_function(format!("ring_{nodes}_nodes_{hops}_events"), |b| {
            b.iter_batched(
                || ring_sim(nodes, hops),
                |mut sim| {
                    sim.run_until(SimTime::ZERO + SimDuration::from_secs(100_000));
                    sim.metrics().delivered
                },
                BatchSize::SmallInput,
            )
        });
    }

    g.bench_function("timer_churn_10k", |b| {
        struct TimerNode;
        impl Actor<u64> for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(ms(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, t: u64) {
                if t < 10_000 {
                    ctx.set_timer(ms(1), t + 1);
                }
            }
        }
        b.iter_batched(
            || {
                let mut sim: Sim<u64> = Sim::new(2);
                sim.add_node("t", Box::new(TimerNode));
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::ZERO + SimDuration::from_secs(100));
                sim.metrics().timers_fired
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
