//! Microbenchmarks: the GRIS and GIIS engine hot paths — cache-hit vs
//! cache-miss searches, GRRP handling, and chain fan-out planning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_giis::{Giis, GiisConfig};
use gis_gris::{DynamicHostProvider, Gris, GrisConfig, HostSpec, StaticHostProvider};
use gis_gsi::Requester;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, SimTime};
use gis_proto::{GripRequest, GrrpMessage, SearchSpec};
use std::time::Duration;

fn host_gris() -> (Gris, Dn) {
    let host = HostSpec::linux("bench", 8);
    let dn = host.dn();
    let mut gris = Gris::new(
        GrisConfig::open(LdapUrl::server("gris.bench"), dn.clone()),
        secs(30),
        secs(90),
    );
    gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
    gris.add_provider(Box::new(DynamicHostProvider::new(
        &host,
        1,
        1.0,
        secs(10),
        secs(30),
    )));
    (gris, dn)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    g.sample_size(40).measurement_time(Duration::from_secs(2));
    let t0 = SimTime::ZERO;
    let anon = Requester::anonymous();

    // GRIS: warm-cache search (the common case).
    let (mut gris, dn) = host_gris();
    let spec = SearchSpec::subtree(dn.clone(), Filter::parse("(objectclass=*)").unwrap());
    gris.search(&spec, &anon, t0); // warm the caches
    g.bench_function("gris_search_cached", |b| {
        b.iter(|| gris.search(&spec, &anon, t0 + secs(1)))
    });

    // GRIS: forced provider invocation each time (expired cache).
    g.bench_function("gris_search_uncached", |b| {
        let (mut gris, dn) = host_gris();
        let spec = SearchSpec::subtree(dn, Filter::parse("(objectclass=*)").unwrap());
        let mut t = 0u64;
        b.iter(|| {
            t += 3600; // beyond every TTL
            gris.search(&spec, &anon, t0 + secs(t))
        })
    });

    // GIIS: GRRP ingest (observe + refresh path).
    g.bench_function("giis_grrp_refresh_1000_children", |b| {
        let mut giis = Giis::new(
            GiisConfig::chaining(LdapUrl::server("giis"), Dn::root()),
            secs(30),
            secs(900),
        );
        for i in 0..1000 {
            giis.handle_grrp(
                GrrpMessage::register(
                    LdapUrl::server(format!("gris.h{i}")),
                    Dn::parse(&format!("hn=h{i}")).unwrap(),
                    t0,
                    secs(900),
                ),
                t0,
            );
        }
        let refresh = GrrpMessage::register(
            LdapUrl::server("gris.h500"),
            Dn::parse("hn=h500").unwrap(),
            t0 + secs(1),
            secs(900),
        );
        b.iter(|| giis.handle_grrp(refresh.clone(), t0 + secs(1)))
    });

    // GIIS: planning a scoped fan-out across 1000 registered children.
    g.bench_function("giis_chain_plan_scoped_of_1000", |b| {
        b.iter_batched(
            || {
                let mut giis = Giis::new(
                    GiisConfig::chaining(LdapUrl::server("giis"), Dn::root()),
                    secs(30),
                    secs(900),
                );
                for i in 0..1000 {
                    giis.handle_grrp(
                        GrrpMessage::register(
                            LdapUrl::server(format!("gris.h{i}")),
                            Dn::parse(&format!("hn=h{i}, o=O{}", i % 50)).unwrap(),
                            t0,
                            secs(900),
                        ),
                        t0,
                    );
                }
                giis
            },
            |mut giis| {
                giis.handle_request(
                    1,
                    GripRequest::Search {
                        id: 1,
                        spec: SearchSpec::subtree(Dn::parse("o=O25").unwrap(), Filter::always()),
                    },
                    t0 + secs(1),
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
