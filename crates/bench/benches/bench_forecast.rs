//! Microbenchmarks: NWS forecaster battery throughput (per-observation
//! cost of keeping every method's model current).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gis_netsim::{secs, SimDuration, SimTime};
use gis_nws::{Battery, LinkId, Metric, Nws, Sensor, SensorModel};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("forecast");
    g.sample_size(40).measurement_time(Duration::from_secs(2));

    g.bench_function("battery_observe_1000", |b| {
        let mut sensor = Sensor::new(SensorModel::bandwidth(100.0), 7);
        let samples: Vec<f64> = (0..1000).map(|_| sensor.measure()).collect();
        b.iter_batched(
            Battery::standard,
            |mut battery| {
                for &s in &samples {
                    battery.observe(s);
                }
                battery.predict()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("battery_predict_warm", |b| {
        let mut sensor = Sensor::new(SensorModel::latency(50.0), 9);
        let mut battery = Battery::standard();
        for _ in 0..500 {
            battery.observe(sensor.measure());
        }
        b.iter(|| battery.predict())
    });

    g.bench_function("sensor_measure", |b| {
        let mut sensor = Sensor::new(SensorModel::bandwidth(100.0), 11);
        b.iter(|| sensor.measure())
    });

    g.bench_function("nws_query_cold_link", |b| {
        let mut i = 0u64;
        let mut nws = Nws::new(13, SimDuration::ZERO);
        b.iter(|| {
            i += 1;
            nws.query(
                &LinkId::new(format!("s{i}"), "dst"),
                Metric::BandwidthMbps,
                SimTime::ZERO + secs(i),
            )
        })
    });

    g.bench_function("nws_query_cached", |b| {
        let mut nws = Nws::new(17, SimDuration::from_secs(3600));
        let link = LinkId::new("a", "b");
        nws.query(&link, Metric::LatencyMs, SimTime::ZERO);
        b.iter(|| nws.query(&link, Metric::LatencyMs, SimTime::ZERO + secs(1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
