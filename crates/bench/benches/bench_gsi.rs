//! Microbenchmarks: security-path costs — signing, verification, bind
//! tokens, ACL redaction (the per-message overheads behind experiment
//! E10's trust-model message counts).

use criterion::{criterion_group, criterion_main, Criterion};
use gis_gsi::{
    sign_registration, verify_signed_registration, Acl, Authenticator, BindToken, CertAuthority,
    Grant, KeyPair, Principal, Requester, TrustStore,
};
use gis_ldap::Entry;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gsi");
    g.sample_size(40).measurement_time(Duration::from_secs(2));

    let kp = KeyPair::generate(1);
    let msg = b"register: ldap://gris.hostX:389 hn=hostX,o=O1 valid 90s";
    g.bench_function("sign", |b| b.iter(|| kp.sign(black_box(msg))));
    let sig = kp.sign(msg);
    g.bench_function("verify", |b| {
        b.iter(|| kp.public.verify(black_box(msg), black_box(&sig)))
    });

    let ca = CertAuthority::new("/O=Grid/CN=CA", 2);
    let mut trust = TrustStore::new();
    trust.add_ca(&ca);
    let alice = ca.issue("/O=Grid/CN=alice");
    let proxy = alice.delegate(3);

    g.bench_function("issue_credential", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ca.issue(format!("/O=Grid/CN=user{i}"))
        })
    });

    g.bench_function("verify_chain_depth1", |b| {
        b.iter(|| trust.verify_chain(black_box(&alice.chain)))
    });
    g.bench_function("verify_chain_depth2_proxy", |b| {
        b.iter(|| trust.verify_chain(black_box(&proxy.chain)))
    });

    let token_bytes = BindToken::create(&alice, "ldap://gris.h:389").to_bytes();
    let auth = Authenticator::new(trust.clone(), "ldap://gris.h:389");
    g.bench_function("bind_token_create", |b| {
        b.iter(|| BindToken::create(black_box(&alice), "ldap://gris.h:389"))
    });
    g.bench_function("authenticate_bind", |b| {
        b.iter(|| auth.authenticate(black_box(&token_bytes)))
    });

    let body = b"grrp message canonical bytes ...";
    let blob = sign_registration(&alice, body);
    g.bench_function("sign_registration", |b| {
        b.iter(|| sign_registration(black_box(&alice), black_box(body)))
    });
    g.bench_function("verify_registration", |b| {
        b.iter(|| verify_signed_registration(black_box(&trust), black_box(body), black_box(&blob)))
    });

    // ACL redaction over a typical host entry.
    let entry = Entry::at("hn=hostX")
        .unwrap()
        .with_class("computer")
        .with("system", "linux 2.4")
        .with("arch", "x86")
        .with("cpucount", 8i64)
        .with("memorymb", 4096i64)
        .with("load5", 1.2f64);
    let acl = Acl::default()
        .with_rule(
            Principal::Anonymous,
            Grant::Attrs(vec!["objectclass".into(), "system".into()]),
        )
        .with_rule(Principal::Authenticated, Grant::All);
    let anon = Requester::anonymous();
    let user = Requester::subject("/CN=u");
    g.bench_function("acl_redact_anonymous", |b| {
        b.iter(|| acl.redact(black_box(&entry), black_box(&anon)))
    });
    g.bench_function("acl_redact_full", |b| {
        b.iter(|| acl.redact(black_box(&entry), black_box(&user)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
