//! Microbenchmarks: wire codec encode/decode for the protocol frames —
//! every message between components pays this cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gis_ldap::{Dn, Entry, Filter, LdapUrl, Wire};
use gis_netsim::{secs, SimTime};
use gis_proto::{GripReply, GripRequest, GrrpMessage, ProtocolMessage, ResultCode, SearchSpec};
use std::hint::black_box;
use std::time::Duration;

fn search_request() -> ProtocolMessage {
    ProtocolMessage::Request(GripRequest::Search {
        id: 42,
        spec: SearchSpec::subtree(
            Dn::parse("o=O1").unwrap(),
            Filter::parse("(&(objectclass=computer)(load5<=1.0))").unwrap(),
        )
        .select(&["system", "load5"])
        .limit(100),
    })
}

fn search_result(n_entries: usize) -> ProtocolMessage {
    let entries = (0..n_entries)
        .map(|i| {
            Entry::at(&format!("hn=h{i}, o=O1"))
                .unwrap()
                .with_class("computer")
                .with("system", "linux 2.4")
                .with("cpucount", (i % 16) as i64)
                .with("load5", (i % 30) as f64 / 10.0)
        })
        .collect();
    ProtocolMessage::Reply(GripReply::SearchResult {
        id: 42,
        code: ResultCode::Success,
        entries,
        referrals: vec![LdapUrl::server("gris.other")],
    })
}

fn grrp() -> ProtocolMessage {
    ProtocolMessage::Grrp(GrrpMessage::register(
        LdapUrl::server("gris.hostX"),
        Dn::parse("hn=hostX, o=O1").unwrap(),
        SimTime::ZERO + secs(100),
        secs(90),
    ))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(60).measurement_time(Duration::from_secs(2));

    for (name, msg) in [
        ("search_request", search_request()),
        ("grrp_register", grrp()),
        ("result_10_entries", search_result(10)),
        ("result_100_entries", search_result(100)),
    ] {
        let bytes = msg.to_wire();
        g.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| black_box(&msg).to_wire())
        });
        g.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| ProtocolMessage::from_wire(black_box(&bytes)).unwrap())
        });
        g.bench_function(format!("roundtrip_{name}"), |b| {
            b.iter(|| ProtocolMessage::from_wire(&black_box(&msg).to_wire()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
