//! F1 — Figure 1: distributed virtual organizations under partition.
//!
//! "Users in VO-A and VO-B have access to partially overlapping
//! resources. While VO-B is split by network failure, it should operate
//! as two disjoint fragments."
//!
//! We build the two-VO overlap topology, split VO-B mid-run, and sample
//! the resource count visible to a client of each directory over time.
//! Expected shape: VO-A flat throughout; each VO-B fragment drops to its
//! reachable subset after the soft state of unreachable providers
//! expires, keeps serving that partial view, and recovers after healing.

use gis_bench::{banner, section, Table};
use gis_core::scenario::two_vos;
use gis_ldap::{Dn, Filter};
use gis_netsim::secs;
use gis_proto::SearchSpec;

fn main() {
    banner(
        "F1",
        "VO fragments keep operating under network partition",
        "Figure 1 (and §2.2 robustness requirement)",
    );
    let hosts_per_group = 3;
    let mut sc = two_vos(42, hosts_per_group);
    let q = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());

    let (vo_a_url, vo_b0_url, vo_b1_url) = (
        sc.vo_a.1.clone(),
        sc.vo_b[0].1.clone(),
        sc.vo_b[1].1.clone(),
    );
    let (c_a, c_b0, c_b1) = (sc.clients[0], sc.clients[1], sc.clients[2]);

    let side0: Vec<_> = sc.hosts_b[0]
        .iter()
        .map(|(n, _)| *n)
        .chain([sc.vo_b[0].0, c_b0])
        .collect();
    let side1: Vec<_> = sc.hosts_b[1]
        .iter()
        .map(|(n, _)| *n)
        .chain([sc.vo_b[1].0, c_b1])
        .collect();

    let mut table = Table::new(&["t (s)", "phase", "VO-A view", "VO-B frag0", "VO-B frag1"]);
    let partition_at = 30u64;
    let heal_at = 120u64;

    sc.dep.run_for(secs(5));
    for step in 0..=18 {
        let t = 10 * step;
        let target = secs(t + 5);
        if sc.dep.now() < gis_netsim::SimTime::ZERO + target {
            let gap = (gis_netsim::SimTime::ZERO + target).since(sc.dep.now());
            sc.dep.run_for(gap);
        }
        if t == partition_at {
            sc.dep.sim.partition_between(&side0, &side1);
        }
        if t == heal_at {
            sc.dep.sim.heal_all();
        }
        let phase = if t < partition_at {
            "connected"
        } else if t < heal_at {
            "PARTITIONED"
        } else {
            "healed"
        };
        let view = |dep: &mut gis_core::SimDeployment, client, url: &gis_ldap::LdapUrl| {
            dep.search_and_wait(client, url, q.clone(), secs(15))
                .map(|(_, entries, _)| entries.len().to_string())
                .unwrap_or_else(|| "-".into())
        };
        let a = view(&mut sc.dep, c_a, &vo_a_url);
        let b0 = view(&mut sc.dep, c_b0, &vo_b0_url);
        let b1 = view(&mut sc.dep, c_b1, &vo_b1_url);
        table.row(vec![t.to_string(), phase.into(), a, b0, b1]);
    }

    section("visible computers per directory over time");
    table.print();

    let full_b = 3 * hosts_per_group; // own half + other half + shared
    let frag = 2 * hosts_per_group; // own half + shared
    println!(
        "\nexpected: VO-A stays at {}, VO-B fragments drop {} -> {} during the\n\
         partition (soft-state TTL 30s) and return to {} after healing.",
        2 * hosts_per_group,
        full_b,
        frag,
        full_b
    );
    let m = sc.dep.sim.metrics();
    println!(
        "network totals: {} sent, {} delivered, {} dropped at partition boundary",
        m.sent, m.delivered, m.dropped_partition
    );
}
