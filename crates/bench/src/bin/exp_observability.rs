//! OBS — cost and reach of the end-to-end observability layer.
//!
//! Three claims are measured/demonstrated:
//!
//! 1. **Overhead**: the metrics layer (lock-free histograms, packed
//!    counters, inbox gauges) must be invisible next to real work. The
//!    4-worker pooled-GRIS throughput row from the live-throughput
//!    experiment is run twice — observability on vs off (the `Obs`
//!    kill-switch strips every record call) — and the throughput delta
//!    is reported. `--smoke` exits non-zero if the instrumented run is
//!    more than 5% slower, which is how CI guards the query path against
//!    accidentally expensive instrumentation.
//! 2. **Tracing**: a traced chained query through GIIS fan-out yields a
//!    complete causal span tree (client -> giis.search -> chain leg ->
//!    gris.search -> provider fetches), printed as collected from the
//!    runtime's shared trace sink.
//! 3. **Monitoring namespace**: every service exports its own health as
//!    ordinary DIT entries under `Mds-Vo-name=monitoring`, discoverable
//!    with a plain GRIP search — no side-channel metrics endpoint.
//!
//! With `--json PATH` the overhead numbers are also written as JSON for
//! the benchmark snapshot script.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveRuntime, ServeOptions, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::{Gris, GrisConfig, InfoProvider, ProviderError};
use gis_ldap::{Dn, Entry, Filter, LdapUrl};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::metrics::monitoring_base;
use gis_proto::SearchSpec;
use std::time::{Duration, Instant};

/// Probe providers (= distinct query targets) in the overhead GRIS.
const PROBE_COUNT: usize = 4;
/// Entries each probe returns.
const PROBE_ENTRIES: usize = 16;
/// Wall-clock cost of one provider invocation.
const PROBE_MS: u64 = 1;
/// Parallel clients driving the overhead runs.
const CLIENTS: usize = 4;
/// Queries per client per run.
const QUERIES_PER_CLIENT: usize = 100;
/// Query workers in the pooled GRIS (the "4-worker row").
const WORKERS: usize = 4;
/// CI gate: maximum tolerated throughput loss from instrumentation.
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// The slow, non-cacheable provider from the live-throughput experiment:
/// every search pays one external-program invocation, so the workload is
/// dominated by real (overlappable) work, exactly the regime where
/// instrumentation must not show up.
#[derive(Debug)]
struct ProbeProvider {
    namespace: Dn,
    entries: Vec<Entry>,
    probe: Duration,
}

impl ProbeProvider {
    fn new(site: usize) -> ProbeProvider {
        let namespace = Dn::parse(&format!("ou=site{site}, o=fleet")).expect("site dn");
        let entries = (0..PROBE_ENTRIES)
            .map(|i| {
                Entry::new(Dn::parse(&format!("hn=h{i}, ou=site{site}, o=fleet")).expect("host dn"))
                    .with_class("computer")
                    .with("hn", format!("h{i}"))
                    .with("cpucount", (2 + (i % 7)) as i64)
            })
            .collect();
        ProbeProvider {
            namespace,
            entries,
            probe: Duration::from_millis(PROBE_MS),
        }
    }
}

impl InfoProvider for ProbeProvider {
    fn name(&self) -> &str {
        "site-probe"
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn cacheable(&self) -> bool {
        false
    }
    fn fetch(&mut self, _spec: &SearchSpec, _now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        std::thread::sleep(self.probe);
        Ok(self.entries.clone())
    }
}

/// One measured run of the 4-worker row with observability on or off.
/// Returns sustained throughput in queries/second.
fn measure(observability: bool) -> f64 {
    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let url = LdapUrl::server("gris.obs");
    let mut config = GrisConfig::open(url.clone(), Dn::parse("o=fleet").expect("suffix"));
    config.observability = observability;
    let mut gris = Gris::new(
        config,
        SimDuration::from_secs(60),
        SimDuration::from_secs(180),
    );
    for site in 0..PROBE_COUNT {
        gris.add_provider(Box::new(ProbeProvider::new(site)));
    }
    rt.spawn_gris(gris, ServeOptions::default().with_workers(WORKERS))
        .unwrap();

    let specs: Vec<SearchSpec> = (0..PROBE_COUNT)
        .map(|site| {
            SearchSpec::subtree(
                Dn::parse(&format!("ou=site{site}, o=fleet")).expect("base"),
                Filter::parse("(objectclass=computer)").expect("filter"),
            )
        })
        .collect();
    let mut warm = rt.client();
    warm.request(&url, specs[0].clone())
        .timeout(Duration::from_secs(10))
        .send()
        .outcome
        .expect("warmup query");

    let start = Instant::now();
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let mut client = rt.client();
        let target = url.clone();
        let spec = specs[i % specs.len()].clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for _ in 0..QUERIES_PER_CLIENT {
                if client
                    .request(&target, spec.clone())
                    .timeout(Duration::from_secs(10))
                    .send()
                    .outcome
                    .is_some()
                {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let ok: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let elapsed = start.elapsed().as_secs_f64();
    rt.shutdown();
    assert_eq!(ok, CLIENTS * QUERIES_PER_CLIENT, "no queries may be lost");
    ok as f64 / elapsed
}

/// Interleaved A/B rounds: each round measures baseline and
/// instrumented back-to-back (so frequency scaling and scheduler
/// drift hit both arms alike), and the best round of each arm is
/// kept. Sequential best-of blocks let a between-block drift show up
/// as fake overhead on small machines.
fn ab_rounds(n: usize) -> (f64, f64) {
    let mut base = f64::MIN;
    let mut obs = f64::MIN;
    for _ in 0..n {
        base = base.max(measure(false));
        obs = obs.max(measure(true));
    }
    (base, obs)
}

/// Demonstration deployment: a chaining GIIS over two standard hosts,
/// everything instrumented. Returns the rendered span tree of one traced
/// query and the monitoring entries one plain GRIP search discovers.
fn demo() -> (String, Vec<Entry>) {
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let giis_url = LdapUrl::server("giis.vo");
    let mut giis = Giis::new(
        GiisConfig::chaining(giis_url.clone(), Dn::root()),
        SimDuration::from_millis(100),
        SimDuration::from_millis(600),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(500),
    };
    giis.config.monitoring_refresh = SimDuration::from_millis(50);
    rt.spawn_giis(giis, ServeOptions::default().with_workers(2))
        .unwrap();
    for (i, name) in ["obs1", "obs2"].iter().enumerate() {
        let host = gis_gris::HostSpec::linux(name, 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i as u64);
        gris.agent.interval = SimDuration::from_millis(100);
        gris.agent.ttl = SimDuration::from_millis(600);
        gris.agent.add_target(giis_url.clone());
        gris.config.monitoring_refresh = SimDuration::from_millis(50);
        rt.spawn_gris(gris, ServeOptions::default().with_workers(2))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(400));

    let mut client = rt.client();
    let spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    let response = client
        .request(&giis_url, spec)
        .traced()
        .timeout(Duration::from_secs(5))
        .send();
    let trace = response.trace.expect("traced request mints a trace id");
    response.outcome.expect("traced query completes");
    std::thread::sleep(Duration::from_millis(150));
    let rendered = rt.trace_sink().tree(trace).render();

    let (_, entries, _) = client
        .request(
            &giis_url,
            SearchSpec::subtree(monitoring_base(), Filter::always()),
        )
        .timeout(Duration::from_secs(5))
        .send()
        .outcome
        .expect("monitoring search completes");
    rt.shutdown();
    (rendered, entries)
}

fn write_json(path: &str, base_qps: f64, obs_qps: f64, overhead_pct: f64) {
    let body = format!(
        "{{\n  \"workload\": \"pooled_gris_4_workers\",\n  \"clients\": {CLIENTS},\n  \
         \"queries_per_client\": {QUERIES_PER_CLIENT},\n  \"probe_ms\": {PROBE_MS},\n  \
         \"baseline_qps\": {base_qps:.2},\n  \"instrumented_qps\": {obs_qps:.2},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"gate_pct\": {MAX_OVERHEAD_PCT:.1}\n}}\n"
    );
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    banner(
        "OBS",
        "observability overhead, request tracing, monitoring namespace",
        "instrumentation as soft-state directory entries (implementation property)",
    );

    // 1. Overhead A/B on the 4-worker live-throughput row.
    let rounds = if smoke { 3 } else { 4 };
    let (base_qps, obs_qps) = ab_rounds(rounds);
    let overhead_pct = (base_qps - obs_qps) / base_qps * 100.0;
    let mut table = Table::new(&["configuration", "throughput (q/s)"]);
    table.row(vec!["observability off (baseline)".into(), f2(base_qps)]);
    table.row(vec!["observability on".into(), f2(obs_qps)]);
    table.row(vec!["overhead (%)".into(), f2(overhead_pct)]);
    section("instrumentation overhead: pooled GRIS, 4 workers, 4 clients");
    table.print();

    if let Some(path) = &json_path {
        write_json(path, base_qps, obs_qps, overhead_pct);
        println!("\njson written to {path}");
    }
    if smoke {
        if overhead_pct > MAX_OVERHEAD_PCT {
            eprintln!(
                "FAIL: instrumentation overhead {overhead_pct:.2}% exceeds the \
                 {MAX_OVERHEAD_PCT:.1}% gate"
            );
            std::process::exit(1);
        }
        println!("\nsmoke gate passed: overhead {overhead_pct:.2}% <= {MAX_OVERHEAD_PCT:.1}%");
        return;
    }

    // 2 + 3. Trace and monitoring demonstrations.
    let (rendered, entries) = demo();
    section("causal span tree of one traced chained query");
    print!("{rendered}");

    section("plain GRIP search of Mds-Vo-name=monitoring (subtree)");
    println!("{} entries; mds-service summaries:\n", entries.len());
    let mut mtable = Table::new(&["service", "type", "detail"]);
    for e in &entries {
        if e.has_class("mds-service") {
            let (kind, detail) = match e.get_str("service-type") {
                Some("gris") => (
                    "gris",
                    format!(
                        "queries={} cache-hit-ratio={}",
                        e.get_str("queries").unwrap_or("-"),
                        e.get_str("cache-hit-ratio").unwrap_or("-"),
                    ),
                ),
                _ => (
                    "giis",
                    format!(
                        "searches={} chained-requests={}",
                        e.get_str("searches").unwrap_or("-"),
                        e.get_str("chained-requests").unwrap_or("-"),
                    ),
                ),
            };
            mtable.row(vec![e.dn().to_string(), kind.into(), detail]);
        }
    }
    mtable.print();
    let children = entries.iter().filter(|e| e.has_class("mds-child")).count();
    let providers = entries
        .iter()
        .filter(|e| e.has_class("mds-provider"))
        .count();
    let metrics = entries.iter().filter(|e| e.has_class("mds-metric")).count();
    println!(
        "\nplus {children} mds-child (circuit state, RTT quantiles), \
         {providers} mds-provider (fetch latency histograms), \
         {metrics} mds-metric (registry instruments)."
    );
    println!(
        "\nexpected shape: overhead within noise of zero (every record is a\n\
         relaxed atomic on a lock-free histogram or packed counter); the span\n\
         tree shows one root with a giis.search child, per-child chain legs\n\
         and gris.search leaves; the monitoring search returns live counters,\n\
         breaker states and latency quantiles for every running service."
    );
}
