//! F3 — Figure 3: the LDAP data model.
//!
//! Reconstructs the paper's exact example subtree — `hn=hostX` with a
//! queue, a load-average and a filesystem child — through the real GRIS
//! provider stack, renders it in LDIF (the form the figure uses),
//! validates it against the MDS core schema, and demonstrates the query
//! language over it.

use gis_bench::{banner, section, Table};
use gis_core::SimDeployment;
use gis_gris::HostSpec;
use gis_ldap::{entry_to_ldif, Dn, Filter, Schema, Strictness};
use gis_netsim::secs;
use gis_proto::SearchSpec;

fn main() {
    banner(
        "F3",
        "hierarchical namespace, object classes, typed attributes",
        "Figure 3 (LDAP data model)",
    );

    let mut dep = SimDeployment::new(3);
    let host = HostSpec::irix("hostX", 8);
    let (_, gris_url) = dep.add_standard_host(&host, 3, &[]);
    let client = dep.add_client("user");
    dep.run_for(secs(1));

    let (_, entries, _) = dep
        .search_and_wait(
            client,
            &gris_url,
            SearchSpec::subtree(host.dn(), Filter::always()),
            secs(10),
        )
        .expect("subtree reply");

    section("the hostX subtree in LDIF (cf. Figure 3)");
    for e in &entries {
        println!("{}", entry_to_ldif(e));
    }

    section("schema validation (type authorities, §8)");
    let schema = Schema::mds_core();
    for e in &entries {
        match schema.validate(e, Strictness::Lenient) {
            Ok(()) => println!("  {}: ok", e.dn()),
            Err(err) => println!("  {}: VIOLATION {err}", e.dn()),
        }
    }

    section("query language over the model");
    let queries = [
        "(objectclass=computer)",
        "(&(objectclass=queue)(dispatchtype=immediate))",
        "(load5>=0)",
        "(&(objectclass=filesystem)(free>=1000))",
        "(system=mips*)",
        "(!(objectclass=perf))",
        "(|(objectclass=queue)(objectclass=filesystem))",
    ];
    let mut t = Table::new(&["filter", "matches"]);
    for q in queries {
        let f = Filter::parse(q).unwrap();
        let hits = entries.iter().filter(|e| f.matches(e)).count();
        t.row(vec![q.into(), hits.to_string()]);
    }
    t.print();

    section("scoped search semantics (base / one / sub)");
    let mut t = Table::new(&["base", "scope", "entries"]);
    for (scope_name, scope) in [
        ("base", gis_ldap::Scope::Base),
        ("one", gis_ldap::Scope::One),
        ("sub", gis_ldap::Scope::Sub),
    ] {
        let spec = SearchSpec {
            base: host.dn(),
            scope,
            filter: Filter::always(),
            attrs: vec![],
            size_limit: 0,
        };
        let (_, es, _) = dep
            .search_and_wait(client, &gris_url, spec, secs(10))
            .unwrap();
        t.row(vec![
            host.dn().to_string(),
            scope_name.into(),
            es.len().to_string(),
        ]);
    }
    t.print();

    section("global names: provider URL + local DN (§4.1)");
    let local = Dn::parse("perf=load, hn=hostX").unwrap();
    println!("  local name : {local}");
    println!("  global name: {}", gris_url.naming(local));
}
