//! TCP — in-process channels vs the real TCP wire on loopback.
//!
//! PR 5's transport abstraction claims the socket front-end changes
//! *where* frames travel, not *what* the services do: the same GRIS and
//! GIIS engines answer the same queries whether the client shares their
//! process or sits across a socket. This experiment quantifies the
//! price of the wire on one machine, with no simulated network in the
//! way:
//!
//! * **channel** — the PR 2 shape: clients reach services over the
//!   in-process router (crossbeam channels), zero serialization.
//! * **tcp loopback** — the same topology fronted by TCP listeners on
//!   `127.0.0.1`; every request and reply is a length-prefixed
//!   `ProtocolMessage` frame through the kernel's loopback stack, and
//!   each client holds one persistent connection.
//!
//! Two workloads per transport: direct GRIS lookups (one hop, smallest
//! frames) and chained VO discovery through the GIIS (the GIIS↔GRIS
//! legs also ride the measured transport, pooled outbound connections).
//! Clients issue queries the way the PR 6 multiplexed transport is
//! meant to be driven: pipelined batches of [`DEPTH`] in-flight
//! requests per connection ([`LiveClient::search_pipelined`]), so a
//! burst of small frames coalesces into one write and replies match by
//! request id. Latency columns are therefore *amortized per query
//! within a batch*; the lock-step depth-1 shape is measured separately
//! by `exp_tcp_saturation`.
//!
//! `--json PATH` dumps the rows for `scripts/bench_snapshot.sh`;
//! `--smoke` shrinks the run for CI.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveClient, LiveRuntime, ServeOptions, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::SimDuration;
use gis_proto::SearchSpec;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Loopback hops per measured configuration.
const QUERIES_PER_CLIENT: usize = 800;
const SMOKE_QUERIES: usize = 40;
const CLIENTS: usize = 4;
const GRIS_COUNT: usize = 2;
/// In-flight pipelining depth per connection; both transports use the
/// same driver, the channel side simply has nothing to overlap.
const DEPTH: usize = 8;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Run {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: usize,
    total: usize,
}

struct JsonRow {
    transport: &'static str,
    workload: &'static str,
    run: Run,
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .unwrap()
        .port()
}

/// A chaining GIIS plus `GRIS_COUNT` static-host GRIS. `ports` empty =
/// channel transport; otherwise one port per service (GIIS first).
fn build(ports: &[u16]) -> (LiveRuntime, LdapUrl, LdapUrl) {
    let tcp = !ports.is_empty();
    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let vo_url = if tcp {
        LdapUrl::tcp("127.0.0.1", ports[0])
    } else {
        LdapUrl::server("giis.loopback")
    };
    let opts = if tcp {
        ServeOptions::tcp()
    } else {
        ServeOptions::channel()
    };
    let mut giis = Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        SimDuration::from_millis(200),
        SimDuration::from_secs(5),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(1000),
    };
    rt.spawn_giis(giis, opts.clone()).expect("spawn giis");
    let mut gris0_url = None;
    for i in 0..GRIS_COUNT {
        let host = gis_gris::HostSpec::linux(&format!("lb{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i as u64);
        if tcp {
            // Rebind both the serving URL and the URL the registration
            // agent advertises: the agent snapshots config.url at
            // construction, and a stale ldap:// advert would make the
            // GIIS chain into the void.
            gris.config.url = LdapUrl::tcp("127.0.0.1", ports[i + 1]);
            gris.agent.service_url = gris.config.url.clone();
        }
        gris.agent.interval = SimDuration::from_millis(200);
        gris.agent.ttl = SimDuration::from_secs(5);
        gris.agent.add_target(vo_url.clone());
        if i == 0 {
            gris0_url = Some(gris.config.url.clone());
        }
        rt.spawn_gris(gris, opts.clone()).expect("spawn gris");
    }
    (rt, vo_url, gris0_url.expect("gris0"))
}

/// Wait until the VO view has every host (registrations done).
fn warm(client: &mut LiveClient, vo: &LdapUrl) {
    let spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let outcome = client
            .request(vo, spec.clone())
            .timeout(Duration::from_secs(2))
            .send()
            .outcome;
        if let Some((_, entries, _)) = &outcome {
            if entries.len() >= GRIS_COUNT {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "topology never converged; last outcome: {outcome:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One thread per pre-minted client (its own TCP connection when
/// remote), hammering `target` with `spec` in depth-[`DEPTH`] pipelined
/// batches. Latency samples are amortized per query within a batch.
fn drive(clients: Vec<LiveClient>, target: &LdapUrl, spec: &SearchSpec, queries: usize) -> Run {
    let total = clients.len() * queries;
    let start = Instant::now();
    let mut handles = Vec::new();
    for mut client in clients {
        let target = target.clone();
        let specs: Vec<SearchSpec> = (0..queries).map(|_| spec.clone()).collect();
        handles.push(std::thread::spawn(move || {
            let mut lats = Vec::with_capacity(queries);
            let mut ok = 0;
            for batch in specs.chunks(DEPTH) {
                let t0 = Instant::now();
                let outcomes =
                    client.search_pipelined(&target, batch, DEPTH, Duration::from_secs(10));
                let per_query = t0.elapsed().as_secs_f64() * 1e6 / batch.len() as f64;
                for outcome in &outcomes {
                    if outcome.is_some() {
                        ok += 1;
                        lats.push(per_query);
                    }
                }
            }
            (ok, lats)
        }));
    }
    let mut lats = Vec::new();
    let mut ok = 0;
    for h in handles {
        let (o, l) = h.join().expect("client thread");
        ok += o;
        lats.extend(l);
    }
    let elapsed = start.elapsed().as_secs_f64();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Run {
        qps: ok as f64 / elapsed,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
        ok,
        total,
    }
}

fn measure(
    transport: &'static str,
    queries: usize,
    table: &mut Table,
    json_rows: &mut Vec<JsonRow>,
) {
    let tcp = transport == "tcp";
    let ports: Vec<u16> = if tcp {
        (0..=GRIS_COUNT).map(|_| free_port()).collect()
    } else {
        Vec::new()
    };
    let (rt, vo_url, gris0_url) = build(&ports);

    let lookup_spec = SearchSpec::lookup(Dn::parse("hn=lb0").expect("dn"));
    let chained_spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    // A TCP client is pinned to its connected endpoint, so each
    // workload dials the service it measures.
    let mint = |url: &LdapUrl| -> LiveClient {
        if tcp {
            LiveClient::builder(url).connect().expect("connect")
        } else {
            rt.client()
        }
    };
    let mut warm_client = mint(&vo_url);
    warm(&mut warm_client, &vo_url);
    for (workload, target, spec) in [
        ("direct_lookup", &gris0_url, &lookup_spec),
        ("chained_discovery", &vo_url, &chained_spec),
    ] {
        let clients: Vec<LiveClient> = (0..CLIENTS).map(|_| mint(target)).collect();
        let r = drive(clients, target, spec, queries);
        table.row(vec![
            transport.into(),
            workload.into(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
        json_rows.push(JsonRow {
            transport,
            workload,
            run: r,
        });
    }
    rt.shutdown();
}

fn write_json(path: &str, queries: usize, rows: &[JsonRow]) {
    let mut body = String::from("{\n  \"clients\": ");
    body.push_str(&CLIENTS.to_string());
    body.push_str(",\n  \"queries_per_client\": ");
    body.push_str(&queries.to_string());
    body.push_str(",\n  \"gris_count\": ");
    body.push_str(&GRIS_COUNT.to_string());
    body.push_str(",\n  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"transport\": \"{}\", \"workload\": \"{}\", \"qps\": {:.2}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"ok\": {}, \"total\": {}}}{}\n",
            row.transport,
            row.workload,
            row.run.qps,
            row.run.p50_us,
            row.run.p99_us,
            row.run.ok,
            row.run.total,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let queries = if smoke {
        SMOKE_QUERIES
    } else {
        QUERIES_PER_CLIENT
    };

    banner(
        "TCP",
        "in-process channels vs the real TCP wire on loopback",
        "the transport abstraction's cost: same engines, frames through the kernel",
    );
    println!(
        "{GRIS_COUNT} GRIS + 1 chaining GIIS; {CLIENTS} client threads x {queries} queries\n\
         per configuration. tcp rows: every hop (client->service and\n\
         GIIS->GRIS chaining) is a framed ProtocolMessage over 127.0.0.1.\n"
    );

    let mut table = Table::new(&[
        "transport",
        "workload",
        "throughput (q/s)",
        "p50 (us)",
        "p99 (us)",
        "ok",
    ]);
    let mut json_rows = Vec::new();
    measure("channel", queries, &mut table, &mut json_rows);
    measure("tcp", queries, &mut table, &mut json_rows);

    section("results: loopback wire tax (wall-clock, this machine)");
    table.print();
    println!(
        "\nexpected shape: tcp rows trail channel rows by the serialization +\n\
         syscall cost per hop — a constant tax visible in p50, amplified for\n\
         chained discovery where the GIIS pays it once more per child. All\n\
         queries complete on both transports."
    );

    if let Some(path) = json_path {
        write_json(&path, queries, &json_rows);
        println!("\njson written to {path}");
    }
}
