//! A2 — ablation: push vs pull information movement (§3, §6).
//!
//! "Both push and pull models can be used to move information from
//! providers to directories" (§3); "in pull mode, a query-response
//! exchange supports on-demand access ... in push mode, an initial
//! subscription request requests subsequent asynchronous delivery" (§6).
//!
//! A client needs a host's load average continuously. Compare polling at
//! several periods against a periodic push subscription and an on-change
//! push subscription, measuring message cost and the mean age of the
//! client's knowledge (staleness).

use gis_bench::{banner, f2, section, Table};
use gis_core::{ClientActor, SimDeployment};
use gis_gris::{DynamicHostProvider, Gris, GrisConfig, HostSpec};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, SimDuration};
use gis_proto::{GripReply, GripRequest, SearchSpec, SubscriptionMode};

const RUN_SECS: u64 = 600;

fn fresh_deployment() -> (SimDeployment, LdapUrl, gis_netsim::NodeId) {
    let mut dep = SimDeployment::new(8);
    let host = HostSpec::linux("h", 2);
    let url = LdapUrl::server("gris.h");
    let mut gris = Gris::new(GrisConfig::open(url.clone(), host.dn()), secs(30), secs(90));
    // Load changes every 10 s; no GRIS-side caching so the comparison
    // isolates the transport pattern.
    gris.add_provider(Box::new(DynamicHostProvider::new(
        &host,
        4,
        1.5,
        secs(10),
        SimDuration::ZERO,
    )));
    dep.add_gris(gris);
    let client = dep.add_client("watcher");
    dep.run_for(secs(1));
    (dep, url, client)
}

/// Mean age of knowledge for a sequence of update instants over the run,
/// assuming the underlying value changes continuously: between updates
/// the knowledge age grows linearly, so mean age = mean over time of
/// (t - last_update).
fn mean_age(update_times: &[f64], horizon: f64) -> f64 {
    if update_times.is_empty() {
        return horizon / 2.0;
    }
    let mut area = 0.0;
    let mut last = update_times[0];
    // Before the first update the client knows nothing; charge from t=0.
    area += last * last / 2.0;
    for &t in &update_times[1..] {
        let gap = t - last;
        area += gap * gap / 2.0;
        last = t;
    }
    let tail = horizon - last;
    area += tail * tail / 2.0;
    area / horizon
}

fn main() {
    banner(
        "A2",
        "push vs pull delivery: message cost against staleness",
        "§3 (push and pull index maintenance), §6 (subscription modes)",
    );
    println!("one dynamic attribute (changes every 10 s), watched for {RUN_SECS} s.\n");

    // Watch the load value itself (project away the measurement
    // timestamp so on-change fires when the *value* changes).
    let spec = || {
        SearchSpec::subtree(
            Dn::parse("perf=load, hn=h").expect("dn"),
            Filter::parse("(load5=*)").expect("filter"),
        )
        .select(&["load5"])
    };
    let mut table = Table::new(&["strategy", "messages", "updates seen", "mean age (s)"]);

    // --- Pull: poll at various periods. ----------------------------------
    for poll_s in [5u64, 15, 60, 180] {
        let (mut dep, url, client) = fresh_deployment();
        let base_msgs = dep.sim.metrics().sent;
        let polls = RUN_SECS / poll_s;
        let mut ids = Vec::new();
        for _ in 0..polls {
            let id = dep.search(client, &url, spec());
            ids.push(id);
            dep.run_for(secs(poll_s));
        }
        let msgs = dep.sim.metrics().sent - base_msgs;
        let c = dep.client(client);
        let times: Vec<f64> = ids
            .iter()
            .filter_map(|id| c.replies.get(id))
            .filter_map(|v| v.first())
            .map(|(t, _)| t.as_secs_f64() - 1.0)
            .collect();
        table.row(vec![
            format!("poll every {poll_s}s"),
            msgs.to_string(),
            times.len().to_string(),
            f2(mean_age(&times, RUN_SECS as f64)),
        ]);
    }

    // --- Push: periodic and on-change subscriptions. ---------------------
    for (label, mode) in [
        ("push periodic 15s", SubscriptionMode::Periodic(secs(15))),
        ("push on-change", SubscriptionMode::OnChange),
    ] {
        let (mut dep, url, client) = fresh_deployment();
        let base_msgs = dep.sim.metrics().sent;
        let sub_id = dep.sim.invoke::<ClientActor, _>(client, |c, ctx| {
            c.request(ctx, &url, |id| GripRequest::Subscribe {
                id,
                spec: spec(),
                mode,
            })
        });
        dep.run_for(secs(RUN_SECS));
        let msgs = dep.sim.metrics().sent - base_msgs;
        let c = dep.client(client);
        let times: Vec<f64> = c
            .replies
            .get(&sub_id)
            .map(|v| {
                v.iter()
                    .filter(|(_, r)| matches!(r, GripReply::Update { .. }))
                    .map(|(t, _)| t.as_secs_f64() - 1.0)
                    .collect()
            })
            .unwrap_or_default();
        table.row(vec![
            label.into(),
            msgs.to_string(),
            times.len().to_string(),
            f2(mean_age(&times, RUN_SECS as f64)),
        ]);
    }

    section("results");
    table.print();
    println!(
        "\nexpected shape: polling pays 2 messages per sample and staleness\n\
         ~period/2; slow polling is cheap but stale, fast polling fresh but\n\
         chatty. Push halves the message count for the same freshness (one\n\
         update message per delivery, no request), and on-change delivery\n\
         tracks the 10 s dynamism of the source — the paper's rationale for\n\
         supporting both modes in GRIP."
    );
}
