//! E9 — §4.3/§10.4: soft-state registration overhead.
//!
//! The cost of GRRP is a steady stream of small messages per
//! provider-directory pair; the benefit is automatic membership and
//! failure expiry with no de-notify protocol. Sweep provider count and
//! refresh interval; report directory-side message rate, table size, and
//! how long a departed provider lingers (staleness window = TTL).

use gis_bench::{banner, f2, section, Table};
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{RegistrationAgent, SoftStateRegistry};

fn main() {
    banner(
        "E9",
        "GRRP message load and soft-state table behaviour",
        "§4.3 soft-state protocol; §10.4 GIIS registration handling",
    );

    let duration_s = 600u64;
    let mut table = Table::new(&[
        "providers",
        "interval (s)",
        "msgs/s at directory",
        "active at end",
        "linger after stop (s)",
    ]);

    for &n in &[10usize, 100, 1000] {
        for &interval_s in &[10u64, 30, 120] {
            let interval = SimDuration::from_secs(interval_s);
            let ttl = interval.mul_f64(3.0);
            let dir = LdapUrl::server("giis.vo");
            let mut agents: Vec<RegistrationAgent> = (0..n)
                .map(|i| {
                    let mut a = RegistrationAgent::new(
                        LdapUrl::server(format!("gris.h{i}")),
                        Dn::parse(&format!("hn=h{i}")).expect("dn"),
                        interval,
                        ttl,
                    );
                    a.add_target(dir.clone());
                    a
                })
                .collect();
            let mut registry = SoftStateRegistry::new();
            let mut messages = 0u64;

            // Drive in 1 s steps.
            for s in 0..duration_s {
                let now = SimTime::ZERO + SimDuration::from_secs(s);
                for a in &mut agents {
                    for (_, msg) in a.due_messages(now) {
                        messages += 1;
                        registry.observe(msg, now);
                    }
                }
                registry.sweep(now);
            }
            let end = SimTime::ZERO + SimDuration::from_secs(duration_s);
            let active = registry.active_count(end);

            // All providers stop: how long until the table is empty?
            let mut linger = 0u64;
            for s in 0..10 * interval_s {
                let now = end + SimDuration::from_secs(s);
                registry.sweep(now);
                if registry.is_empty() {
                    linger = s;
                    break;
                }
            }

            table.row(vec![
                n.to_string(),
                interval_s.to_string(),
                f2(messages as f64 / duration_s as f64),
                active.to_string(),
                linger.to_string(),
            ]);
        }
    }

    section("results");
    table.print();
    println!(
        "\nexpected shape: message rate = N/interval (linear in N, inverse in\n\
         the refresh interval); the table always holds exactly the live\n\
         providers; after providers stop, knowledge of them persists for at\n\
         most the TTL (3x interval) — no de-notify message is ever needed."
    );
}
