//! E12 — §4.1/§10.3: the NWS gateway and its non-enumerable namespace.
//!
//! "A provider can represent an infinite parametric name space,
//! generating elements of this space lazily in response to direct
//! queries ... such requests do not access a database maintained within
//! the information provider, but are handed off to the Network Weather
//! Service, which may variously access cached data or perform an
//! experiment."
//!
//! Part 1 scores the NWS forecaster battery per method (MSE) on
//! bandwidth and latency series. Part 2 measures the lazy namespace in
//! action: per-link materialization, experiment-vs-cache behaviour, and
//! the rejection of too-wide searches.

use gis_bench::{banner, f2, f3, section, Table};
use gis_gris::{Gris, GrisConfig, HostSpec, NwsGatewayProvider};
use gis_gsi::Requester;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, SimDuration, SimTime};
use gis_nws::{Battery, LinkId, Metric, Nws, Sensor, SensorModel};
use gis_proto::{ResultCode, SearchSpec};

fn main() {
    banner(
        "E12",
        "NWS forecaster battery accuracy + lazy non-enumerable namespace",
        "§4.1 (NWS example), §10.3 (network information provider)",
    );

    // --- Part 1: forecaster accuracy per method. -------------------------
    section("forecaster MSE by method (2000-step synthetic series)");
    let mut table = Table::new(&["method", "bandwidth MSE", "latency MSE"]);
    let mut results: Vec<(&'static str, f64, f64)> = Vec::new();
    for (col, model, seed) in [
        (0usize, SensorModel::bandwidth(100.0), 11u64),
        (1, SensorModel::latency(50.0), 13),
    ] {
        let mut sensor = Sensor::new(model, seed);
        let mut battery = Battery::standard();
        for _ in 0..2000 {
            battery.observe(sensor.measure());
        }
        for (name, mse) in battery.mse_by_method() {
            let v = mse.unwrap_or(f64::NAN);
            match results.iter_mut().find(|(n, _, _)| *n == name) {
                Some(slot) => {
                    if col == 0 {
                        slot.1 = v;
                    } else {
                        slot.2 = v;
                    }
                }
                None => results.push(if col == 0 {
                    (name, v, f64::NAN)
                } else {
                    (name, f64::NAN, v)
                }),
            }
        }
        println!(
            "  best method for {}: {}",
            if col == 0 { "bandwidth" } else { "latency" },
            battery.best_method()
        );
    }
    for (name, bw, lat) in results {
        table.row(vec![name.into(), f2(bw), f2(lat)]);
    }
    table.print();

    // --- Part 2: the lazy namespace through a real GRIS. ------------------
    section("lazy namespace: per-query materialization and caching");
    let host = HostSpec::linux("gw", 2);
    let _ = host;
    let mut gris = Gris::new(
        GrisConfig::open(LdapUrl::server("gris.nws"), Dn::parse("nn=wan").unwrap()),
        secs(30),
        secs(90),
    );
    gris.add_provider(Box::new(NwsGatewayProvider::new(
        "wan",
        Nws::new(3, SimDuration::from_secs(30)),
    )));
    let requester = Requester::anonymous();

    let mut t = Table::new(&["query", "result", "experiments run", "cache hits"]);
    let mut step = |gris: &mut Gris, label: &str, dn: &str, scope_sub: bool, now: u64| {
        let base = Dn::parse(dn).expect("dn");
        let spec = if scope_sub {
            SearchSpec::subtree(base, Filter::always())
        } else {
            SearchSpec::lookup(base)
        };
        let (code, entries) = gris.search(&spec, &requester, SimTime::ZERO + secs(now));
        let nws = gris
            .provider::<NwsGatewayProvider>("nws:wan")
            .expect("provider")
            .nws();
        t.row(vec![
            label.into(),
            if code == ResultCode::Success {
                format!("{} entries", entries.len())
            } else {
                format!("{code:?}")
            },
            nws.experiments_run.to_string(),
            nws.cache_hits.to_string(),
        ]);
    };
    step(
        &mut gris,
        "lookup link=isi-anl (cold)",
        "link=isi-anl, nn=wan",
        false,
        0,
    );
    step(
        &mut gris,
        "lookup link=isi-anl (warm, +10s)",
        "link=isi-anl, nn=wan",
        false,
        10,
    );
    step(
        &mut gris,
        "lookup link=isi-anl (expired, +60s)",
        "link=isi-anl, nn=wan",
        false,
        60,
    );
    step(
        &mut gris,
        "lookup link=anl-npaci (cold)",
        "link=anl-npaci, nn=wan",
        false,
        60,
    );
    step(
        &mut gris,
        "subtree search nn=wan (too wide)",
        "nn=wan",
        true,
        61,
    );
    t.print();

    let nws = gris
        .provider::<NwsGatewayProvider>("nws:wan")
        .expect("provider")
        .nws();
    println!(
        "\nmaterialized links so far: {:?} of an unbounded namespace",
        nws.known_links(Metric::BandwidthMbps)
            .iter()
            .map(|l| format!("{}-{}", l.src, l.dst))
            .collect::<Vec<_>>()
    );

    // --- Part 3: prediction quality through the full provider path. ------
    section("per-link battery error after 200 gateway queries");
    let mut nws2 = Nws::new(9, SimDuration::ZERO);
    let link = LinkId::new("isi", "anl");
    let mut err = 0.0;
    let mut prev: Option<f64> = None;
    for i in 0..200u64 {
        let f = nws2.query(&link, Metric::BandwidthMbps, SimTime::ZERO + secs(i * 30));
        if let Some(p) = prev {
            err += (p - f.measured).abs() / f.measured.max(1.0);
        }
        prev = Some(f.predicted);
    }
    println!(
        "  mean relative one-step prediction error: {}",
        f3(err / 199.0)
    );
    println!(
        "\nexpected shape: averaging/AR methods beat last-value on these noisy\n\
         mean-reverting series; repeated lookups inside the cache TTL run no\n\
         new experiment; wide searches are refused (UnwillingToPerform) since\n\
         the namespace is not enumerable."
    );
}
