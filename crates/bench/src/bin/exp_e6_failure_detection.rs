//! E6 — §4.3: the failure-detection tradeoff.
//!
//! "There is thus a tradeoff to be made, when choosing the criteria used
//! to decide that a producer has failed, between likelihood of an
//! erroneous decision and timeliness of failure detection." The paper
//! cites wide-area loss studies (Bolot '93, Paxson '97) and reports that
//! "failure detectors can operate effectively despite often high packet
//! loss rates."
//!
//! Sweep: packet-loss rate p × suspicion threshold K (multiples of the
//! 10 s registration interval). A provider heartbeats over a lossy link
//! for an hour, then crashes. We report false suspicions per hour
//! (erroneous decisions) and detection latency after the real crash.

use gis_bench::{banner, f2, section, Table};
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{secs, Actor, Ctx, LinkConfig, NodeId, Sim, SimDuration, SimTime};
use gis_proto::{GrrpMessage, RegistrationAgent};
use gis_services::HeartbeatMonitor;

/// The provider side: a registration agent on a timer.
struct Sender {
    agent: RegistrationAgent,
    monitor: NodeId,
}

impl Actor<GrrpMessage> for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GrrpMessage>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, GrrpMessage>, _: NodeId, _: GrrpMessage) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, GrrpMessage>, _: u64) {
        for (_, msg) in self.agent.due_messages(ctx.now()) {
            ctx.send(self.monitor, msg);
        }
        ctx.set_timer(self.agent.interval, 0);
    }
}

/// The directory side: a heartbeat monitor scanning every second.
struct Monitor {
    hm: HeartbeatMonitor,
}

impl Actor<GrrpMessage> for Monitor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GrrpMessage>) {
        ctx.set_timer(secs(1), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, GrrpMessage>, _: NodeId, msg: GrrpMessage) {
        self.hm.heard_from(&msg.service_url, ctx.now());
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, GrrpMessage>, _: u64) {
        self.hm.scan(ctx.now());
        ctx.set_timer(secs(1), 0);
    }
}

fn run_once(seed: u64, loss: f64, k: u64) -> (usize, Option<f64>) {
    let interval = secs(10);
    let service = LdapUrl::server("gris.p");
    let mut sim: Sim<GrrpMessage> = Sim::new(seed);
    sim.set_default_link(LinkConfig {
        latency: SimDuration::from_millis(30),
        jitter: SimDuration::from_millis(20),
        loss,
    });
    let monitor = sim.add_node(
        "monitor",
        Box::new(Monitor {
            hm: HeartbeatMonitor::new(SimDuration::from_secs(10 * k)),
        }),
    );
    let agent = {
        // The sweep includes K < 2 on purpose (that flappy regime is the
        // point of the experiment), so bypass the ttl >= 2x interval guard.
        let mut a = RegistrationAgent::new_unchecked(
            service.clone(),
            Dn::root(),
            interval,
            interval.mul_f64(k as f64),
        );
        a.add_target(LdapUrl::server("monitor"));
        a
    };
    let sender = sim.add_node("sender", Box::new(Sender { agent, monitor }));

    // One hour of normal operation, then a crash.
    let fail_at = SimTime::ZERO + secs(3600);
    sim.run_until(fail_at);
    sim.crash(sender);
    // Generous post-crash window.
    sim.run_until(fail_at + secs(600));

    let m = &sim.actor::<Monitor>(monitor).unwrap().hm;
    let false_pos = m.false_suspicions(&service, fail_at);
    let latency = m
        .detection_latency(&service, fail_at)
        .map(|d| d.as_secs_f64());
    (false_pos, latency)
}

fn main() {
    banner(
        "E6",
        "failure-detector timeliness vs erroneous-suspicion tradeoff",
        "§4.3 (GRRP as an unreliable failure detector)",
    );
    println!("registration interval 10 s; suspicion threshold K x interval;");
    println!("1 h of heartbeats over a lossy link, then a real crash; 10 seeds each.\n");

    let reps = 10u64;
    let mut table = Table::new(&["loss p", "K", "false susp./hour", "mean detect latency (s)"]);
    for loss in [0.0, 0.05, 0.10, 0.20, 0.40] {
        for k in [1u64, 2, 3, 5] {
            let mut fp_total = 0usize;
            let mut lat_total = 0.0;
            let mut lat_n = 0usize;
            for rep in 0..reps {
                let (fp, lat) = run_once(1000 + rep, loss, k);
                fp_total += fp;
                if let Some(l) = lat {
                    lat_total += l;
                    lat_n += 1;
                }
            }
            table.row(vec![
                f2(loss),
                k.to_string(),
                f2(fp_total as f64 / reps as f64),
                if lat_n > 0 {
                    f2(lat_total / lat_n as f64)
                } else {
                    "never".into()
                },
            ]);
        }
    }
    section("results");
    table.print();
    println!(
        "\nexpected shape: false suspicions grow with loss and shrink rapidly\n\
         with K (K=1 suspects on any single lost message; K>=3 is quiet even\n\
         at 20% loss), while detection latency grows linearly with K — the\n\
         paper's robustness/timeliness dial."
    );
}
