//! FED — federated GIIS scale-out: replicated roots, bulk delta sync,
//! local reads.
//!
//! The paper (§3, §12) names VO-scoped aggregate directories as *the*
//! scalability mechanism, but a chaining GIIS pays per-query child RTTs
//! for every parent lookup. The federated mode instead pulls periodic
//! bulk deltas from each child into the parent's own DIT and answers
//! queries locally, trading bounded staleness for wide-area round trips
//! (the BDII architecture's production answer). Four claims are
//! measured on a 3-level netsim deployment (hosts -> harvest site
//! directories -> replicated federated roots, with a chaining root over
//! the same sites as the baseline; wide-area links between roots and
//! sites, local links everywhere else):
//!
//! 1. **Local reads**: a federated root answers a subtree search within
//!    3x of searching an equivalent raw [`Dit`] directly — federation
//!    adds no meaningful query-path cost on top of the index itself.
//! 2. **Staleness is bounded**: across both replicas, the p99 age of
//!    each child's replicated slice stays under the configured
//!    `interval + deadline` pull budget.
//! 3. **Query latency**: the federated root beats the per-query
//!    chaining baseline by >= 5x end-to-end, because chaining pays the
//!    root->site WAN round trip on every query.
//! 4. **Bulk ingest**: full-sync integration via [`Dit::bulk_load`]
//!    is >= 2x faster than per-entry upsert of the same batch (the
//!    regression bench for the parent's ingest path).
//!
//! `--smoke` runs a reduced topology and exits non-zero if any gate
//! fails; `--json PATH` writes the derived metrics for the benchmark
//! snapshot script.

use gis_bench::{banner, f2, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::HostSpec;
use gis_ldap::{Dit, Dn, Entry, Filter, LdapUrl, Scope};
use gis_netsim::{ms, secs, LinkConfig, NodeId, SimDuration};
use gis_proto::{GripRequest, SearchSpec};
use std::hint::black_box;
use std::time::Instant;

/// Federation pull cadence per child.
const SYNC_INTERVAL: SimDuration = SimDuration(5_000_000); // 5 s
/// Pull abandon deadline (staleness budget = interval + deadline).
const SYNC_DEADLINE: SimDuration = SimDuration(2_000_000); // 2 s
/// Site directory re-harvest cadence.
const HARVEST_REFRESH: SimDuration = SimDuration(10_000_000); // 10 s
/// Gate: federated local read within this factor of a raw DIT search.
const MAX_LOCAL_READ_RATIO: f64 = 3.0;
/// Gate: minimum end-to-end query speedup over the chaining baseline.
const MIN_SPEEDUP: f64 = 5.0;
/// Gate: minimum bulk-load ingest speedup over per-entry upsert.
const MIN_BULK_RATIO: f64 = 2.0;

struct Params {
    sites: usize,
    hosts_per_site: usize,
    query_rounds: usize,
    read_iters: usize,
    bulk_entries: usize,
}

impl Params {
    fn new(smoke: bool) -> Params {
        if smoke {
            Params {
                sites: 6,
                hosts_per_site: 20,
                query_rounds: 12,
                read_iters: 60,
                bulk_entries: 20_000,
            }
        } else {
            Params {
                sites: 10,
                hosts_per_site: 100,
                query_rounds: 30,
                read_iters: 200,
                bulk_entries: 20_000,
            }
        }
    }
    fn hosts(&self) -> usize {
        self.sites * self.hosts_per_site
    }
}

struct FedScenario {
    dep: SimDeployment,
    /// Two replicated federated roots.
    fed: [(NodeId, LdapUrl); 2],
    /// The per-query chaining baseline root over the same sites.
    chain: (NodeId, LdapUrl),
    /// Site directory URLs (the roots' children).
    sites: Vec<LdapUrl>,
    client: NodeId,
}

/// Build the 3-level topology: `hosts_per_site` standard host GRIS per
/// site register with a harvest-mode site GIIS (`o=site<i>`); every site
/// registers with two federated roots and one chaining root. Roots and
/// the client sit in the VO core (fast links); root<->site links are
/// wide-area — the cost federation amortizes and chaining pays per
/// query.
fn build(p: &Params, seed: u64) -> FedScenario {
    let mut dep = SimDeployment::new(seed);
    // Wide-area default: 40 ms +- 20 ms one way.
    dep.sim.set_default_link(LinkConfig {
        latency: ms(40),
        jitter: ms(20),
        loss: 0.0,
    });

    let mut roots = Vec::new();
    for name in ["giis.root-a", "giis.root-b"] {
        let url = LdapUrl::server(name);
        let giis = Giis::new(
            GiisConfig::federated(url.clone(), Dn::root(), SYNC_INTERVAL, SYNC_DEADLINE),
            secs(10),
            secs(60),
        );
        let node = dep.add_giis(giis);
        roots.push((node, url));
    }
    let chain_url = LdapUrl::server("giis.root-chain");
    let mut chain_cfg = GiisConfig::chaining(chain_url.clone(), Dn::root());
    chain_cfg.mode = GiisMode::Chain { timeout: secs(2) };
    let chain_node = dep.add_giis(Giis::new(chain_cfg, secs(10), secs(60)));

    let mut sites = Vec::new();
    let mut host_seed = seed.wrapping_mul(97);
    for s in 0..p.sites {
        let suffix = Dn::parse(&format!("o=site{s}")).expect("site dn");
        let site_url = LdapUrl::server(format!("giis.site{s}"));
        let mut site_cfg = GiisConfig::chaining(site_url.clone(), suffix.clone());
        site_cfg.observability = false;
        let mut site = Giis::new(site_cfg, secs(10), secs(60));
        site.config.mode = GiisMode::Harvest {
            refresh: HARVEST_REFRESH,
        };
        for (_, url) in &roots {
            site.agent.add_target(url.clone());
        }
        site.agent.add_target(chain_url.clone());
        let site_node = dep.add_giis(site);

        for h in 0..p.hosts_per_site {
            host_seed = host_seed.wrapping_add(1);
            let host =
                HostSpec::linux(&format!("h{h}"), 2 + (host_seed % 6) as u32).at(suffix.clone());
            let (host_node, _) =
                dep.add_standard_host(&host, host_seed, std::slice::from_ref(&site_url));
            // Hosts share a LAN with their site directory.
            let lan = LinkConfig {
                latency: ms(1),
                jitter: SimDuration(500),
                loss: 0.0,
            };
            dep.sim.set_link(host_node, site_node, lan);
            dep.sim.set_link(site_node, host_node, lan);
        }
        sites.push(site_url);
    }

    let client = dep.add_client("user");
    // Client and roots share the VO core: 4 ms +- 2 ms.
    let core = LinkConfig {
        latency: ms(4),
        jitter: ms(2),
        loss: 0.0,
    };
    for (node, _) in roots.iter().chain([&(chain_node, chain_url.clone())]) {
        dep.sim.set_link(client, *node, core);
        dep.sim.set_link(*node, client, core);
    }

    FedScenario {
        dep,
        fed: [roots[0].clone(), roots[1].clone()],
        chain: (chain_node, chain_url),
        sites,
        client,
    }
}

fn computers() -> SearchSpec {
    SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    )
}

fn mean_us(samples: &[SimDuration]) -> f64 {
    samples.iter().map(|d| d.micros() as f64).sum::<f64>() / samples.len().max(1) as f64
}

fn p99_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * 0.99).ceil() as usize;
    samples[idx]
}

struct SimResults {
    fed_query_ms: f64,
    chain_query_ms: f64,
    speedup: f64,
    staleness_p99_ms: f64,
    staleness_samples: usize,
    fed_entries: usize,
    chain_entries: usize,
    local_read_us: f64,
    dit_search_us: f64,
    read_ratio: f64,
    full_syncs: u64,
    delta_syncs: u64,
}

/// Run the deployment: converge, interleave fed/chain queries while
/// sampling per-child replica age on both roots, then time the local
/// read path against a raw DIT of the same entries.
fn run_sim(p: &Params, seed: u64) -> SimResults {
    let mut sc = build(p, seed);
    // Registrations, first harvests, first (full) sync pulls.
    sc.dep.run_for(secs(15));

    let mut fed_lat = Vec::new();
    let mut chain_lat = Vec::new();
    let mut ages_ms: Vec<f64> = Vec::new();
    let mut fed_entries = 0usize;
    let mut chain_entries = 0usize;

    for round in 0..p.query_rounds {
        // Spread reads across the replica group, as the live balancer
        // would.
        let (_, fed_url) = &sc.fed[round % 2];
        let fed_id = sc.dep.search(sc.client, &fed_url.clone(), computers());
        let chain_id = sc.dep.search(sc.client, &sc.chain.1.clone(), computers());
        sc.dep.run_for(secs(1));

        let client = sc.dep.client(sc.client);
        fed_lat.push(client.latency(fed_id).expect("federated reply"));
        chain_lat.push(client.latency(chain_id).expect("chained reply"));
        if round + 1 == p.query_rounds {
            let grab = |r: Option<&gis_proto::GripReply>| match r {
                Some(gis_proto::GripReply::SearchResult { entries, .. }) => entries.len(),
                _ => 0,
            };
            fed_entries = grab(client.search_result(fed_id));
            chain_entries = grab(client.search_result(chain_id));
        }

        // Replica age of every child slice on both roots, as served now.
        let now = sc.dep.now();
        for (node, _) in &sc.fed {
            let giis = sc.dep.giis(*node);
            for site in &sc.sites {
                let asof = giis.sync_asof_of(site).expect("site synced");
                ages_ms.push(now.since(asof).micros() as f64 / 1_000.0);
            }
        }
    }

    let fed_query_ms = mean_us(&fed_lat) / 1_000.0;
    let chain_query_ms = mean_us(&chain_lat) / 1_000.0;

    // Local-read cost: the engine's full request path vs a raw DIT
    // search over the very same entries.
    let now = sc.dep.now();
    let spec = computers();
    let (fed_node, _) = sc.fed[0];
    let root = sc.dep.giis_mut(fed_node);
    let mut sink = 0usize;
    let start = Instant::now();
    for i in 0..p.read_iters {
        let actions = root.handle_request(
            7_000,
            GripRequest::Search {
                id: 500_000 + i as u64,
                spec: spec.clone(),
            },
            now,
        );
        sink += black_box(actions.len());
    }
    let local_read_us = start.elapsed().as_secs_f64() * 1e6 / p.read_iters as f64;

    let replica: Vec<Entry> =
        root.cache_snapshot()
            .search(&Dn::root(), Scope::Sub, &Filter::always(), &[], 0);
    let direct = Dit::bulk_load(replica);
    let filter = Filter::parse("(objectclass=computer)").expect("filter");
    let start = Instant::now();
    for _ in 0..p.read_iters {
        let hits = direct.search(&Dn::root(), Scope::Sub, &filter, &[], 0);
        sink += black_box(hits.len());
    }
    let dit_search_us = start.elapsed().as_secs_f64() * 1e6 / p.read_iters as f64;
    black_box(sink);

    let stats = sc.dep.giis(fed_node).stats();
    SimResults {
        fed_query_ms,
        chain_query_ms,
        speedup: chain_query_ms / fed_query_ms,
        staleness_p99_ms: p99_ms(&mut ages_ms),
        staleness_samples: ages_ms.len(),
        fed_entries,
        chain_entries,
        local_read_us,
        dit_search_us,
        read_ratio: local_read_us / dit_search_us,
        full_syncs: stats.full_syncs,
        delta_syncs: stats.delta_syncs,
    }
}

/// Satellite regression bench: full-sync ingest must ride
/// [`Dit::bulk_load`]. The measured operation is the parent's
/// steady-state full sync — a payload replacing a child slice the
/// parent *already holds* (periodic re-sync, cookie invalidation,
/// recovery re-pull). The bulk path rebuilds every index as one sorted
/// run; the per-entry path pays an indexed remove plus an indexed
/// reinsert per DN on the populated tree.
fn bulk_load_ratio(n: usize) -> (f64, f64, f64) {
    // Generation g: the harvested host subtrees a site exports — one
    // static entry plus perf/filesystem/queue children per host, dynamic
    // values refreshed every sync, ~10% of hosts churned (leaving and
    // joining between syncs).
    let hosts = n / 4;
    let generation = |g: usize| -> Vec<Entry> {
        let mut out = Vec::with_capacity(hosts * 4);
        for i in 0..hosts {
            let id = if i % 10 == 0 { i + hosts * g } else { i };
            let base = format!("hn=h{id},ou=s{},o=grid", i % 50);
            out.push(
                Entry::at(&base)
                    .expect("host dn")
                    .with_class("computer")
                    .with("system", "linux")
                    .with("arch", "x86_64")
                    .with("cpucount", (2 + (i + g) % 7) as i64)
                    .with("memorymb", 4096i64),
            );
            out.push(
                Entry::at(&format!("perf=load,{base}"))
                    .expect("perf dn")
                    .with_class("perf")
                    .with_class("loadaverage")
                    .with("load1", ((i + g) % 100) as i64)
                    .with("load5", ((i + g) % 50) as i64),
            );
            out.push(
                Entry::at(&format!("fs=scratch,{base}"))
                    .expect("fs dn")
                    .with_class("storage")
                    .with_class("filesystem")
                    .with("path", "/disks/scratch1")
                    .with("total", 40_000i64)
                    .with("free", (40_000 - (i + g) % 9_000) as i64),
            );
            out.push(
                Entry::at(&format!("queue=default,{base}"))
                    .expect("queue dn")
                    .with_class("service")
                    .with_class("queue")
                    .with("dispatchtype", "immediate")
                    .with("jobcount", ((i + g) % 12) as i64),
            );
        }
        out
    };
    let previous = Dit::bulk_load(generation(0));
    let payload = generation(1);

    // Interleaved trials + medians: frequency scaling and allocator state
    // drift over a run on small machines, and medians keep one slow (or
    // one lucky) trial from deciding the gate.
    let mut bulk_trials = Vec::new();
    let mut upsert_trials = Vec::new();
    for _ in 0..5 {
        // The shipped path: wrap the decoded payload and rebuild every
        // index as one sorted run (pre-normalized entries are indexed
        // as-is).
        let b = payload.clone();
        let start = Instant::now();
        let built = black_box(Dit::bulk_load_shared(
            b.into_iter().map(std::sync::Arc::new).collect(),
        ));
        // Take the clock before teardown: dropping a 20k-entry tree costs
        // double-digit milliseconds and is identical on both sides, which
        // would only compress the measured ratio.
        bulk_trials.push(start.elapsed().as_secs_f64());
        drop(built);

        // The per-entry alternative: replace the slice in place —
        // delete every DN that vanished from the payload, then upsert
        // each entry (an indexed remove + reinsert per DN).
        let b = payload.clone();
        let mut dit = previous.clone();
        let start = Instant::now();
        let keep: std::collections::BTreeSet<String> =
            b.iter().map(|e| e.dn().to_string()).collect();
        let vanished: Vec<Dn> = dit
            .iter()
            .filter(|e| !keep.contains(&e.dn().to_string()))
            .map(|e| e.dn().clone())
            .collect();
        for dn in &vanished {
            dit.delete(dn);
        }
        for e in b {
            dit.upsert(e);
        }
        black_box(&dit);
        upsert_trials.push(start.elapsed().as_secs_f64());
        drop(dit);
    }
    bulk_trials.sort_by(f64::total_cmp);
    upsert_trials.sort_by(f64::total_cmp);
    let bulk_med = bulk_trials[bulk_trials.len() / 2];
    let upsert_med = upsert_trials[upsert_trials.len() / 2];
    (bulk_med * 1e3, upsert_med * 1e3, upsert_med / bulk_med)
}

#[allow(clippy::too_many_arguments)]
fn write_json(path: &str, p: &Params, r: &SimResults, bulk_ratio: f64) {
    let bound_ms = (SYNC_INTERVAL + SYNC_DEADLINE).micros() as f64 / 1_000.0;
    let body = format!(
        "{{\n  \"topology\": \"{} gris / {} sites / 2 federated roots + chaining baseline\",\n  \
         \"sync_interval_ms\": {:.0},\n  \"sync_deadline_ms\": {:.0},\n  \
         \"fed_local_read_us\": {:.2},\n  \"dit_search_us\": {:.2},\n  \
         \"local_read_ratio\": {:.2},\n  \"fed_query_ms\": {:.2},\n  \
         \"chain_query_ms\": {:.2},\n  \"fed_speedup_vs_chaining\": {:.2},\n  \
         \"fed_staleness_p99_ms\": {:.1},\n  \"staleness_bound_ms\": {:.0},\n  \
         \"bulk_load_speedup\": {:.2}\n}}\n",
        p.hosts(),
        p.sites,
        SYNC_INTERVAL.micros() as f64 / 1_000.0,
        SYNC_DEADLINE.micros() as f64 / 1_000.0,
        r.local_read_us,
        r.dit_search_us,
        r.read_ratio,
        r.fed_query_ms,
        r.chain_query_ms,
        r.speedup,
        r.staleness_p99_ms,
        bound_ms,
        bulk_ratio,
    );
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    banner(
        "FED",
        "federated roots: bulk delta sync, replica staleness, local reads",
        "§3/§12 VO aggregate directories; BDII-style pull federation",
    );

    let p = Params::new(smoke);
    println!(
        "\ntopology: {} hosts over {} sites, 2 federated roots (pull {}s, \
         deadline {}s) + 1 chaining root; WAN root<->site links",
        p.hosts(),
        p.sites,
        SYNC_INTERVAL.micros() / 1_000_000,
        SYNC_DEADLINE.micros() / 1_000_000,
    );

    let r = run_sim(&p, 42);
    let bound_ms = (SYNC_INTERVAL + SYNC_DEADLINE).micros() as f64 / 1_000.0;

    section("end-to-end query latency: federated replica vs chaining root");
    let mut t = Table::new(&["root", "mean latency (ms)", "entries"]);
    t.row(vec![
        "federated (local read)".into(),
        f2(r.fed_query_ms),
        r.fed_entries.to_string(),
    ]);
    t.row(vec![
        "chaining (per-query fan-out)".into(),
        f2(r.chain_query_ms),
        r.chain_entries.to_string(),
    ]);
    t.row(vec!["speedup".into(), f2(r.speedup), "".into()]);
    t.print();

    section("query-path cost: engine local read vs raw DIT search");
    let mut t = Table::new(&["path", "mean (us)"]);
    t.row(vec!["giis handle_request".into(), f2(r.local_read_us)]);
    t.row(vec!["raw Dit::search".into(), f2(r.dit_search_us)]);
    t.row(vec!["ratio".into(), f2(r.read_ratio)]);
    t.print();

    section("replica staleness (age of each child slice at serve time)");
    println!(
        "p99 {:.1} ms over {} samples (both replicas, every child, every \
         query round); budget interval+deadline = {:.0} ms; root-a syncs: \
         {} full / {} delta",
        r.staleness_p99_ms, r.staleness_samples, bound_ms, r.full_syncs, r.delta_syncs,
    );

    let (bulk_ms, upsert_ms, bulk_ratio) = bulk_load_ratio(p.bulk_entries);
    section("full-sync ingest: Dit::bulk_load vs per-entry upsert");
    let mut t = Table::new(&["path", "median of 5 (ms)"]);
    t.row(vec![
        format!("bulk_load ({} entries)", p.bulk_entries),
        f2(bulk_ms),
    ]);
    t.row(vec!["per-entry upsert".into(), f2(upsert_ms)]);
    t.row(vec!["speedup".into(), f2(bulk_ratio)]);
    t.print();

    if let Some(path) = &json_path {
        write_json(path, &p, &r, bulk_ratio);
        println!("\njson written to {path}");
    }

    let mut failures = Vec::new();
    if r.read_ratio > MAX_LOCAL_READ_RATIO {
        failures.push(format!(
            "local read {:.2}x a raw DIT search (gate {MAX_LOCAL_READ_RATIO}x)",
            r.read_ratio
        ));
    }
    if r.staleness_p99_ms > bound_ms {
        failures.push(format!(
            "p99 staleness {:.1} ms exceeds the {bound_ms:.0} ms budget",
            r.staleness_p99_ms
        ));
    }
    if r.speedup < MIN_SPEEDUP {
        failures.push(format!(
            "speedup over chaining {:.2}x below the {MIN_SPEEDUP}x gate",
            r.speedup
        ));
    }
    if bulk_ratio < MIN_BULK_RATIO {
        failures.push(format!(
            "bulk_load only {bulk_ratio:.2}x per-entry upsert (gate {MIN_BULK_RATIO}x)"
        ));
    }
    if r.fed_entries < p.hosts() || r.chain_entries < p.hosts() {
        failures.push(format!(
            "incomplete answers: federated {} / chaining {} entries for {} hosts",
            r.fed_entries,
            r.chain_entries,
            p.hosts()
        ));
    }
    if smoke {
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "\nsmoke gate passed: read ratio {:.2}x <= {MAX_LOCAL_READ_RATIO}x, p99 \
             staleness {:.1} ms <= {bound_ms:.0} ms, speedup {:.2}x >= {MIN_SPEEDUP}x, \
             bulk ingest {bulk_ratio:.2}x >= {MIN_BULK_RATIO}x",
            r.read_ratio, r.staleness_p99_ms, r.speedup
        );
        return;
    }
    for f in &failures {
        eprintln!("WARN: {f}");
    }
    println!(
        "\nexpected shape: federated latency ~ one core RTT while chaining adds\n\
         the WAN fan-out to every site on every query; staleness p99 well under\n\
         the pull budget (deltas land in one WAN RTT); bulk_load amortizes index\n\
         construction over the whole full-sync batch."
    );
}
