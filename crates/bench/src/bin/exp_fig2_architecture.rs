//! F2 — Figure 2: architecture overview.
//!
//! "Using the GRid Information protocol (GRIP), users can query aggregate
//! directory services to discover relevant entities, and/or query
//! information providers to obtain information about individual
//! entities"; providers announce themselves with GRRP.
//!
//! This experiment traces the full flow — registration (GRRP), discovery
//! through a directory (GRIP search), then direct enquiry at a provider
//! (GRIP lookup) — and accounts for every message.

use gis_bench::{banner, f2, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig};
use gis_gris::HostSpec;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::secs;
use gis_proto::SearchSpec;

fn main() {
    banner(
        "F2",
        "registration / discovery / enquiry roles of GRRP and GRIP",
        "Figure 2 (architecture overview)",
    );

    let mut dep = SimDeployment::new(7);
    let vo_url = LdapUrl::server("giis.vo");
    let vo = dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(30),
        secs(90),
    ));
    let n_hosts = 4;
    let mut host_urls = Vec::new();
    for i in 0..n_hosts {
        let host = HostSpec::linux(&format!("p{i}"), 2);
        let (_, url) = dep.add_standard_host(&host, i as u64, std::slice::from_ref(&vo_url));
        host_urls.push((host, url));
    }
    let client = dep.add_client("user");

    // Phase 1: registration.
    dep.run_for(secs(2));
    let after_reg = dep.sim.metrics();
    let regs = dep.giis(vo).stats().grrp_received;
    section("phase 1: providers register via GRRP (soft state)");
    println!("  {regs} GRRP registrations accepted by the directory");
    println!("  {} messages on the wire so far", after_reg.sent);

    // Phase 2: discovery through the aggregate directory.
    section("phase 2: discovery — GRIP search at the aggregate directory");
    let (code, entries, _) = dep
        .search_and_wait(
            client,
            &vo_url,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            secs(10),
        )
        .expect("discovery reply");
    let after_disc = dep.sim.metrics();
    println!("  result: {code:?}, {} computers discovered", entries.len());
    println!(
        "  messages for discovery: {} (1 client->GIIS, {n_hosts} chained each way, 1 reply)",
        after_disc.sent - after_reg.sent
    );

    // Phase 3: direct enquiry at one provider.
    section("phase 3: enquiry — direct GRIP lookup at one provider");
    let (host, gris_url) = &host_urls[0];
    let before = dep.sim.metrics();
    let (code, entries, _) = dep
        .search_and_wait(client, gris_url, SearchSpec::lookup(host.dn()), secs(10))
        .expect("lookup reply");
    let after = dep.sim.metrics();
    let id = dep
        .client(client)
        .replies
        .keys()
        .last()
        .copied()
        .expect("a request completed");
    let latency = dep.client(client).latency(id).unwrap();
    println!(
        "  result: {code:?}, {} entry; {} messages; round trip {}",
        entries.len(),
        after.sent - before.sent,
        latency
    );

    section("message accounting");
    let m = dep.sim.metrics();
    let mut t = Table::new(&["counter", "value"]);
    t.row(vec!["sent".into(), m.sent.to_string()]);
    t.row(vec!["delivered".into(), m.delivered.to_string()]);
    t.row(vec!["GRRP received at GIIS".into(), regs.to_string()]);
    t.row(vec![
        "GIIS chained requests".into(),
        dep.giis(vo).stats().chained_requests.to_string(),
    ]);
    t.row(vec![
        "delivery ratio".into(),
        f2(m.delivered as f64 / m.sent as f64),
    ]);
    t.print();
}
