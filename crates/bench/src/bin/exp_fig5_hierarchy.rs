//! F5 — Figure 5: hierarchical discovery.
//!
//! "Two resource centers and one individual are contributing resources
//! to a VO ... Notice how resource names can be used to scope searches
//! to particular organizations, if this is desired; alternatively,
//! searches can be directed to the root directory without concern for
//! scope."
//!
//! We reproduce the exact topology (O1: R1–R3, O2: R1–R2, individual R1)
//! and measure, per query, the entries found, the servers consulted, and
//! the messages spent — showing that scoping confines work to the
//! relevant subtree.

use gis_bench::{banner, section, Table};
use gis_core::scenario::figure5;
use gis_ldap::{Dn, Filter};
use gis_netsim::secs;
use gis_proto::SearchSpec;

fn main() {
    banner(
        "F5",
        "hierarchical discovery with namespace-scoped search",
        "Figure 5 (hierarchical discovery)",
    );

    let mut sc = figure5(5);
    sc.dep.run_for(secs(3));

    section("directory hierarchy after registration");
    println!("  VO root [{}]:", sc.vo_url);
    for child in sc.dep.giis(sc.vo_giis).active_children(sc.dep.now()) {
        println!("    <- {child}");
    }
    for (node, url, suffix) in &sc.centers {
        println!("  center [{url}] (namespace {suffix}):");
        for child in sc.dep.giis(*node).active_children(sc.dep.now()) {
            println!("    <- {child}");
        }
    }

    let computer = Filter::parse("(objectclass=computer)").unwrap();
    let cases: Vec<(&str, Dn, Filter)> = vec![
        ("root (all orgs)", Dn::root(), computer.clone()),
        (
            "scoped to o=O1",
            Dn::parse("o=O1").unwrap(),
            computer.clone(),
        ),
        (
            "scoped to o=O2",
            Dn::parse("o=O2").unwrap(),
            computer.clone(),
        ),
        (
            "name resolution hn=R1",
            Dn::root(),
            Filter::parse("(hn=R1)").unwrap(),
        ),
        (
            "scoped name hn=R1 in O2",
            Dn::parse("o=O2").unwrap(),
            Filter::parse("(hn=R1)").unwrap(),
        ),
        (
            "lookup hn=R2, o=O1",
            Dn::parse("hn=R2, o=O1").unwrap(),
            Filter::always(),
        ),
    ];

    let mut table = Table::new(&["query", "found", "msgs", "vo fan-out", "entries (DNs)"]);
    for (label, base, filter) in cases {
        let before_msgs = sc.dep.sim.metrics().sent;
        let before_chained = sc.dep.giis(sc.vo_giis).stats().chained_requests;
        let (_, entries, _) = sc
            .dep
            .search_and_wait(
                sc.client,
                &sc.vo_url,
                SearchSpec::subtree(base, filter),
                secs(15),
            )
            .expect("query completes");
        let msgs = sc.dep.sim.metrics().sent - before_msgs;
        let fan_out = sc.dep.giis(sc.vo_giis).stats().chained_requests - before_chained;
        let dns: Vec<String> = entries.iter().map(|e| format!("[{}]", e.dn())).collect();
        table.row(vec![
            label.into(),
            entries.len().to_string(),
            msgs.to_string(),
            fan_out.to_string(),
            dns.join(" "),
        ]);
        // Let background refresh traffic not pollute the next sample.
        sc.dep.run_for(secs(1));
    }

    section("scoped vs unscoped search cost");
    table.print();
    println!(
        "\nexpected: root searches fan out to all 3 VO children; o=O1/o=O2\n\
         scopes touch exactly one center; the name hn=R1 resolves to three\n\
         *distinct* global names (relative uniqueness, §8)."
    );
}
