//! LIVE — throughput of the live multi-threaded runtime.
//!
//! The architecture claims transport independence: the same GRIS/GIIS
//! engines run over the deterministic simulator and over real OS threads.
//! This experiment drives the threaded runtime with parallel clients and
//! measures sustained query throughput and latency percentiles — the
//! wall-clock (not simulated) performance of the implementation — along
//! two axes:
//!
//! 1. client parallelism against single-threaded services (the PR2
//!    baseline shape), and
//! 2. **query-worker parallelism**: one GRIS spawned with an N-thread
//!    worker pool answering searches concurrently off the shared read
//!    path, under a fixed parallel-client load.
//!
//! The worker sweep models the paper's dominant GRIS cost: information
//! providers are external programs (§5 — fork/exec of a sensor script,
//! a scheduler query, an NWS probe) whose invocation takes wall-clock
//! time. Each sweep query lands on a non-cacheable probe provider with a
//! fixed per-invocation latency; the worker pool's job is to overlap
//! those blocked invocations, so throughput scales with workers even on
//! a single core, while the shared snapshot read path keeps the merge /
//! redact / project work lock-free.
//!
//! With `--json PATH` the raw numbers are also written as JSON for the
//! benchmark snapshot script.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveRuntime, ServeOptions, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::{Gris, GrisConfig, HostSpec, InfoProvider, ProviderError};
use gis_ldap::{Dn, Entry, Filter, LdapUrl};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::SearchSpec;
use std::time::{Duration, Instant};

const QUERIES_PER_CLIENT: usize = 200;
/// Fixed client load for the worker-count sweep.
const SWEEP_CLIENTS: usize = 8;
/// Probe providers in the sweep GRIS — one per sweep client so queries
/// in flight land on distinct slots (distinct striped locks).
const PROBE_COUNT: usize = 8;
/// Entries each probe returns: enough merge + redact + project work per
/// query that the snapshot read path is exercised, not just channels.
const PROBE_ENTRIES: usize = 24;
/// Wall-clock cost of one provider invocation (the external program the
/// paper's GRIS forks per query).
const PROBE_MS: u64 = 2;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Run {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: usize,
    total: usize,
}

/// A record of one measured configuration, for the JSON dump.
struct JsonRow {
    workload: &'static str,
    clients: usize,
    /// `None` for the client sweep (single-threaded services).
    workers: Option<usize>,
    run: Run,
}

/// One site's inventory behind a deliberately slow, non-cacheable
/// provider: every search pays one external-program invocation, like the
/// paper's fork/exec information providers.
#[derive(Debug)]
struct ProbeProvider {
    namespace: Dn,
    entries: Vec<Entry>,
    probe: Duration,
}

impl ProbeProvider {
    fn new(site: usize, hosts: usize, probe: Duration) -> ProbeProvider {
        let namespace = Dn::parse(&format!("ou=site{site}, o=fleet")).expect("site dn");
        let entries = (0..hosts)
            .map(|i| {
                Entry::new(Dn::parse(&format!("hn=h{i}, ou=site{site}, o=fleet")).expect("host dn"))
                    .with_class("computer")
                    .with("hn", format!("h{i}"))
                    .with("system", "linux")
                    .with("arch", if i % 2 == 0 { "x86_64" } else { "aarch64" })
                    .with("cpucount", (2 + (i % 7)) as i64)
                    .with("memorymb", (1024 * (1 + i % 16)) as i64)
            })
            .collect();
        ProbeProvider {
            namespace,
            entries,
            probe,
        }
    }
}

impl InfoProvider for ProbeProvider {
    fn name(&self) -> &str {
        "site-probe"
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn cacheable(&self) -> bool {
        false
    }
    fn fetch(&mut self, _spec: &SearchSpec, _now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        std::thread::sleep(self.probe);
        Ok(self.entries.clone())
    }
}

/// Drive `threads` parallel clients; client `i` issues `specs[i % len]`.
fn drive(rt: &LiveRuntime, target: &LdapUrl, threads: usize, specs: &[SearchSpec]) -> Run {
    let mut handles = Vec::new();
    let start = Instant::now();
    for i in 0..threads {
        let mut client = rt.client();
        let target = target.clone();
        let spec = specs[i % specs.len()].clone();
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
            let mut ok = 0;
            for _ in 0..QUERIES_PER_CLIENT {
                let t0 = Instant::now();
                if client
                    .request(&target, spec.clone())
                    .timeout(Duration::from_secs(10))
                    .send()
                    .outcome
                    .is_some()
                {
                    ok += 1;
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
            }
            (ok, latencies)
        }));
    }
    let mut all_latencies = Vec::new();
    let mut ok = 0;
    for h in handles {
        let (o, lats) = h.join().expect("client thread");
        ok += o;
        all_latencies.extend(lats);
    }
    let elapsed = start.elapsed().as_secs_f64();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Run {
        qps: ok as f64 / elapsed,
        p50_us: percentile(&all_latencies, 0.50),
        p99_us: percentile(&all_latencies, 0.99),
        ok,
        total: threads * QUERIES_PER_CLIENT,
    }
}

/// One worker-sweep measurement: a fresh runtime, one pooled GRIS over
/// `PROBE_COUNT` slow probe providers, fixed parallel-client load. Each
/// client queries its own site subtree, so concurrent queries block in
/// distinct provider invocations — the work a pool can overlap.
fn run_worker_config(workers: usize) -> Run {
    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let url = LdapUrl::server("gris.pool");
    let mut gris = Gris::new(
        GrisConfig::open(url.clone(), Dn::parse("o=fleet").expect("suffix")),
        SimDuration::from_secs(60),
        SimDuration::from_secs(180),
    );
    for site in 0..PROBE_COUNT {
        gris.add_provider(Box::new(ProbeProvider::new(
            site,
            PROBE_ENTRIES,
            Duration::from_millis(PROBE_MS),
        )));
    }
    rt.spawn_gris(gris, ServeOptions::default().with_workers(workers))
        .unwrap();
    let specs: Vec<SearchSpec> = (0..PROBE_COUNT)
        .map(|site| {
            SearchSpec::subtree(
                Dn::parse(&format!("ou=site{site}, o=fleet")).expect("base"),
                Filter::parse("(objectclass=computer)").expect("filter"),
            )
        })
        .collect();
    // One query outside the measured window so the service thread (and
    // any workers) are demonstrably up before timing starts.
    let mut warm = rt.client();
    warm.request(&url, specs[0].clone())
        .timeout(Duration::from_secs(10))
        .send()
        .outcome
        .expect("warmup query");
    let run = drive(&rt, &url, SWEEP_CLIENTS, &specs);
    rt.shutdown();
    run
}

fn write_json(path: &str, rows: &[JsonRow]) {
    let mut body = String::from("{\n  \"queries_per_client\": ");
    body.push_str(&QUERIES_PER_CLIENT.to_string());
    body.push_str(",\n  \"probe_count\": ");
    body.push_str(&PROBE_COUNT.to_string());
    body.push_str(",\n  \"probe_entries\": ");
    body.push_str(&PROBE_ENTRIES.to_string());
    body.push_str(",\n  \"probe_ms\": ");
    body.push_str(&PROBE_MS.to_string());
    body.push_str(",\n  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"workload\": \"{}\", \"clients\": {}, \"workers\": {}, \
             \"qps\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"ok\": {}, \"total\": {}}}{}\n",
            row.workload,
            row.clients,
            row.workers
                .map_or_else(|| "null".to_string(), |w| w.to_string()),
            row.run.qps,
            row.run.p50_us,
            row.run.p99_us,
            row.run.ok,
            row.run.total,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    banner(
        "LIVE",
        "threaded-runtime query throughput vs client and worker parallelism",
        "transport independence of the sans-IO engines (implementation property)",
    );
    println!(
        "4 GRIS + 1 chaining GIIS on their own threads; {QUERIES_PER_CLIENT} queries per client.\n"
    );
    let mut json_rows: Vec<JsonRow> = Vec::new();

    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let vo_url = LdapUrl::server("giis.live");
    let mut giis = Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        SimDuration::from_millis(200),
        SimDuration::from_millis(800),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(1000),
    };
    rt.spawn_giis(giis, ServeOptions::default()).unwrap();
    let mut gris0_url = None;
    for i in 0..4 {
        let host = HostSpec::linux(&format!("live{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i);
        gris.agent.interval = SimDuration::from_millis(200);
        gris.agent.ttl = SimDuration::from_millis(800);
        gris.agent.add_target(vo_url.clone());
        if i == 0 {
            gris0_url = Some(gris.config.url.clone());
        }
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
    }
    let gris0_url = gris0_url.expect("gris0");
    std::thread::sleep(Duration::from_millis(600));

    let lookup_spec = SearchSpec::lookup(Dn::parse("hn=live0").expect("dn"));
    let chained_spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    let mut table = Table::new(&[
        "workload",
        "client threads",
        "throughput (q/s)",
        "p50 (us)",
        "p99 (us)",
        "ok",
    ]);
    for &threads in &[1usize, 2, 4, 8, 16] {
        let r = drive(&rt, &gris0_url, threads, std::slice::from_ref(&lookup_spec));
        table.row(vec![
            "direct GRIS lookup".into(),
            threads.to_string(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
        json_rows.push(JsonRow {
            workload: "direct_lookup",
            clients: threads,
            workers: None,
            run: r,
        });
    }
    for &threads in &[1usize, 4, 8] {
        let r = drive(&rt, &vo_url, threads, std::slice::from_ref(&chained_spec));
        table.row(vec![
            "chained discovery".into(),
            threads.to_string(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
        json_rows.push(JsonRow {
            workload: "chained_discovery",
            clients: threads,
            workers: None,
            run: r,
        });
    }
    section("results: client parallelism (wall-clock, this machine)");
    table.print();
    rt.shutdown();

    println!(
        "\nWorker-pool sweep: one GRIS over {PROBE_COUNT} non-cacheable probe\n\
         providers ({PROBE_ENTRIES} entries each, {PROBE_MS} ms per invocation —\n\
         the external information-provider program), {SWEEP_CLIENTS} client\n\
         threads each querying its own site subtree, spawn_gris with a\n\
         ServeOptions pool of N query workers (0 = the single-threaded\n\
         owner loop).\n"
    );
    let mut wtable = Table::new(&[
        "query workers",
        "client threads",
        "throughput (q/s)",
        "p50 (us)",
        "p99 (us)",
        "ok",
    ]);
    for &workers in &[0usize, 1, 2, 4, 8] {
        let r = run_worker_config(workers);
        wtable.row(vec![
            if workers == 0 {
                "0 (owner loop)".into()
            } else {
                workers.to_string()
            },
            SWEEP_CLIENTS.to_string(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
        json_rows.push(JsonRow {
            workload: "worker_sweep",
            clients: SWEEP_CLIENTS,
            workers: Some(workers),
            run: r,
        });
    }
    section("results: query-worker parallelism (wall-clock, this machine)");
    wtable.print();
    println!(
        "\nexpected shape: direct-lookup throughput scales with client threads\n\
         until the single GRIS thread saturates; chained discovery pays the\n\
         GIIS fan-out (4 children) per query and saturates earlier. In the\n\
         worker sweep a single thread serializes every {PROBE_MS} ms probe, so\n\
         throughput grows near-linearly with workers (overlapped provider\n\
         invocations against the shared snapshot read path) until the client\n\
         count or available cores cap it. All queries complete — no loss\n\
         under contention."
    );

    if let Some(path) = json_path {
        write_json(&path, &json_rows);
        println!("\njson written to {path}");
    }
}
