//! LIVE — throughput of the live multi-threaded runtime.
//!
//! The architecture claims transport independence: the same GRIS/GIIS
//! engines run over the deterministic simulator and over real OS threads.
//! This experiment drives the threaded runtime with parallel clients and
//! measures sustained query throughput and latency percentiles — the
//! wall-clock (not simulated) performance of the implementation, scaling
//! the client thread count.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveRuntime, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::HostSpec;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::SimDuration;
use gis_proto::SearchSpec;
use std::time::{Duration, Instant};

const QUERIES_PER_CLIENT: usize = 200;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Run {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: usize,
    total: usize,
}

fn drive(rt: &LiveRuntime, target: &LdapUrl, threads: usize, direct_lookup: bool) -> Run {
    let mut handles = Vec::new();
    let start = Instant::now();
    for _ in 0..threads {
        let mut client = rt.client();
        let target = target.clone();
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
            let mut ok = 0;
            for _ in 0..QUERIES_PER_CLIENT {
                let spec = if direct_lookup {
                    SearchSpec::lookup(Dn::parse("hn=live0").expect("dn"))
                } else {
                    SearchSpec::subtree(
                        Dn::root(),
                        Filter::parse("(objectclass=computer)").expect("filter"),
                    )
                };
                let t0 = Instant::now();
                if client
                    .search(&target, spec, Duration::from_secs(10))
                    .is_some()
                {
                    ok += 1;
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
            }
            (ok, latencies)
        }));
    }
    let mut all_latencies = Vec::new();
    let mut ok = 0;
    for h in handles {
        let (o, lats) = h.join().expect("client thread");
        ok += o;
        all_latencies.extend(lats);
    }
    let elapsed = start.elapsed().as_secs_f64();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Run {
        qps: ok as f64 / elapsed,
        p50_us: percentile(&all_latencies, 0.50),
        p99_us: percentile(&all_latencies, 0.99),
        ok,
        total: threads * QUERIES_PER_CLIENT,
    }
}

fn main() {
    banner(
        "LIVE",
        "threaded-runtime query throughput vs client parallelism",
        "transport independence of the sans-IO engines (implementation property)",
    );
    println!(
        "4 GRIS + 1 chaining GIIS on their own threads; {QUERIES_PER_CLIENT} queries per client.\n"
    );

    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let vo_url = LdapUrl::server("giis.live");
    let mut giis = Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        SimDuration::from_millis(200),
        SimDuration::from_millis(800),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(1000),
    };
    rt.spawn_giis(giis);
    let mut gris0_url = None;
    for i in 0..4 {
        let host = HostSpec::linux(&format!("live{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i);
        gris.agent.interval = SimDuration::from_millis(200);
        gris.agent.ttl = SimDuration::from_millis(800);
        gris.agent.add_target(vo_url.clone());
        if i == 0 {
            gris0_url = Some(gris.config.url.clone());
        }
        rt.spawn_gris(gris);
    }
    let gris0_url = gris0_url.expect("gris0");
    std::thread::sleep(Duration::from_millis(600));

    let mut table = Table::new(&[
        "workload",
        "client threads",
        "throughput (q/s)",
        "p50 (us)",
        "p99 (us)",
        "ok",
    ]);
    for &threads in &[1usize, 2, 4, 8, 16] {
        let r = drive(&rt, &gris0_url, threads, true);
        table.row(vec![
            "direct GRIS lookup".into(),
            threads.to_string(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
    }
    for &threads in &[1usize, 4, 8] {
        let r = drive(&rt, &vo_url, threads, false);
        table.row(vec![
            "chained discovery".into(),
            threads.to_string(),
            f2(r.qps),
            f2(r.p50_us),
            f2(r.p99_us),
            format!("{}/{}", r.ok, r.total),
        ]);
    }
    section("results (wall-clock, this machine)");
    table.print();
    println!(
        "\nexpected shape: direct-lookup throughput scales with client threads\n\
         until the single GRIS thread saturates; chained discovery pays the\n\
         GIIS fan-out (4 children) per query and saturates earlier. All\n\
         queries complete — no loss under contention."
    );
    rt.shutdown();
}
