//! TRUST — the §7 trust matrix over real sockets.
//!
//! §7 names the postures an information service can take towards its
//! peers: fully open access ("authenticated queries are not required"),
//! GSI mutual authentication, and policies "based on identity
//! credentials presented by the requesting entity". PR 10 threads those
//! postures through the live TCP transport; this experiment runs one
//! topology per §7 row — real listeners on 127.0.0.1, real handshake
//! frames, real signed registrations — and measures what each tier
//! costs:
//!
//! * **anonymous** — open GIIS + GRIS, anonymous client. The baseline.
//! * **authenticated** — every hop (client→GIIS, GRIS→GIIS
//!   registration, GIIS→GRIS chaining) completes the mutual-auth
//!   handshake before any GRIP/GRRP traffic; registrations are signed
//!   and verified. Reports the handshake RTT paid once per connection.
//! * **identity** — as authenticated, plus a per-subtree ACL map on the
//!   GIIS: an admin subject reads full entries, any other authenticated
//!   subject sees existence only. The `acl_filter_tax` column is the
//!   steady-state query cost of redaction, gated under 10% in CI.
//! * **rejected** — the failure row: a credential from an untrusted CA
//!   is refused at the handshake (wire code `AuthRejected`), and a
//!   secured GRIS that an open GIIS cannot authenticate to looks like
//!   any other dead child — chained fan-outs time out and the PR 2
//!   circuit breaker opens.
//!
//! `--json PATH` dumps the rows for `scripts/bench_snapshot.sh`;
//! `--smoke` shrinks the run for CI.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveClient, LiveRuntime, ServeOptions};
use gis_giis::{BreakerConfig, Giis, GiisConfig, GiisMode};
use gis_gris::{Gris, GrisConfig, HostSpec, StaticHostProvider};
use gis_gsi::{Acl, CertAuthority, Grant, PolicyMap, Principal, SecurityPolicy, TrustStore};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::SimDuration;
use gis_proto::{ResultCode, SearchSpec};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const QUERIES: usize = 400;
const SMOKE_QUERIES: usize = 80;
const GRIS_COUNT: usize = 2;
/// The relative ACL-redaction overhead the CI gate tolerates.
const ACL_TAX_CEILING: f64 = 0.10;
/// Absolute-noise floor: loopback p50s this close together are within
/// scheduler jitter, whatever the ratio says.
const ACL_TAX_FLOOR_US: f64 = 150.0;

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .unwrap()
        .port()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn computers() -> SearchSpec {
    SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap())
}

struct Run {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: usize,
    total: usize,
}

/// A GRIS with fully static entries, carrying `security` as both its
/// endpoint posture and its registration-signing credential.
fn matrix_gris(name: &str, url: LdapUrl, vo: &LdapUrl, security: SecurityPolicy) -> Gris {
    let host = HostSpec::linux(name, 2);
    let mut config = GrisConfig::open(url, host.dn());
    config.security = security;
    let mut gris = Gris::new(
        config,
        SimDuration::from_millis(100),
        SimDuration::from_secs(10),
    );
    gris.add_provider(Box::new(StaticHostProvider::new(host)));
    gris.agent.add_target(vo.clone());
    gris
}

fn matrix_giis(vo: LdapUrl) -> Giis {
    let mut giis = Giis::new(
        GiisConfig::chaining(vo, Dn::root()),
        SimDuration::from_millis(100),
        SimDuration::from_secs(10),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(800),
    };
    giis
}

/// Poll until the VO search returns `want` entries with `Success`.
fn warm(client: &mut LiveClient, vo: &LdapUrl, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let outcome = client
            .request(vo, computers())
            .timeout(Duration::from_secs(2))
            .send()
            .outcome;
        if let Some((ResultCode::Success, entries, _)) = &outcome {
            if entries.len() >= want {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "topology never converged to {want} entries; last outcome: {outcome:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Sequential timed queries — the steady-state per-request view, with
/// the handshake already paid.
fn drive(client: &mut LiveClient, target: &LdapUrl, queries: usize) -> Run {
    let mut lats = Vec::with_capacity(queries);
    let mut ok = 0;
    let start = Instant::now();
    for _ in 0..queries {
        let t0 = Instant::now();
        let outcome = client
            .request(target, computers())
            .timeout(Duration::from_secs(5))
            .send()
            .outcome;
        if matches!(outcome, Some((ResultCode::Success, _, _))) {
            ok += 1;
            lats.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Run {
        qps: ok as f64 / elapsed,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
        ok,
        total: queries,
    }
}

/// §7 row 1: no handshake anywhere, everyone anonymous.
fn row_anonymous(queries: usize) -> Run {
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let vo = LdapUrl::tcp("127.0.0.1", free_port());
    rt.spawn_giis(matrix_giis(vo.clone()), ServeOptions::tcp())
        .expect("open giis binds");
    for i in 0..GRIS_COUNT {
        let gris = matrix_gris(
            &format!("open{i}"),
            LdapUrl::tcp("127.0.0.1", free_port()),
            &vo,
            SecurityPolicy::anonymous(),
        );
        rt.spawn_gris(gris, ServeOptions::tcp()).expect("open gris");
    }
    let mut client = LiveClient::builder(&vo)
        .connect()
        .expect("anonymous connect");
    assert!(
        client.handshake_rtt().is_none(),
        "anonymous connect performs no handshake"
    );
    warm(&mut client, &vo, GRIS_COUNT);
    let run = drive(&mut client, &vo, queries);
    rt.shutdown();
    run
}

/// §7 rows 2 and 3 share a topology: every hop mutually authenticated,
/// registrations signed and verified. `policy_map` is `None` for the
/// authenticated tier and `Some` for the identity tier.
fn secured_topology(
    ca: &CertAuthority,
    trust: &TrustStore,
    policy_map: Option<PolicyMap>,
) -> (LiveRuntime, LdapUrl) {
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    // One mesh identity for the runtime's own outbound hops: GRRP
    // registrations to the GIIS and GIIS→GRIS chaining legs.
    rt.set_outbound_security(&SecurityPolicy::authenticated(
        ca.issue("/O=Grid/CN=mesh"),
        trust.clone(),
    ));
    let vo = LdapUrl::tcp("127.0.0.1", free_port());
    let identity = policy_map.is_some();
    let mut giis_policy = SecurityPolicy::authenticated(ca.issue(vo.to_string()), trust.clone());
    if let Some(map) = policy_map {
        giis_policy =
            SecurityPolicy::identity(ca.issue(vo.to_string()), trust.clone()).with_policy_map(map);
    }
    rt.spawn_giis(
        matrix_giis(vo.clone()),
        ServeOptions::tcp().security(giis_policy),
    )
    .expect("secured giis binds");
    for i in 0..GRIS_COUNT {
        let name = format!("{}{i}", if identity { "idn" } else { "sec" });
        let gris = matrix_gris(
            &name,
            LdapUrl::tcp("127.0.0.1", free_port()),
            &vo,
            SecurityPolicy::authenticated(ca.issue(format!("/O=Grid/CN={name}")), trust.clone()),
        );
        rt.spawn_gris(gris, ServeOptions::tcp())
            .expect("secured gris");
    }
    (rt, vo)
}

/// §7 row 2: mutual auth on every hop, open ACLs for whoever passes.
fn row_authenticated(ca: &CertAuthority, trust: &TrustStore, queries: usize) -> (Run, f64) {
    let (rt, vo) = secured_topology(ca, trust, None);
    let mut client = LiveClient::builder(&vo)
        .security(SecurityPolicy::authenticated(
            ca.issue("/O=Grid/CN=client"),
            trust.clone(),
        ))
        .connect()
        .expect("authenticated client connects");
    let rtt_us = client
        .handshake_rtt()
        .expect("handshake measured")
        .as_secs_f64()
        * 1e6;
    warm(&mut client, &vo, GRIS_COUNT);
    let run = drive(&mut client, &vo, queries);
    assert_eq!(run.ok, run.total, "authenticated tier serves every query");
    rt.shutdown();
    (run, rtt_us)
}

/// §7 row 3: mutual auth plus identity ACLs on the GIIS — the admin
/// subject reads everything, any other authenticated subject sees only
/// that entries exist. Returns the admin's run plus the attribute count
/// the restricted subject was shown (must be 0).
fn row_identity(ca: &CertAuthority, trust: &TrustStore, queries: usize) -> (Run, usize, usize) {
    let acl = Acl::default()
        .with_rule(Principal::Authenticated, Grant::ExistenceOnly)
        .with_rule(Principal::Subject("/O=Grid/CN=admin".into()), Grant::All);
    let (rt, vo) = secured_topology(ca, trust, Some(PolicyMap::with_default(acl)));

    let mut admin = LiveClient::builder(&vo)
        .security(SecurityPolicy::authenticated(
            ca.issue("/O=Grid/CN=admin"),
            trust.clone(),
        ))
        .connect()
        .expect("admin connects");
    warm(&mut admin, &vo, GRIS_COUNT);
    let run = drive(&mut admin, &vo, queries);
    assert_eq!(run.ok, run.total, "admin is served every query");

    // A different authenticated subject: same handshake, same wire,
    // existence-only view. `(&)` is the absolute-true filter — the
    // attribute filter `(objectclass=computer)` can no longer match
    // what redaction leaves behind.
    let mut guest = LiveClient::builder(&vo)
        .security(SecurityPolicy::authenticated(
            ca.issue("/O=Grid/CN=guest"),
            trust.clone(),
        ))
        .connect()
        .expect("guest connects");
    let enumerate = SearchSpec::subtree(Dn::root(), Filter::And(Vec::new()));
    let outcome = guest
        .request(&vo, enumerate)
        .timeout(Duration::from_secs(5))
        .send()
        .outcome;
    let Some((ResultCode::Success, entries, _)) = outcome else {
        panic!("guest enumeration failed: {outcome:?}");
    };
    let guest_entries = entries.len();
    // Existence-only keeps the DN's naming attribute and objectclass so
    // `(objectclass=*)` enumeration still works; everything descriptive
    // must be gone.
    let guest_attrs: usize = entries.iter().map(|e| e.attr_count()).sum();
    for e in &entries {
        assert!(
            !e.has("cpucount") && e.attr_count() <= 2,
            "existence-only view leaked descriptive attributes: {e:?}"
        );
    }
    rt.shutdown();
    (run, guest_entries, guest_attrs)
}

/// §7 failure row: untrusted credentials are refused at the handshake,
/// and a peer that *requires* auth from a peer that cannot give it
/// strikes the circuit breaker like any other dead child.
fn row_rejected(ca: &CertAuthority, trust: &TrustStore) -> (String, u64) {
    // (a) A credential from a CA outside the trust store: the secured
    // GIIS answers the Hello with wire code AuthRejected and the
    // connect fails — no GRIP frame is ever accepted.
    let (rt, vo) = secured_topology(ca, trust, None);
    let rogue_ca = CertAuthority::new("/O=Rogue/CN=CA", 99);
    let mut rogue_trust = TrustStore::new();
    rogue_trust.add_ca(ca);
    let err = match LiveClient::builder(&vo)
        .security(SecurityPolicy::authenticated(
            rogue_ca.issue("/O=Rogue/CN=intruder"),
            rogue_trust,
        ))
        .connect()
    {
        Ok(_) => panic!("untrusted credential must be refused at the handshake"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    let reject = err.to_string();
    rt.shutdown();

    // (b) An open GIIS chaining to a GRIS that demands authentication:
    // every chained enquiry is dropped at the GRIS door, fan-outs time
    // out, and the breaker opens — auth rejection feeds the same
    // failure machinery as a crashed child.
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let vo = LdapUrl::server("giis.open");
    let mut giis = matrix_giis(vo.clone());
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(300),
    };
    giis.config.breaker = Some(BreakerConfig {
        failure_threshold: 2,
        cooldown: SimDuration::from_secs(60),
        retry: false,
    });
    let stats = giis.query_path();
    rt.spawn_giis(giis, ServeOptions::channel())
        .expect("open giis");
    let gris = matrix_gris(
        "fortress",
        LdapUrl::tcp("127.0.0.1", free_port()),
        &vo,
        SecurityPolicy::authenticated(ca.issue("/O=Grid/CN=fortress"), trust.clone()),
    );
    rt.spawn_gris(gris, ServeOptions::tcp())
        .expect("secured gris");

    // Wait for the (channel-delivered, signed) registration to land,
    // then chain into the wall.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.stats().grrp_received == 0 {
        assert!(Instant::now() < deadline, "registration never arrived");
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut client = rt.client();
    for _ in 0..3 {
        let _ = client
            .request(&vo, computers())
            .timeout(Duration::from_secs(2))
            .send()
            .outcome;
    }
    let opens = stats.stats().breaker_opens;
    assert!(
        opens >= 1,
        "auth-gated child must trip the breaker: {:?}",
        stats.stats()
    );
    rt.shutdown();
    (reject, opens)
}

fn write_json(
    path: &str,
    queries: usize,
    rows: &[(&str, &Run)],
    handshake_rtt_us: f64,
    acl_filter_tax: f64,
    breaker_opens: u64,
) {
    let mut body = String::from("{\n  \"queries\": ");
    body.push_str(&queries.to_string());
    body.push_str(",\n  \"gris_count\": ");
    body.push_str(&GRIS_COUNT.to_string());
    body.push_str(&format!(
        ",\n  \"handshake_rtt_us\": {handshake_rtt_us:.2},\n  \"acl_filter_tax\": {acl_filter_tax:.4},\n  \"breaker_opens\": {breaker_opens},\n  \"rows\": [\n"
    ));
    for (i, (tier, run)) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"tier\": \"{}\", \"qps\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"ok\": {}, \"total\": {}}}{}\n",
            tier,
            run.qps,
            run.p50_us,
            run.p99_us,
            run.ok,
            run.total,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let queries = if smoke { SMOKE_QUERIES } else { QUERIES };

    banner(
        "TRUST",
        "the §7 trust matrix over real sockets",
        "§7: anonymous access, GSI mutual authentication, identity-based policy",
    );
    println!(
        "{GRIS_COUNT} GRIS + 1 chaining GIIS per row, all hops on 127.0.0.1;\n\
         {queries} steady-state queries per measured tier.\n"
    );

    let ca = CertAuthority::new("/O=Grid/CN=MatrixCA", 17);
    let mut trust = TrustStore::new();
    trust.add_ca(&ca);

    let anon = row_anonymous(queries);
    let (auth, handshake_rtt_us) = row_authenticated(&ca, &trust, queries);
    let (ident, guest_entries, guest_attrs) = row_identity(&ca, &trust, queries);
    let (reject, breaker_opens) = row_rejected(&ca, &trust);

    let acl_overhead_us = ident.p50_us - auth.p50_us;
    let acl_filter_tax = (acl_overhead_us / auth.p50_us).max(0.0);

    let mut table = Table::new(&[
        "tier",
        "throughput (q/s)",
        "p50 (us)",
        "p99 (us)",
        "ok",
        "notes",
    ]);
    for (tier, run, notes) in [
        ("anonymous", &anon, "no handshake, full entries".to_string()),
        (
            "authenticated",
            &auth,
            format!("handshake rtt {handshake_rtt_us:.0}us, signed GRRP"),
        ),
        (
            "identity",
            &ident,
            format!("guest saw {guest_entries} entries, {guest_attrs} attrs"),
        ),
    ] {
        table.row(vec![
            tier.into(),
            f2(run.qps),
            f2(run.p50_us),
            f2(run.p99_us),
            format!("{}/{}", run.ok, run.total),
            notes,
        ]);
    }
    table.row(vec![
        "rejected".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "0/-".into(),
        format!("\"{reject}\"; breaker opens: {breaker_opens}"),
    ]);

    section("results: what each §7 posture costs on this machine");
    table.print();
    println!(
        "\nacl filter tax: identity p50 is {acl_overhead_us:+.0}us vs authenticated\n\
         ({:.1}% — CI gate: <{:.0}% or within the {ACL_TAX_FLOOR_US:.0}us noise floor).\n\
         The handshake is paid once per connection, not per query; the\n\
         rejected row shows AuthRejected surfacing before any GRIP frame\n\
         and auth-gated children feeding the ordinary breaker path.",
        acl_filter_tax * 100.0,
        ACL_TAX_CEILING * 100.0,
    );

    assert!(guest_entries > 0, "existence-only view still enumerates");
    assert!(
        acl_filter_tax < ACL_TAX_CEILING || acl_overhead_us < ACL_TAX_FLOOR_US,
        "ACL filtering cost {:.1}% ({acl_overhead_us:.0}us) exceeds the gate",
        acl_filter_tax * 100.0,
    );

    if let Some(path) = json_path {
        write_json(
            &path,
            queries,
            &[
                ("anonymous", &anon),
                ("authenticated", &auth),
                ("identity", &ident),
            ],
            handshake_rtt_us,
            acl_filter_tax,
            breaker_opens,
        );
        println!("\njson written to {path}");
    }
}
