//! E8 — §10.3/§12: the cache freshness-vs-cost tradeoff.
//!
//! "Each provider's results may be cached for a configurable period of
//! time to reduce the number of provider invocations; this cache
//! time-to-live (TTL) is specified per-provider ... the appropriate
//! value depends greatly on both the dynamism of the modeled resource
//! and the cost of the provider mechanism." §12 lists "update versus
//! freshness tradeoffs" as the key open tuning question.
//!
//! Sweep the GRIS cache TTL for a dynamic load provider (true value
//! changes every 10 s) under a steady query stream; report provider
//! invocations (cost / intrusiveness) and the error between the returned
//! and true load (freshness).

use gis_bench::{banner, f2, f3, section, Table};
use gis_gris::{DynamicHostProvider, Gris, GrisConfig, HostSpec};
use gis_gsi::Requester;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, SimDuration, SimTime};
use gis_proto::SearchSpec;

fn main() {
    banner(
        "E8",
        "provider cache TTL: invocation cost vs data freshness",
        "§10.3 caching; §12 freshness-vs-update tradeoff",
    );
    println!("dynamic load changes every 10 s; client queries every 2 s for 10 min.\n");

    let host = HostSpec::linux("h", 4);
    let query_period = 2u64;
    let duration = 600u64;
    let queries = duration / query_period;

    let mut table = Table::new(&[
        "cache TTL (s)",
        "provider invocations",
        "cache hit rate",
        "mean |error| (load)",
        "mean age (s)",
    ]);

    for ttl_s in [0u64, 2, 5, 10, 30, 60, 120] {
        let mut gris = Gris::new(
            GrisConfig::open(LdapUrl::server("gris.h"), host.dn()),
            secs(30),
            secs(90),
        );
        let provider =
            DynamicHostProvider::new(&host, 7, 1.5, secs(10), SimDuration::from_secs(ttl_s));
        // A reference copy for ground truth (same seed => same series).
        let truth =
            DynamicHostProvider::new(&host, 7, 1.5, secs(10), SimDuration::from_secs(ttl_s));
        gris.add_provider(Box::new(provider));

        let spec = SearchSpec::subtree(
            Dn::parse("perf=load, hn=h").unwrap(),
            Filter::parse("(load5=*)").unwrap(),
        );
        let requester = Requester::anonymous();

        let mut abs_err = 0.0;
        let mut age_total = 0.0;
        let mut samples = 0u64;
        for i in 0..queries {
            let now = SimTime::ZERO + secs(i * query_period);
            let (_, entries) = gris.search(&spec, &requester, now);
            if let Some(e) = entries.first() {
                let reported = e.get_f64("load5").expect("load present");
                let measured_at = e.get_i64("measuredat").expect("stamp present") as u64;
                let actual = truth.true_load(now);
                abs_err += (reported - actual).abs();
                age_total += now.since(SimTime(measured_at)).as_secs_f64();
                samples += 1;
            }
        }
        let s = gris.stats();
        table.row(vec![
            ttl_s.to_string(),
            s.provider_invocations.to_string(),
            f2(s.cache_hits as f64 / (s.cache_hits + s.cache_misses) as f64),
            f3(abs_err / samples as f64),
            f2(age_total / samples as f64),
        ]);
    }

    section("results");
    table.print();
    println!(
        "\nexpected shape: invocations fall ~1/TTL while returned-data age grows\n\
         ~TTL/2; error is negligible below the 10 s dynamism period and grows\n\
         once the cache outlives it — pick TTL to match resource dynamism,\n\
         exactly the paper's per-provider tuning advice."
    );
}
