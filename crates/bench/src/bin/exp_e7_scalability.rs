//! E7 — §3/§11.1: scalability of the distributed architecture vs the
//! MDS-1 centralized push design.
//!
//! "The strategy of collecting all information into a database
//! inevitably limited scalability and reliability." We sweep the number
//! of providers and compare three designs answering the same discovery
//! query:
//!
//! * MDS-2 GIIS in **harvest** mode (relational index, pull + TTL),
//! * MDS-2 GIIS in **chain** mode (no index, per-query fan-out),
//! * MDS-1 **centralized push** (everything pushed every 30 s).
//!
//! Reported per design: query latency seen by the client, the standing
//! message load, and the load concentrated on the central/most-loaded
//! server.

use gis_baselines::{Mds1Central, Mds1Client, Mds1Msg, Mds1Provider};
use gis_bench::{banner, f2, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::{DynamicHostProvider, HostSpec, InfoProvider, StaticHostProvider};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, Sim, SimTime};
use gis_proto::SearchSpec;

const MEASURE_WINDOW: u64 = 120;

struct Mds2Result {
    latency_ms: f64,
    msgs_per_sec: f64,
    found: usize,
}

fn run_mds2(n: usize, mode: GiisMode) -> Mds2Result {
    let mut dep = SimDeployment::new(17);
    let vo_url = LdapUrl::server("giis.vo");
    let mut config = GiisConfig::chaining(vo_url.clone(), Dn::root());
    config.mode = mode;
    dep.add_giis(Giis::new(config, secs(30), secs(90)));
    for i in 0..n {
        let host = HostSpec::linux(&format!("h{i}"), 2);
        dep.add_standard_host(&host, i as u64, std::slice::from_ref(&vo_url));
    }
    let client = dep.add_client("c");
    dep.run_for(secs(10)); // registrations + initial harvests

    // Standing message load over a quiet window (registration refresh +
    // harvest refresh traffic).
    let before = dep.sim.metrics().sent;
    dep.run_for(secs(MEASURE_WINDOW));
    let standing = (dep.sim.metrics().sent - before) as f64 / MEASURE_WINDOW as f64;

    // Query latency (mean of 5).
    let q = || SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    let mut total_latency = 0.0;
    let mut found = 0;
    let samples = 5;
    for _ in 0..samples {
        let (_, entries, _) = dep
            .search_and_wait(client, &vo_url, q(), secs(30))
            .expect("query completes");
        found = entries.len();
        dep.run_for(secs(3));
    }
    let c = dep.client(client);
    let mut latencies: Vec<f64> = c
        .sent_at
        .keys()
        .filter_map(|id| c.latency(*id))
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for l in &latencies {
        total_latency += l;
    }
    Mds2Result {
        latency_ms: total_latency / latencies.len() as f64,
        msgs_per_sec: standing,
        found,
    }
}

struct Mds1Result {
    latency_ms: f64,
    ingest_entries_per_sec: f64,
    found: usize,
}

fn run_mds1(n: usize) -> Mds1Result {
    let mut sim: Sim<Mds1Msg> = Sim::new(23);
    let central = sim.add_node("central", Box::new(Mds1Central::new()));
    for i in 0..n {
        let host = HostSpec::linux(&format!("h{i}"), 2);
        let providers: Vec<Box<dyn InfoProvider>> = vec![
            Box::new(StaticHostProvider::new(host.clone())),
            Box::new(DynamicHostProvider::new(
                &host,
                i as u64,
                1.0,
                secs(10),
                secs(30),
            )),
        ];
        sim.add_node(
            format!("p{i}"),
            Box::new(Mds1Provider::new(
                format!("h{i}"),
                providers,
                central,
                secs(30),
            )),
        );
    }
    let client = sim.add_node("client", Box::new(Mds1Client::new()));
    sim.run_until(SimTime::ZERO + secs(10));

    let before = sim.actor::<Mds1Central>(central).unwrap().entries_ingested;
    sim.run_until(SimTime::ZERO + secs(10 + MEASURE_WINDOW));
    let after = sim.actor::<Mds1Central>(central).unwrap().entries_ingested;
    let ingest = (after - before) as f64 / MEASURE_WINDOW as f64;

    let mut latency_total = 0.0;
    let mut found = 0;
    for rep in 0..5 {
        let sent = sim.now();
        let id = sim.invoke::<Mds1Client, _>(client, |c, ctx| {
            c.query(
                ctx,
                central,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
        });
        sim.run_for(secs(3));
        let c = sim.actor::<Mds1Client>(client).unwrap();
        let (_, arrived, entries) = c
            .results
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .expect("result arrives");
        latency_total += arrived.since(sent).as_secs_f64() * 1e3;
        found = entries.len();
        let _ = rep;
    }
    Mds1Result {
        latency_ms: latency_total / 5.0,
        ingest_entries_per_sec: ingest,
        found,
    }
}

fn main() {
    banner(
        "E7",
        "query latency and standing load vs provider count",
        "§3 scalability argument; §11.1 MDS-1 comparison",
    );

    let sizes = [10usize, 25, 50, 100, 200];
    let mut table = Table::new(&[
        "N providers",
        "harvest lat (ms)",
        "chain lat (ms)",
        "mds1 lat (ms)",
        "harvest msgs/s",
        "chain msgs/s",
        "mds1 ingest entries/s",
        "found (h/c/1)",
    ]);
    for &n in &sizes {
        let harvest = run_mds2(n, GiisMode::Harvest { refresh: secs(60) });
        let chain = run_mds2(n, GiisMode::Chain { timeout: secs(5) });
        let mds1 = run_mds1(n);
        table.row(vec![
            n.to_string(),
            f2(harvest.latency_ms),
            f2(chain.latency_ms),
            f2(mds1.latency_ms),
            f2(harvest.msgs_per_sec),
            f2(chain.msgs_per_sec),
            f2(mds1.ingest_entries_per_sec),
            format!("{}/{}/{}", harvest.found, chain.found, mds1.found),
        ]);
    }
    section("results");
    table.print();
    println!(
        "\nexpected shape: harvest-mode latency is flat in N (local answer)\n\
         while chain-mode latency reflects the slowest child in an N-wide\n\
         fan-out; the MDS-1 central server's ingest load grows linearly in N\n\
         regardless of query demand — the paper's scalability objection —\n\
         while MDS-2's standing load is registration refreshes plus bounded\n\
         harvest traffic."
    );
}
