//! F4 — Figure 4: fault-tolerant registration.
//!
//! "Information providers register with aggregate directories to provide
//! user communities with listings of available resources. The redundant
//! VO-A directories converge, while the VO-B directories cannot due to
//! network partition."
//!
//! Both VOs run two replicated directories; every provider registers
//! with both replicas of its VO. We partition VO-B's replica 1 away from
//! half the providers and track the *agreement* (Jaccard index of the
//! active-registration sets) between each VO's replicas over time, then
//! heal and watch VO-B re-converge through nothing but ordinary
//! soft-state refresh.

use gis_bench::{banner, f3, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig};
use gis_gris::HostSpec;
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{secs, NodeId, SimTime};

fn jaccard(a: &[LdapUrl], b: &[LdapUrl]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<_> = a.iter().collect();
    let sb: std::collections::BTreeSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

fn main() {
    banner(
        "F4",
        "replicated directories: convergence vs divergence under partition",
        "Figure 4 (fault-tolerant registration)",
    );

    let mut dep = SimDeployment::new(99);
    let mut dirs = Vec::new(); // (vo, replica, node, url)
    for vo in ["a", "b"] {
        for replica in 0..2 {
            let url = LdapUrl::server(format!("giis.vo-{vo}{replica}"));
            let node = dep.add_giis(Giis::new(
                GiisConfig::chaining(url.clone(), Dn::root()),
                secs(10),
                secs(30),
            ));
            dirs.push((vo.to_string(), replica, node, url));
        }
    }
    let dir_urls = |vo: &str| -> Vec<LdapUrl> {
        dirs.iter()
            .filter(|(v, _, _, _)| v == vo)
            .map(|(_, _, _, u)| u.clone())
            .collect()
    };

    // 6 providers per VO; each registers with both replicas.
    let mut provider_nodes: std::collections::HashMap<String, Vec<NodeId>> = Default::default();
    for vo in ["a", "b"] {
        for i in 0..6 {
            let host = HostSpec::linux(&format!("{vo}{i}"), 2).at(gis_core::org(vo));
            let mut gris = SimDeployment::standard_host_gris(&host, i);
            gris.agent.interval = secs(10);
            gris.agent.ttl = secs(30);
            for url in dir_urls(vo) {
                gris.agent.add_target(url);
            }
            let node = dep.add_gris(gris);
            provider_nodes.entry(vo.to_string()).or_default().push(node);
        }
    }

    // Partition plan: VO-B replica 1 loses contact with providers b0..b2.
    let vo_b1_node = dirs
        .iter()
        .find(|(v, r, _, _)| v == "b" && *r == 1)
        .map(|(_, _, n, _)| *n)
        .unwrap();
    let cut_providers: Vec<NodeId> = provider_nodes["b"][..3].to_vec();

    let sample = |dep: &SimDeployment, now: SimTime| -> (f64, f64) {
        let children = |vo: &str, replica: usize| -> Vec<LdapUrl> {
            let node = dirs
                .iter()
                .find(|(v, r, _, _)| v == vo && *r == replica)
                .map(|(_, _, n, _)| *n)
                .unwrap();
            dep.giis(node).active_children(now)
        };
        (
            jaccard(&children("a", 0), &children("a", 1)),
            jaccard(&children("b", 0), &children("b", 1)),
        )
    };

    let partition_at = 30u64;
    let heal_at = 120u64;
    let mut table = Table::new(&["t (s)", "phase", "VO-A agreement", "VO-B agreement"]);
    for step in 0..=18 {
        let t = step * 10;
        let target = SimTime::ZERO + secs(t + 5);
        if dep.now() < target {
            let gap = target.since(dep.now());
            dep.run_for(gap);
        }
        if t == partition_at {
            dep.sim.partition_between(&cut_providers, &[vo_b1_node]);
        }
        if t == heal_at {
            dep.sim.heal_all();
        }
        let phase = if t < partition_at {
            "connected"
        } else if t < heal_at {
            "PARTITIONED"
        } else {
            "healed"
        };
        let (a, b) = sample(&dep, dep.now());
        table.row(vec![t.to_string(), phase.into(), f3(a), f3(b)]);
    }

    section("replica agreement (Jaccard of active registration sets)");
    table.print();
    println!(
        "\nexpected: VO-A stays at 1.000 throughout; VO-B drops to ~0.5 once the\n\
         cut providers' soft state expires at replica 1 (TTL 30s), then returns\n\
         to 1.000 within one refresh interval of healing — no repair protocol,\n\
         just the registration stream."
    );
}
