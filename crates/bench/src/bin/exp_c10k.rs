//! C10K — many held connections, few transport threads.
//!
//! The paper sizes the GIIS/GRIS architecture for "large numbers of
//! concurrent requests" across VOs, and the MDS performance literature
//! shows thread-per-connection information services falling over
//! exactly when concurrent-user counts climb. PR 8 rebuilt the TCP
//! transport on a readiness-driven reactor: a handful of shard threads
//! own every nonblocking socket, so held connections cost a table entry
//! and a decoder — not a stack.
//!
//! This experiment holds thousands of live TCP client connections
//! against one pooled GRIS (plus a chained GIIS row for the fan-out
//! path) from a **separate OS process**, sweeping connection count ×
//! active fraction. Per row it reports query completion and, sampled
//! from the server process itself, OS thread count and resident memory
//! — the two curves that stay flat where a thread-per-connection build
//! would grow by one stack per client.
//!
//! Protocol: the parent re-executes itself with `--fleet`; the child
//! opens connections in paced nonblocking waves (public
//! [`gis_core::reactor::Poller`]), keeps every socket open for the rest
//! of the run (connection growth is monotonic), and per row drives a
//! corked burst of multiplex-enveloped lookups over a strided subset of
//! connections, printing machine-parsable `ROW` lines the parent
//! annotates with `/proc/self/status` samples.
//!
//! `--smoke` shrinks the sweep for CI and *gates*: every query answered
//! and server transport threads ≤ `GIS_C10K_MAX_THREADS` (default 32 —
//! O(shards), two orders of magnitude under the connection count).
//! `--json PATH` dumps the sweep for `scripts/bench_snapshot.sh`.
//! Runners whose `RLIMIT_NOFILE` hard cap cannot hold the smallest row
//! skip with a warning (exit 0) rather than fail.

use gis_bench::{banner, f2, section, Table};
use gis_core::reactor::{connect_nonblocking, reactor_shards, take_socket_error, Poller};
use gis_core::{LiveClient, LiveRuntime, ServeOptions, SimDeployment, TcpTuning};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::SimDuration;
use gis_proto::frame::{encode_mux_frame_limited, FrameDecoder};
use gis_proto::{GripReply, GripRequest, ProtocolMessage, ResultCode, SearchSpec, MAX_FRAME};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Full sweep: connection count × fraction of connections actively
/// querying while the rest are held open (the paper's registered-but-
/// quiet GRIS population).
const SWEEP_CONNS: [usize; 3] = [2_500, 5_000, 10_000];
const SMOKE_CONNS: [usize; 2] = [500, 2_000];
const ACTIVE_FRACS: [f64; 2] = [0.01, 0.10];
const SMOKE_FRACS: [f64; 1] = [0.05];
/// Connections held against the chained GIIS (fan-out path) row.
const GIIS_CONNS: usize = 1_000;
const SMOKE_GIIS_CONNS: usize = 200;
/// Queries per active connection per row.
const QUERIES_PER_ACTIVE: usize = 20;
/// Nonblocking connect wave width — under the listener's backlog so
/// paced waves never overflow the SYN queue into 1s retransmits.
const WAVE: usize = 100;
/// fds reserved for everything that is not a fleet connection
/// (listener, reactor wakeups, stdio, persistence, slack).
const FD_SLACK: u64 = 512;
const DEFAULT_MAX_THREADS: u64 = 32;

// ---------------------------------------------------------------------
// RLIMIT_NOFILE: raw syscalls, same no-new-deps rule as the reactor.

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raise the soft fd limit to the hard cap; returns the resulting soft
/// limit (or a conservative floor when even `getrlimit` fails).
fn raise_nofile() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur < lim.max {
        let want = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return lim.max;
        }
    }
    lim.cur
}

// ---------------------------------------------------------------------
// Server-process introspection.

/// (`Threads`, `VmRSS` in MiB) of this process, from `/proc/self/status`.
fn self_threads_rss() -> (u64, f64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0.0);
    };
    let field = |name: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:") as f64 / 1024.0)
}

// ---------------------------------------------------------------------
// Fleet child: holds the connections, drives the bursts.

/// One held connection (kept nonblocking while idle).
struct Held {
    sock: TcpStream,
}

/// Grow `pool` to `target` connections against `addr`, in paced
/// nonblocking waves. Failed dials are retried; a wave that cannot
/// complete within 30s aborts the run.
fn grow_pool(pool: &mut Vec<Held>, addr: SocketAddr, target: usize) {
    let poller = Poller::new().expect("fleet poller");
    let deadline = Instant::now() + Duration::from_secs(120);
    while pool.len() < target {
        let wave = (target - pool.len()).min(WAVE);
        // token → in-flight socket for this wave.
        let mut dialing: Vec<Option<TcpStream>> = Vec::with_capacity(wave);
        for _ in 0..wave {
            match connect_nonblocking(&addr) {
                Ok((sock, true)) => pool.push(Held { sock }),
                Ok((sock, false)) => {
                    poller
                        .add(sock.as_raw_fd(), dialing.len() as u64 + 1, false, true)
                        .expect("register dial");
                    dialing.push(Some(sock));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        let mut outstanding = dialing.iter().filter(|d| d.is_some()).count();
        let mut events = Vec::new();
        while outstanding > 0 {
            assert!(
                Instant::now() < deadline,
                "fleet: connect wave stuck at {} conns",
                pool.len()
            );
            poller
                .wait(&mut events, Some(Duration::from_millis(200)))
                .expect("poller wait");
            for ev in events.drain(..) {
                let slot = (ev.token - 1) as usize;
                let Some(sock) = dialing[slot].take() else {
                    continue;
                };
                poller.delete(sock.as_raw_fd()).ok();
                outstanding -= 1;
                if take_socket_error(&sock).is_ok() {
                    pool.push(Held { sock });
                }
                // A refused/reset dial is simply retried by the next
                // wave (pool.len() still short of target).
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drive `queries` multiplex-enveloped searches down one held
/// connection as a single corked burst, then read replies until all are
/// answered (or the deadline passes). Returns answered-with-Success.
fn burst(conn: &mut Held, spec: &SearchSpec, queries: usize) -> usize {
    // The burst itself is the only traffic on this socket: blocking
    // mode is simpler and cannot stall anything else.
    conn.sock.set_nonblocking(false).expect("blocking");
    conn.sock
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut wire = bytes::BytesMut::new();
    for id in 1..=queries as u64 {
        let msg = ProtocolMessage::Request(GripRequest::Search {
            id,
            spec: spec.clone(),
        });
        encode_mux_frame_limited(id, &msg, &mut wire, MAX_FRAME).expect("encode");
    }
    if conn.sock.write_all(&wire).is_err() {
        let _ = conn.sock.set_nonblocking(true);
        return 0;
    }
    let mut dec = FrameDecoder::with_max_frame(MAX_FRAME);
    let mut chunk = [0u8; 16 * 1024];
    let mut ok = 0;
    let mut answered = 0;
    'read: while answered < queries {
        match conn.sock.read(&mut chunk) {
            Ok(0) | Err(_) => break 'read,
            Ok(n) => {
                dec.feed(&chunk[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            if let ProtocolMessage::Reply(GripReply::SearchResult {
                                code, ..
                            }) = frame.msg
                            {
                                answered += 1;
                                if code == ResultCode::Success {
                                    ok += 1;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_) => break 'read,
                    }
                }
            }
        }
    }
    let _ = conn.sock.set_nonblocking(true);
    ok
}

/// Child entry: `--fleet <gris_addr> <giis_addr> <rowspec> <queries>`.
/// Rowspec is `target:conns:frac` triples, comma-separated, `g` = GRIS,
/// `v` = GIIS; connection counts must be non-decreasing per target.
fn run_fleet(gris: SocketAddr, giis: SocketAddr, rowspec: &str, queries: usize) {
    raise_nofile();
    let gris_spec = SearchSpec::lookup(Dn::parse("hn=c10k0").expect("dn"));
    let giis_spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    let mut gris_pool: Vec<Held> = Vec::new();
    let mut giis_pool: Vec<Held> = Vec::new();
    for row in rowspec.split(',') {
        let mut parts = row.split(':');
        let target = parts.next().expect("row target");
        let conns: usize = parts.next().expect("row conns").parse().expect("conns");
        let frac: f64 = parts.next().expect("row frac").parse().expect("frac");
        let (pool, addr, spec) = if target == "v" {
            (&mut giis_pool, giis, &giis_spec)
        } else {
            (&mut gris_pool, gris, &gris_spec)
        };
        grow_pool(pool, addr, conns);
        let active = ((conns as f64 * frac).round() as usize).clamp(1, conns);
        let stride = (conns / active).max(1);
        let start = Instant::now();
        let mut ok = 0;
        for i in 0..active {
            ok += burst(&mut pool[(i * stride) % conns], spec, queries);
        }
        let secs = start.elapsed().as_secs_f64();
        // All connections stay open: the parent samples its own thread
        // and memory footprint the moment it reads this line.
        println!(
            "ROW target={target} conns={conns} active={active} ok={ok} total={} secs={secs:.3}",
            active * queries
        );
    }
    println!("DONE");
}

// ---------------------------------------------------------------------
// Parent: server runtime, child supervision, reporting.

struct RowResult {
    target: String,
    conns: usize,
    active: usize,
    ok: usize,
    total: usize,
    secs: f64,
    threads: u64,
    rss_mb: f64,
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .unwrap()
        .port()
}

/// Chaining GIIS + one registered static GRIS, both pooled, both on TCP
/// with connection slots sized for the sweep.
fn build_topology(fd_budget: usize) -> (LiveRuntime, LdapUrl, LdapUrl) {
    let tuning = TcpTuning {
        max_conns: fd_budget,
        mux_depth: 64,
        ..TcpTuning::default()
    };
    let opts = ServeOptions::tcp().with_workers(2).with_tuning(tuning);
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let vo = LdapUrl::tcp("127.0.0.1", free_port());
    let mut giis = Giis::new(
        GiisConfig::chaining(vo.clone(), Dn::root()),
        SimDuration::from_millis(500),
        SimDuration::from_secs(30),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(2_000),
    };
    rt.spawn_giis(giis, opts.clone()).expect("spawn giis");

    let host = gis_gris::HostSpec::linux("c10k0", 2);
    let mut gris = SimDeployment::standard_host_gris(&host, 0);
    gris.config.url = LdapUrl::tcp("127.0.0.1", free_port());
    gris.agent.service_url = gris.config.url.clone();
    gris.agent.add_target(vo.clone());
    gris.agent.interval = SimDuration::from_millis(500);
    gris.agent.ttl = SimDuration::from_secs(30);
    let gris_url = gris.config.url.clone();
    rt.spawn_gris(gris, opts).expect("spawn gris");
    (rt, gris_url, vo)
}

/// Block until the GRIS has registered into the GIIS (chained searches
/// would otherwise race the first soft-state refresh).
fn await_registration(vo: &LdapUrl) {
    let mut client = LiveClient::builder(vo).connect().expect("connect giis");
    let spec = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=computer)").expect("filter"),
    );
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let outcome = client
            .request(vo, spec.clone())
            .timeout(Duration::from_secs(2))
            .send()
            .outcome;
        if let Some((ResultCode::Success, entries, _)) = &outcome {
            if !entries.is_empty() {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "GRIS never registered into the GIIS; last outcome: {outcome:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn write_json(path: &str, rows: &[RowResult], queries: usize, shards: usize) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"queries_per_active\": {queries},\n"));
    body.push_str(&format!("  \"reactor_shards\": {shards},\n"));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"target\": \"{}\", \"conns\": {}, \"active\": {}, \"ok\": {}, \
             \"total\": {}, \"secs\": {:.3}, \"server_threads\": {}, \
             \"server_rss_mb\": {:.1}}}{}\n",
            r.target,
            r.conns,
            r.active,
            r.ok,
            r.total,
            r.secs,
            r.threads,
            r.rss_mb,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    let max_complete = rows
        .iter()
        .filter(|r| r.target == "gris" && r.ok == r.total)
        .map(|r| r.conns)
        .max()
        .unwrap_or(0);
    let threads_at_max = rows
        .iter()
        .filter(|r| r.target == "gris" && r.conns == max_complete)
        .map(|r| r.threads)
        .max()
        .unwrap_or(0);
    let rss_at_max = rows
        .iter()
        .filter(|r| r.target == "gris" && r.conns == max_complete)
        .map(|r| r.rss_mb)
        .fold(0.0f64, f64::max);
    body.push_str(&format!(
        "  ],\n  \"derived\": {{\"c10k_max_conns\": {max_complete}, \
         \"threads_at_10k\": {threads_at_max}, \"rss_mb_at_max\": {rss_at_max:.1}}}\n}}\n"
    ));
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--fleet") {
        let i = args.iter().position(|a| a == "--fleet").unwrap();
        let gris: SocketAddr = args[i + 1].parse().expect("gris addr");
        let giis: SocketAddr = args[i + 2].parse().expect("giis addr");
        let queries: usize = args[i + 4].parse().expect("queries");
        run_fleet(gris, giis, &args[i + 3], queries);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    banner(
        "C10K",
        "thousands of held connections, O(shards) transport threads",
        "a reactor shard owns sockets by the thousand; a thread-per-connection build owns one stack each",
    );

    // fd budget: the *server* process holds one fd per fleet connection
    // (plus chained-GIIS internals); the child holds the same count.
    // Both raise their soft limit to the hard cap.
    let limit = raise_nofile();
    let budget = limit.saturating_sub(FD_SLACK) as usize;
    let (conn_steps, fracs, giis_conns, queries) = if smoke {
        (
            SMOKE_CONNS.to_vec(),
            SMOKE_FRACS.to_vec(),
            SMOKE_GIIS_CONNS,
            QUERIES_PER_ACTIVE / 2,
        )
    } else {
        (
            SWEEP_CONNS.to_vec(),
            ACTIVE_FRACS.to_vec(),
            GIIS_CONNS,
            QUERIES_PER_ACTIVE,
        )
    };
    let conn_steps: Vec<usize> = conn_steps
        .into_iter()
        .filter(|&c| c + giis_conns <= budget)
        .collect();
    if conn_steps.is_empty() {
        println!(
            "warning: RLIMIT_NOFILE cap {limit} cannot hold the smallest sweep row; \
             skipping (raise the hard limit to run exp_c10k)"
        );
        return;
    }
    let max_conns = *conn_steps.last().unwrap();
    println!(
        "sweep: {conn_steps:?} conns x active fraction {fracs:?} against a pooled\n\
         GRIS, plus {giis_conns} conns against a chaining GIIS; {queries} queries\n\
         per active conn; fd soft limit {limit}. connections live in a separate\n\
         OS process and stay open for the whole run.\n"
    );

    let (rt, gris_url, vo) = build_topology(max_conns + giis_conns + FD_SLACK as usize / 2);
    await_registration(&vo);
    let (threads0, rss0) = self_threads_rss();
    println!("server at rest: {threads0} threads, {rss0:.1} MiB RSS\n");

    let mut rowspec = Vec::new();
    for &conns in &conn_steps {
        for &frac in &fracs {
            rowspec.push(format!("g:{conns}:{frac}"));
        }
    }
    rowspec.push(format!("v:{giis_conns}:0.02"));
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .args([
            "--fleet",
            &format!("127.0.0.1:{}", gris_url.port),
            &format!("127.0.0.1:{}", vo.port),
            &rowspec.join(","),
            &queries.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn fleet child");

    let mut rows: Vec<RowResult> = Vec::new();
    let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    for line in stdout.lines() {
        let line = line.expect("child line");
        let Some(rest) = line.strip_prefix("ROW ") else {
            continue;
        };
        let field = |name: &str| -> String {
            rest.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
                .unwrap_or("0")
                .to_string()
        };
        // The child's connections are all still open right now — this
        // sample *is* the held-connection footprint.
        let (threads, rss_mb) = self_threads_rss();
        rows.push(RowResult {
            target: if field("target") == "v" {
                "giis"
            } else {
                "gris"
            }
            .to_string(),
            conns: field("conns").parse().unwrap_or(0),
            active: field("active").parse().unwrap_or(0),
            ok: field("ok").parse().unwrap_or(0),
            total: field("total").parse().unwrap_or(0),
            secs: field("secs").parse().unwrap_or(0.0),
            threads,
            rss_mb,
        });
    }
    let status = child.wait().expect("child exit");
    assert!(status.success(), "fleet child failed: {status:?}");
    rt.shutdown();

    section("results: held connections vs server footprint");
    let mut table = Table::new(&[
        "target",
        "conns held",
        "active",
        "queries ok",
        "q/s",
        "srv threads",
        "srv RSS (MiB)",
    ]);
    for r in &rows {
        table.row(vec![
            r.target.clone(),
            r.conns.to_string(),
            r.active.to_string(),
            format!("{}/{}", r.ok, r.total),
            f2(if r.secs > 0.0 {
                r.ok as f64 / r.secs
            } else {
                0.0
            }),
            r.threads.to_string(),
            f2(r.rss_mb),
        ]);
    }
    table.print();
    let shards = reactor_shards();
    println!(
        "\nthe thread column is the whole story: {shards} reactor shard(s) own\n\
         every socket, so it does not move as held connections grow — the\n\
         thread-per-connection build this replaced would add one row's worth\n\
         of stacks per row."
    );

    if let Some(path) = &json_path {
        write_json(path, &rows, queries, shards);
        println!("\njson written to {path}");
    }

    if smoke {
        let incomplete: Vec<String> = rows
            .iter()
            .filter(|r| r.ok != r.total)
            .map(|r| format!("{} conns={}: {}/{}", r.target, r.conns, r.ok, r.total))
            .collect();
        assert!(
            incomplete.is_empty(),
            "c10k smoke: queries went unanswered: {incomplete:?}"
        );
        let ceiling: u64 = std::env::var("GIS_C10K_MAX_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_THREADS);
        let peak = rows.iter().map(|r| r.threads).max().unwrap_or(0);
        assert!(
            peak <= ceiling,
            "c10k smoke: server reached {peak} threads while holding connections, \
             above the {ceiling} ceiling — transport threads must be O(shards)"
        );
        println!("\nsmoke gate: all queries complete; peak server threads {peak} <= {ceiling}");
    }
}
