//! E10 — §7: the four provider/directory trust models.
//!
//! 1. **Trusted directory** — providers "respond to any authenticated
//!    query from the directory, which it trusts to apply its policy";
//! 2. **Attribute-restricted** — "provider policy may make operating
//!    system type known to a directory, but demand that load averages can
//!    only be given to specific users", forcing the two-phase query;
//! 3. **Existence only** — "the directory can only enumerate the known
//!    resources";
//! 4. **Open** — "no restriction ... authenticated queries are not
//!    required."
//!
//! For each model we deploy 4 hosts behind a harvesting (or name-serving)
//! GIIS, then measure what an authorized user can learn *through the
//! directory* versus how many direct, re-authenticated provider queries
//! they must issue to get the complete picture (and the total message
//! cost of doing so).

use gis_bench::{banner, section, Table};
use gis_core::{ClientActor, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::HostSpec;
use gis_gsi::{Acl, BindToken, CertAuthority, Grant, Principal, SecurityPolicy, TrustStore};
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, NodeId};
use gis_proto::{GripRequest, SearchSpec};

const N_HOSTS: usize = 4;
const ALICE: &str = "/O=Grid/CN=alice";
const DIR_SUBJECT: &str = "/O=Grid/CN=giis.vo";

#[derive(Clone, Copy, PartialEq)]
enum Model {
    Trusted,
    AttrRestricted,
    ExistenceOnly,
    Open,
}

struct Outcome {
    dir_visible_attrs: usize,
    loads_via_directory: usize,
    direct_queries: usize,
    loads_total: usize,
    messages: u64,
}

fn run(model: Model) -> Outcome {
    let ca = CertAuthority::new("/O=Grid/CN=CA", 55);
    let alice = ca.issue(ALICE);
    let dir_cred = ca.issue(DIR_SUBJECT);

    let mut dep = SimDeployment::new(5);
    let vo_url = LdapUrl::server("giis.vo");
    let mut config = GiisConfig::chaining(vo_url.clone(), Dn::root());
    config.mode = match model {
        Model::ExistenceOnly => GiisMode::Name,
        _ => GiisMode::Harvest { refresh: secs(60) },
    };
    if model == Model::Trusted {
        config.security = SecurityPolicy::anonymous().with_credential(dir_cred);
    }
    dep.add_giis(Giis::new(config, secs(30), secs(90)));

    let mut gris_urls = Vec::new();
    let mut host_dns = Vec::new();
    for i in 0..N_HOSTS {
        let host = HostSpec::linux(&format!("h{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i as u64);
        gris.agent.add_target(vo_url.clone());
        let url = gris.config.url.clone();
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        gris.config.security = SecurityPolicy::authenticated(ca.issue(url.to_string()), trust);
        let acl = match model {
            Model::Open => Acl::public(),
            Model::Trusted => Acl::default()
                .with_rule(Principal::Subject(DIR_SUBJECT.into()), Grant::All)
                .with_rule(Principal::Subject(ALICE.into()), Grant::All),
            Model::AttrRestricted => Acl::default()
                .with_rule(
                    Principal::Anonymous,
                    Grant::Attrs(vec![
                        "objectclass".into(),
                        "hn".into(),
                        "system".into(),
                        "arch".into(),
                        "cpucount".into(),
                        "perf".into(),
                        "queue".into(),
                        "store".into(),
                        "path".into(),
                        "url".into(),
                    ]),
                )
                .with_rule(Principal::Subject(ALICE.into()), Grant::All),
            Model::ExistenceOnly => Acl::default()
                .with_rule(Principal::Anonymous, Grant::ExistenceOnly)
                .with_rule(Principal::Subject(ALICE.into()), Grant::All),
        };
        gris.config.security.policy_map.set(host.dn(), acl);
        host_dns.push(host.dn());
        gris_urls.push(url.clone());
        dep.add_gris(gris);
    }
    let client = dep.add_client("alice");
    dep.run_for(secs(5)); // registrations + harvests (incl. directory bind)

    let msg_start = dep.sim.metrics().sent;

    // Phase 1: what does the directory reveal about computers?
    let (_, computers, referrals) = dep
        .search_and_wait(
            client,
            &vo_url,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            secs(10),
        )
        .expect("directory answers");
    let dir_visible_attrs = computers.first().map(|e| e.attr_count()).unwrap_or(0);

    // Phase 1b: are load averages available through the directory?
    let (_, loads, _) = dep
        .search_and_wait(
            client,
            &vo_url,
            SearchSpec::subtree(Dn::root(), Filter::parse("(load5=*)").unwrap()),
            secs(10),
        )
        .expect("directory answers");
    let loads_via_directory = loads.len();

    // Phase 2: for anything missing, bind to each provider and ask
    // directly (using referrals when the directory gave them).
    let mut direct_queries = 0usize;
    let mut loads_total = loads_via_directory;
    if loads_via_directory < N_HOSTS {
        let targets: Vec<LdapUrl> = if referrals.is_empty() {
            gris_urls.clone()
        } else {
            referrals.clone()
        };
        for (i, target) in targets.iter().enumerate() {
            let token = BindToken::create(&alice, &target.to_string()).to_bytes();
            bind(&mut dep, client, target, token);
            let (_, es, _) = dep
                .search_and_wait(
                    client,
                    target,
                    SearchSpec::subtree(
                        host_dns.get(i).cloned().unwrap_or_else(Dn::root),
                        Filter::parse("(load5=*)").unwrap(),
                    ),
                    secs(10),
                )
                .expect("provider answers");
            direct_queries += 1;
            loads_total += es.iter().filter(|e| e.has("load5")).count();
        }
    }

    Outcome {
        dir_visible_attrs,
        loads_via_directory,
        direct_queries,
        loads_total,
        messages: dep.sim.metrics().sent - msg_start,
    }
}

fn bind(dep: &mut SimDeployment, client: NodeId, target: &LdapUrl, token: Vec<u8>) {
    dep.sim.invoke::<ClientActor, _>(client, |c, ctx| {
        c.request(ctx, target, |id| GripRequest::Bind {
            id,
            subject: ALICE.into(),
            token,
        })
    });
    dep.run_for(secs(1));
}

fn main() {
    banner(
        "E10",
        "information flow under the four provider/directory trust models",
        "§7 (security) and §10.4 (referrals in the absence of delegation)",
    );
    println!("4 hosts; authorized user alice wants every host's load average.\n");

    let mut table = Table::new(&[
        "model",
        "host attrs via dir",
        "loads via dir",
        "direct queries",
        "loads obtained",
        "msgs",
    ]);
    for (name, model) in [
        ("open", Model::Open),
        ("trusted directory", Model::Trusted),
        ("attribute-restricted", Model::AttrRestricted),
        ("existence-only", Model::ExistenceOnly),
    ] {
        let o = run(model);
        table.row(vec![
            name.into(),
            o.dir_visible_attrs.to_string(),
            o.loads_via_directory.to_string(),
            o.direct_queries.to_string(),
            format!("{}/{}", o.loads_total, N_HOSTS),
            o.messages.to_string(),
        ]);
    }
    section("results");
    table.print();
    println!(
        "\nexpected shape: open and trusted-directory answer everything through\n\
         the directory (trusted costs one extra bind per child at harvest);\n\
         attribute-restricted reveals static attributes centrally but forces\n\
         {N_HOSTS} re-authenticated direct queries for loads (the paper's RedHat/load\n\
         example); existence-only degrades the directory to enumeration +\n\
         referrals, pushing all information transfer to direct queries."
    );
}
