//! Persistence — crash, recover, serve.
//!
//! PR 7's durability claim: a GRIS/GIIS killed at *any* instant comes
//! back serving exactly the state its journal made durable, with every
//! soft-state clock intact — and recovering from a snapshot is orders
//! of magnitude cheaper than the alternative the paper's architecture
//! would otherwise fall back on (wait out a re-registration storm and
//! re-harvest every child). Four sections:
//!
//! 1. **kill matrix** — a fixed mutation sequence is crashed at every
//!    seeded kill point at every position (via the in-memory storage
//!    model, which drops unsynced bytes on crash exactly like a kernel
//!    would); each recovery must equal a replay of the durable prefix.
//! 2. **live crash → recover → serve** — a harvesting GIIS over real
//!    threads, journaling to a real directory; both it and its child
//!    are killed, the GIIS respawns alone from the journal and must
//!    serve the pre-crash rows (the child stays dead, so the journal is
//!    the only possible source).
//! 3. **recovery vs re-registration storm** — the same directory state
//!    rebuilt two ways: replayed from the journal vs re-observed one
//!    registration + harvest at a time (the cold-start path, *without*
//!    charging the storm its network round-trips or registration
//!    interval waits, so the baseline is flattered).
//! 4. **restart budget** — snapshot-load and WAL-replay wall times at
//!    size ([`FULL_ENTRIES`] entries full, [`SMOKE_ENTRIES`] smoke).
//!    The paper-scale target is a million-entry DIT back in service in
//!    under [`FULL_TARGET_S`] second(s) — reachable via the parallel
//!    chunk decode + bulk index build on a multi-core host, and
//!    reported honestly either way; the hard assert is a looser
//!    regression ceiling so a loaded single-core CI box does not flake.
//!
//! `--json PATH` dumps timings for `scripts/bench_snapshot.sh`;
//! `--smoke` shrinks the sizes for CI.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveClient, LiveRuntime, ServeOptions};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::HostSpec;
use gis_ldap::{Dn, Entry, Filter, LdapUrl, SharedDit};
use gis_netsim::{secs, SimTime};
use gis_proto::{GrrpMessage, SearchSpec};
use gis_store::{
    encode_snapshot, snap_name, CrashPlan, DurableDit, FsyncPolicy, Journal, JournalOptions,
    MemStorage, RecoveredState, SnapshotContent, Storage, StoreError, WalOp, ALL_KILL_POINTS,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FULL_ENTRIES: usize = 1_000_000;
const SMOKE_ENTRIES: usize = 50_000;
const FULL_WAL: usize = 20_000;
const SMOKE_WAL: usize = 2_000;
/// Paper-scale restart target (seconds): a million-entry DIT back in
/// service from its snapshot. Reported against the measured time; on a
/// multi-core host the parallel chunk decode and index builds are what
/// make it reachable.
const FULL_TARGET_S: f64 = 1.0;
/// Hard assert ceilings (seconds). These are regression guards, not the
/// claim: they carry enough headroom that a loaded single-core CI host
/// does not flake, while an accidental return to per-entry index
/// maintenance (an order of magnitude slower) still trips them.
const FULL_LOAD_CEILING_S: f64 = 30.0;
const SMOKE_LOAD_CEILING_S: f64 = 2.0;
/// Children in the storm comparison (each contributes 4 entries).
const STORM_CHILDREN: usize = 200;
const SMOKE_STORM_CHILDREN: usize = 40;

fn entry(i: usize) -> Entry {
    Entry::at(&format!("hn=host{i}"))
        .expect("dn")
        .with_class("computer")
        .with("system", "linux")
        .with("slot", i as f64)
}

/// A small mutation script exercising every WalOp the engines emit.
fn script() -> Vec<WalOp> {
    let mut ops = Vec::new();
    for i in 0..4usize {
        let url = LdapUrl::server(format!("gris{i}"));
        let ns = Dn::parse(&format!("hn=host{i}")).expect("dn");
        let now = SimTime::ZERO + secs(i as u64);
        ops.push(WalOp::Observe {
            msg: GrrpMessage::register(url.clone(), ns, now, secs(30)),
            now,
        });
        ops.push(WalOp::Harvest {
            child: url,
            entries: vec![entry(i)],
            now,
        });
    }
    ops.push(WalOp::Delete(Dn::parse("hn=host0").expect("dn")));
    ops.push(WalOp::Sweep {
        now: SimTime::ZERO + secs(40),
    });
    ops
}

/// What survives in a recovered store, reduced to comparable numbers.
fn shape(dit_len: usize, regs: usize, groups: usize) -> (usize, usize, usize) {
    (dit_len, regs, groups)
}

fn durable_shape(d: &DurableDit) -> (usize, usize, usize) {
    shape(d.shared().len(), d.registry().len(), d.groups().len())
}

/// Replay the durable prefix through the pure recovery code: the
/// oracle's expected answer.
fn expected_shape(ops: &[WalOp]) -> (usize, usize, usize) {
    let mut state = RecoveredState::empty();
    for op in ops {
        state.apply(op);
    }
    shape(state.dit.len(), state.registry.len(), state.groups.len())
}

/// Crash a scripted run at (`point`, `at_op`), recover, compare against
/// the durable prefix. Returns the verified case count (1) or panics.
fn kill_case(ops: &[WalOp], plan: CrashPlan) -> usize {
    let storage = Arc::new(MemStorage::new());
    let opts = JournalOptions {
        snapshot_every: 3,
        crash: Some(plan),
        ..JournalOptions::default()
    };
    let (mut d, _) = DurableDit::open(storage.clone(), opts, SimTime::ZERO);
    let mut durable = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match d.apply(op) {
            Ok(()) => durable = i + 1,
            Err(StoreError::Crashed { durable: kept }) => {
                if kept {
                    durable = i + 1;
                }
                break;
            }
            Err(e) => panic!("unexpected storage error: {e:?}"),
        }
    }
    drop(d);
    storage.crash();
    let (recovered, _) = DurableDit::open(storage, JournalOptions::default(), SimTime::ZERO);
    assert_eq!(
        durable_shape(&recovered),
        expected_shape(&ops[..durable]),
        "recovery diverged from durable prefix at {plan:?}"
    );
    1
}

fn run_kill_matrix(table: &mut Table) -> usize {
    let ops = script();
    let mut cases = 0;
    for point in ALL_KILL_POINTS {
        for at in 1..=ops.len() as u64 {
            for torn in [0usize, 5] {
                cases += kill_case(&ops, CrashPlan::at(at, point).keeping(torn));
            }
        }
    }
    table.row(vec![
        "kill matrix".into(),
        format!(
            "{} kill points x {} positions x 2 tears",
            ALL_KILL_POINTS.len(),
            ops.len()
        ),
        format!("{cases} recoveries == durable prefix"),
    ]);
    cases
}

/// Live section: harvesting GIIS journaling to `dir`; returns
/// (rows served pre-crash, recovery-to-first-answer wall time).
fn run_live_crash(dir: &std::path::Path) -> (usize, Duration) {
    let _ = std::fs::remove_dir_all(dir);
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let giis_url = LdapUrl::server("giis.persist");
    let harvest_giis = || {
        let mut giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            gis_netsim::SimDuration::from_millis(100),
            secs(120),
        );
        giis.config.mode = GiisMode::Harvest { refresh: secs(120) };
        giis
    };
    rt.spawn_giis(harvest_giis(), ServeOptions::default().persist(dir))
        .expect("spawn giis");
    let host = HostSpec::linux("phost", 2);
    let mut gris = gis_core::SimDeployment::standard_host_gris(&host, 7);
    gris.agent.interval = gis_netsim::SimDuration::from_millis(100);
    gris.agent.ttl = secs(120);
    gris.agent.add_target(giis_url.clone());
    let gris_url = gris.config.url.clone();
    rt.spawn_gris(gris, ServeOptions::default())
        .expect("spawn gris");

    let mut client = rt.client();
    let spec = SearchSpec::subtree(Dn::root(), Filter::always());
    let query = |client: &mut LiveClient| {
        client
            .request(&giis_url, spec.clone())
            .timeout(Duration::from_secs(5))
            .send()
            .outcome
    };
    // Wait for registration + harvest to land.
    let deadline = Instant::now() + Duration::from_secs(10);
    let before = loop {
        if let Some((_, entries, _)) = query(&mut client) {
            if !entries.is_empty() {
                break entries.len();
            }
        }
        assert!(Instant::now() < deadline, "harvest never converged");
        std::thread::sleep(Duration::from_millis(50));
    };

    // Kill child and directory; respawn the directory alone.
    rt.kill_service(&gris_url);
    rt.kill_service(&giis_url);
    std::thread::sleep(Duration::from_millis(200));
    let t0 = Instant::now();
    rt.spawn_giis(harvest_giis(), ServeOptions::default().persist(dir))
        .expect("respawn giis");
    let (_, after, _) = query(&mut client).expect("recovered directory answers");
    let recover = t0.elapsed();
    assert_eq!(after.len(), before, "recovered rows != pre-crash rows");
    rt.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    (before, recover)
}

/// Register every child with `giis` and answer its harvest query (the
/// engine mints an outbound request id per harvest; the reply must
/// carry it back).
fn feed(giis: &mut Giis, msgs: &[(LdapUrl, GrrpMessage, Vec<Entry>)]) {
    for (url, msg, rows) in msgs {
        let actions = giis.handle_grrp(msg.clone(), SimTime::ZERO);
        for action in actions {
            let gis_giis::GiisAction::SendRequest { request, .. } = action else {
                continue;
            };
            giis.handle_reply(
                url,
                gis_proto::GripReply::SearchResult {
                    id: request.id(),
                    code: gis_proto::ResultCode::Success,
                    entries: rows.clone(),
                    referrals: vec![],
                },
                SimTime::ZERO,
            );
        }
    }
}

/// Storm section: rebuild `children` registrations + harvests through a
/// fresh engine (cold-start work, zero network charged) vs recover the
/// same state from a journal.
fn run_storm(children: usize) -> (Duration, Duration) {
    let msgs: Vec<(LdapUrl, GrrpMessage, Vec<Entry>)> = (0..children)
        .map(|i| {
            let url = LdapUrl::server(format!("gris{i}"));
            let ns = Dn::parse(&format!("hn=host{i}")).expect("dn");
            let rows = vec![
                entry(i),
                Entry::at(&format!("perf=load, hn=host{i}"))
                    .expect("dn")
                    .with_class("perf")
                    .with("load5", 0.5f64),
                Entry::at(&format!("fs=scratch, hn=host{i}"))
                    .expect("dn")
                    .with_class("fs")
                    .with("free", 1000.0 + i as f64),
                Entry::at(&format!("queue=default, hn=host{i}"))
                    .expect("dn")
                    .with_class("queue")
                    .with("depth", i as f64),
            ];
            (
                url.clone(),
                GrrpMessage::register(url, ns, SimTime::ZERO, secs(300)),
                rows,
            )
        })
        .collect();

    // Baseline: every child re-registers and is re-harvested.
    let mut cold = Giis::new(
        GiisConfig::chaining(LdapUrl::server("giis.cold"), Dn::root()),
        secs(30),
        secs(300),
    );
    cold.config.mode = GiisMode::Harvest { refresh: secs(300) };
    let t0 = Instant::now();
    feed(&mut cold, &msgs);
    let storm = t0.elapsed();
    assert_eq!(cold.cached_entries(), children * 4);

    // Journal path: the same state recovered from disk.
    let dir = std::env::temp_dir().join(format!("gis-exp-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let storage: Arc<dyn Storage> =
            Arc::new(gis_store::FileStorage::open(&dir).expect("open store"));
        let mut warm = Giis::new(
            GiisConfig::chaining(LdapUrl::server("giis.warm"), Dn::root()),
            secs(30),
            secs(300),
        );
        warm.config.mode = GiisMode::Harvest { refresh: secs(300) };
        warm.set_persistence(storage, JournalOptions::default(), SimTime::ZERO);
        feed(&mut warm, &msgs);
        assert_eq!(warm.cached_entries(), children * 4);
    }
    let storage: Arc<dyn Storage> =
        Arc::new(gis_store::FileStorage::open(&dir).expect("reopen store"));
    let mut recovered = Giis::new(
        GiisConfig::chaining(LdapUrl::server("giis.warm"), Dn::root()),
        secs(30),
        secs(300),
    );
    recovered.config.mode = GiisMode::Harvest { refresh: secs(300) };
    let t0 = Instant::now();
    recovered.set_persistence(storage, JournalOptions::default(), SimTime::ZERO + secs(1));
    let recover = t0.elapsed();
    assert_eq!(recovered.cached_entries(), children * 4);
    let _ = std::fs::remove_dir_all(&dir);
    (storm, recover)
}

/// Restart-budget section: build a snapshot of `n` entries plus a
/// `wal_n`-record tail on real files, then time a cold open.
fn run_restart(n: usize, wal_n: usize) -> (f64, f64, f64) {
    let dir = std::env::temp_dir().join(format!("gis-exp-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage: Arc<dyn Storage> =
        Arc::new(gis_store::FileStorage::open(&dir).expect("open store"));

    // Snapshot written directly through the codec (building it through
    // one WAL append per entry would measure the builder, not restart).
    let entries: Vec<Entry> = (0..n).map(entry).collect();
    let t0 = Instant::now();
    let mut it = entries.iter();
    let image = encode_snapshot(
        1,
        SnapshotContent {
            regs: Vec::new(),
            groups: Vec::new(),
            targets: Vec::new(),
            entries: &mut it,
        },
    );
    storage
        .write_atomic(&snap_name(1), &image)
        .expect("write snapshot");
    let write_s = t0.elapsed().as_secs_f64();
    // Release the builder's copies before timing: a restarting process
    // holds neither, and keeping them alive distorts allocator behaviour
    // during the measured load.
    drop(image);
    drop(entries);

    // Timed cold load of the snapshot alone.
    let t0 = Instant::now();
    let (_, state, report) = Journal::open(
        Arc::clone(&storage),
        JournalOptions::default(),
        SimTime::ZERO,
    );
    let load_s = t0.elapsed().as_secs_f64();
    assert_eq!(state.dit.len(), n, "snapshot load lost entries");
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    // Prove the loaded tree is servable, not just counted.
    let shared = SharedDit::from_dit(state.dit);
    assert!(shared.len() == n);

    // WAL tail: `wal_n` upserts appended without fsync (building), then
    // a timed replay-from-scratch on a fresh directory.
    let wal_dir = std::env::temp_dir().join(format!("gis-exp-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    {
        let ws: Arc<dyn Storage> =
            Arc::new(gis_store::FileStorage::open(&wal_dir).expect("open wal store"));
        let opts = JournalOptions {
            fsync: FsyncPolicy::Never,
            ..JournalOptions::default()
        };
        let (mut j, _, _) = Journal::open(ws, opts, SimTime::ZERO);
        for i in 0..wal_n {
            j.log(&WalOp::Upsert(entry(i))).expect("append");
        }
    }
    let ws: Arc<dyn Storage> =
        Arc::new(gis_store::FileStorage::open(&wal_dir).expect("reopen wal store"));
    let t0 = Instant::now();
    let (_, state, _) = Journal::open(ws, JournalOptions::default(), SimTime::ZERO);
    let replay_s = t0.elapsed().as_secs_f64();
    assert_eq!(state.dit.len(), wal_n, "wal replay lost entries");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
    (write_s, load_s, replay_s)
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    n: usize,
    wal_n: usize,
    write_s: f64,
    load_s: f64,
    replay_s: f64,
    storm_ms: f64,
    recover_ms: f64,
    live_recover_ms: f64,
    kill_cases: usize,
) {
    let body = format!(
        "{{\n  \"entries\": {n},\n  \"snapshot_write_s\": {write_s:.4},\n  \
         \"snapshot_load_s\": {load_s:.4},\n  \"wal_records\": {wal_n},\n  \
         \"wal_replay_s\": {replay_s:.4},\n  \"storm_rebuild_ms\": {storm_ms:.2},\n  \
         \"journal_recover_ms\": {recover_ms:.2},\n  \
         \"live_recover_to_serve_ms\": {live_recover_ms:.2},\n  \
         \"kill_matrix_cases\": {kill_cases}\n}}\n"
    );
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (n, wal_n, storm_n, ceiling) = if smoke {
        (
            SMOKE_ENTRIES,
            SMOKE_WAL,
            SMOKE_STORM_CHILDREN,
            SMOKE_LOAD_CEILING_S,
        )
    } else {
        (FULL_ENTRIES, FULL_WAL, STORM_CHILDREN, FULL_LOAD_CEILING_S)
    };

    banner(
        "PERSIST",
        "durable DIT: crash, recover, serve",
        "soft state survives restarts with its clocks intact (PR 7)",
    );

    let mut table = Table::new(&["section", "setup", "result"]);

    section("1. kill matrix (in-memory storage model, every kill point)");
    let kill_cases = run_kill_matrix(&mut table);

    section("2. live crash -> recover -> serve (real threads, real files)");
    let dir = std::env::temp_dir().join(format!("gis-exp-live-{}", std::process::id()));
    let (rows, live_recover) = run_live_crash(&dir);
    table.row(vec![
        "live recovery".into(),
        format!("{rows} harvested rows, child left dead"),
        format!(
            "served in {} ms after respawn",
            f2(live_recover.as_secs_f64() * 1e3)
        ),
    ]);

    section("3. journal recovery vs re-registration storm");
    let (storm, recover) = run_storm(storm_n);
    table.row(vec![
        "storm baseline".into(),
        format!("{storm_n} children x 4 rows, zero network charged"),
        format!("{} ms", f2(storm.as_secs_f64() * 1e3)),
    ]);
    table.row(vec![
        "journal recovery".into(),
        format!("same state from snapshot+WAL"),
        format!("{} ms", f2(recover.as_secs_f64() * 1e3)),
    ]);

    section("4. restart budget (snapshot load + WAL replay)");
    let (write_s, load_s, replay_s) = run_restart(n, wal_n);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    table.row(vec![
        "snapshot write".into(),
        format!("{n} entries"),
        format!("{} s", f2(write_s)),
    ]);
    table.row(vec![
        "snapshot load".into(),
        format!("{n} entries, {cores} core(s), ceiling {} s", f2(ceiling)),
        format!("{} s", f2(load_s)),
    ]);
    if !smoke {
        let met = if load_s < FULL_TARGET_S {
            "met"
        } else {
            "missed"
        };
        table.row(vec![
            "paper-scale target".into(),
            format!("< {} s for {n} entries", f2(FULL_TARGET_S)),
            format!("{met} ({} s on {cores} core(s))", f2(load_s)),
        ]);
    }
    table.row(vec![
        "wal replay".into(),
        format!("{wal_n} records"),
        format!("{} s", f2(replay_s)),
    ]);
    assert!(
        load_s < ceiling,
        "snapshot load {load_s:.3}s blew the {ceiling}s regression ceiling"
    );

    section("results");
    table.print();
    println!(
        "\nexpected shape: every kill-matrix recovery equals its durable\n\
         prefix; the recovered directory serves without any live child;\n\
         journal recovery beats even a zero-network re-registration storm,\n\
         and a {n}-entry snapshot loads within the {ceiling}s regression\n\
         ceiling (paper-scale target: {} s on a multi-core host).",
        f2(FULL_TARGET_S)
    );

    if let Some(path) = json_path {
        write_json(
            &path,
            n,
            wal_n,
            write_s,
            load_s,
            replay_s,
            storm.as_secs_f64() * 1e3,
            recover.as_secs_f64() * 1e3,
            live_recover.as_secs_f64() * 1e3,
            kill_cases,
        );
        println!("\njson written to {path}");
    }
}
