//! TCP SATURATION — connections × in-flight depth on the multiplexed wire.
//!
//! PR 6 replaced the one-shot pooled TCP pump with a multiplexed,
//! pipelined persistent-connection transport: every frame carries a
//! correlation id, one connection holds many GRIP exchanges in flight,
//! and replies match out of order. This experiment measures what that
//! buys, in two campaigns against one GRIS:
//!
//! * **loopback** — sweep client connections × pipelining depth
//!   ([`LiveClient::search_pipelined`]) on raw `127.0.0.1`. A
//!   channel-transport baseline (same engine, zero serialization) turns
//!   each row into a *wire tax*: kernel loopback + framing cost as a
//!   multiple of the in-process floor. On one machine the round trip is
//!   microseconds, so this isolates the syscall/framing overhead that
//!   coalescing amortizes.
//! * **emulated WAN** — the same single connection routed through an
//!   in-process netem-style relay that delays every chunk by a fixed
//!   one-way latency. This is the regime the paper's VO hierarchies
//!   live in (GRIS and GIIS on different sites): at depth 1 every query
//!   pays the full round trip; at depth 8 the coalesced burst of small
//!   GRIP frames crosses the link in one segment and the round trip is
//!   paid once per batch. The depth-8 : depth-1 ratio is the headline
//!   `mux_speedup_depth8` figure.
//!
//! `--json PATH` dumps both campaigns for `scripts/bench_snapshot.sh`;
//! `--smoke` shrinks the sweep for CI and *gates*: every query must
//! complete, the best single-connection loopback wire tax must stay
//! under `GIS_SAT_TAX_CEILING` (default 2.2), and the WAN speedup at
//! depth 8 must stay above `GIS_SAT_MIN_SPEEDUP` (default 2.0).

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveClient, LiveRuntime, ServeOptions, SimDeployment};
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::SimDuration;
use gis_proto::SearchSpec;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

const CONNS: [usize; 3] = [1, 2, 4];
const DEPTHS: [usize; 2] = [1, 8];
const WAN_DEPTHS: [usize; 4] = [1, 2, 8, 32];
const QUERIES_PER_CONN: usize = 800;
const SMOKE_QUERIES: usize = 80;
/// One-way latency of the emulated WAN link — a conservative
/// metro-to-metro figure; real inter-site Grid links are slower.
const WAN_ONE_WAY: Duration = Duration::from_micros(200);
const DEFAULT_TAX_CEILING: f64 = 2.2;
const DEFAULT_MIN_SPEEDUP: f64 = 2.0;

struct Row {
    conns: usize,
    depth: usize,
    qps: f64,
    ok: usize,
    total: usize,
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .unwrap()
        .port()
}

/// One static-host GRIS on the given transport; returns its URL.
fn build(tcp: bool) -> (LiveRuntime, LdapUrl) {
    let mut rt = LiveRuntime::new(Duration::from_millis(5));
    let host = gis_gris::HostSpec::linux("sat0", 2);
    let mut gris = SimDeployment::standard_host_gris(&host, 0);
    if tcp {
        gris.config.url = LdapUrl::tcp("127.0.0.1", free_port());
        gris.agent.service_url = gris.config.url.clone();
    }
    gris.agent.interval = SimDuration::from_millis(500);
    gris.agent.ttl = SimDuration::from_secs(5);
    let url = gris.config.url.clone();
    let opts = if tcp {
        ServeOptions::tcp()
    } else {
        ServeOptions::channel()
    };
    rt.spawn_gris(gris, opts).expect("spawn gris");
    (rt, url)
}

/// Netem-style WAN emulator on loopback: a relay that forwards each
/// chunk a fixed one-way delay after reading it, in both directions.
/// Sleeping relay threads burn no CPU, so frames from many in-flight
/// requests traverse the link concurrently — and a coalesced burst of
/// small GRIP frames crosses as one chunk paying one delay, exactly
/// like small requests sharing a TCP segment on a real long-haul link.
fn spawn_wan_link(upstream: SocketAddr, delay: Duration) -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind wan link");
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for inbound in listener.incoming() {
            let Ok(near) = inbound else { return };
            let Ok(far) = TcpStream::connect(upstream) else {
                return;
            };
            let legs = [
                (
                    near.try_clone().expect("clone"),
                    far.try_clone().expect("clone"),
                ),
                (far, near),
            ];
            for (mut from, mut to) in legs {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 16384];
                    loop {
                        match from.read(&mut buf) {
                            Ok(0) | Err(_) => {
                                let _ = to.shutdown(Shutdown::Write);
                                return;
                            }
                            Ok(n) => {
                                std::thread::sleep(delay);
                                if to.write_all(&buf[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        }
    });
    port
}

/// `conns` threads, each with its own client (its own TCP connection
/// when remote), each pushing `queries` lookups at `depth` in flight.
fn drive(clients: Vec<LiveClient>, target: &LdapUrl, depth: usize, queries: usize) -> Row {
    let conns = clients.len();
    let spec = SearchSpec::lookup(Dn::parse("hn=sat0").expect("dn"));
    let start = Instant::now();
    let mut handles = Vec::new();
    for mut client in clients {
        let target = target.clone();
        let specs: Vec<SearchSpec> = (0..queries).map(|_| spec.clone()).collect();
        handles.push(std::thread::spawn(move || {
            let outcomes = client.search_pipelined(&target, &specs, depth, Duration::from_secs(60));
            // Complete = a definite reply arrived for the lookup.
            outcomes.iter().filter(|o| o.is_some()).count()
        }));
    }
    let ok: usize = handles.into_iter().map(|h| h.join().expect("conn")).sum();
    let elapsed = start.elapsed().as_secs_f64();
    Row {
        conns,
        depth,
        qps: ok as f64 / elapsed,
        ok,
        total: conns * queries,
    }
}

fn find_qps(rows: &[Row], conns: usize, depth: usize) -> f64 {
    rows.iter()
        .find(|r| r.conns == conns && r.depth == depth)
        .map(|r| r.qps)
        .unwrap_or(0.0)
}

fn write_json(path: &str, queries: usize, channel_qps: f64, loopback: &[Row], wan: &[Row]) {
    let speedup = |depth: usize| -> f64 {
        let base = find_qps(wan, 1, 1);
        if base > 0.0 {
            find_qps(wan, 1, depth) / base
        } else {
            0.0
        }
    };
    let row_json = |r: &Row, last: bool| -> String {
        format!(
            "    {{\"conns\": {}, \"depth\": {}, \"qps\": {:.2}, \"ok\": {}, \"total\": {}}}{}\n",
            r.conns,
            r.depth,
            r.qps,
            r.ok,
            r.total,
            if last { "" } else { "," },
        )
    };
    let mut body = String::from("{\n  \"queries_per_conn\": ");
    body.push_str(&queries.to_string());
    body.push_str(&format!(",\n  \"channel_qps\": {channel_qps:.2}"));
    body.push_str(&format!(
        ",\n  \"wan_one_way_us\": {}",
        WAN_ONE_WAY.as_micros()
    ));
    body.push_str(",\n  \"loopback_runs\": [\n");
    for (i, r) in loopback.iter().enumerate() {
        body.push_str(&row_json(r, i + 1 == loopback.len()));
    }
    body.push_str("  ],\n  \"wan_runs\": [\n");
    for (i, r) in wan.iter().enumerate() {
        body.push_str(&row_json(r, i + 1 == wan.len()));
    }
    let best_tax = loopback
        .iter()
        .filter(|r| r.conns == 1 && r.qps > 0.0)
        .map(|r| channel_qps / r.qps)
        .fold(f64::INFINITY, f64::min);
    body.push_str(&format!(
        "  ],\n  \"derived\": {{\"mux_speedup_depth8\": {:.3}, \"mux_speedup_depth32\": {:.3}, \
         \"best_single_conn_wire_tax\": {:.3}}}\n}}\n",
        speedup(8),
        speedup(32),
        best_tax,
    ));
    std::fs::write(path, body).expect("write json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let queries = if smoke {
        SMOKE_QUERIES
    } else {
        QUERIES_PER_CONN
    };

    banner(
        "TCP SATURATION",
        "connections x in-flight depth on the multiplexed wire",
        "pipelining reclaims the round-trip tax the old lock-step transport paid",
    );
    println!(
        "one GRIS; loopback sweep {CONNS:?} conns x depth {DEPTHS:?}, then a\n\
         single connection through an emulated WAN link ({}us one-way) at\n\
         depth {WAN_DEPTHS:?}; {queries} lookups per connection. depth 1 =\n\
         the pre-multiplexing lock-step shape.\n",
        WAN_ONE_WAY.as_micros()
    );

    // In-process floor: one client, sequential, zero serialization.
    let (chan_rt, chan_url) = build(false);
    let chan = drive(vec![chan_rt.client()], &chan_url, 1, queries);
    chan_rt.shutdown();
    let channel_qps = chan.qps;
    println!(
        "channel floor: {} q/s (sequential, in-process)\n",
        f2(channel_qps)
    );

    let (rt, url) = build(true);

    let mut loopback_table = Table::new(&["conns", "depth", "throughput (q/s)", "wire tax", "ok"]);
    let mut loopback_rows = Vec::new();
    for conns in CONNS {
        for depth in DEPTHS {
            let clients: Vec<LiveClient> = (0..conns)
                .map(|_| LiveClient::builder(&url).connect().expect("connect"))
                .collect();
            let r = drive(clients, &url, depth, queries);
            loopback_table.row(vec![
                r.conns.to_string(),
                r.depth.to_string(),
                f2(r.qps),
                f2(channel_qps / r.qps),
                format!("{}/{}", r.ok, r.total),
            ]);
            loopback_rows.push(r);
        }
    }

    let upstream: SocketAddr = format!("127.0.0.1:{}", url.port).parse().expect("addr");
    let wan_port = spawn_wan_link(upstream, WAN_ONE_WAY);
    let wan_url = LdapUrl::tcp("127.0.0.1", wan_port);
    let mut wan_table = Table::new(&["depth", "throughput (q/s)", "us/query", "ok"]);
    let mut wan_rows = Vec::new();
    for depth in WAN_DEPTHS {
        let client = LiveClient::builder(&wan_url)
            .connect()
            .expect("connect wan");
        let r = drive(vec![client], &wan_url, depth, queries);
        wan_table.row(vec![
            r.depth.to_string(),
            f2(r.qps),
            f2(if r.qps > 0.0 { 1e6 / r.qps } else { 0.0 }),
            format!("{}/{}", r.ok, r.total),
        ]);
        wan_rows.push(r);
    }
    rt.shutdown();

    section("results: loopback sweep (wall-clock, this machine)");
    loopback_table.print();
    println!(
        "\nloopback round trips are microseconds, so depth amortizes the\n\
         syscall + wake cost per frame; the tax left at depth 8 is framing\n\
         plus the kernel's loopback stack."
    );

    section("results: emulated WAN, single connection");
    wan_table.print();
    let wan_base = find_qps(&wan_rows, 1, 1);
    let wan_d8 = find_qps(&wan_rows, 1, 8);
    let speedup8 = if wan_base > 0.0 {
        wan_d8 / wan_base
    } else {
        0.0
    };
    println!(
        "\ndepth 1 pays the full {}us round trip per query; a depth-8\n\
         pipeline coalesces requests into one segment and pays it per\n\
         batch. speedup at depth 8: {:.2}x",
        2 * WAN_ONE_WAY.as_micros(),
        speedup8
    );

    if let Some(path) = &json_path {
        write_json(path, queries, channel_qps, &loopback_rows, &wan_rows);
        println!("\njson written to {path}");
    }

    if smoke {
        let incomplete: Vec<String> = loopback_rows
            .iter()
            .chain(wan_rows.iter())
            .filter(|r| r.ok != r.total)
            .map(|r| format!("conns={} depth={}: {}/{}", r.conns, r.depth, r.ok, r.total))
            .collect();
        assert!(
            incomplete.is_empty(),
            "saturation smoke: queries went unanswered: {incomplete:?}"
        );
        let ceiling: f64 = std::env::var("GIS_SAT_TAX_CEILING")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TAX_CEILING);
        let best_tax = loopback_rows
            .iter()
            .filter(|r| r.conns == 1 && r.qps > 0.0)
            .map(|r| channel_qps / r.qps)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_tax <= ceiling,
            "saturation smoke: best single-connection wire tax is {best_tax:.2}, \
             above the {ceiling:.2} ceiling"
        );
        let min_speedup: f64 = std::env::var("GIS_SAT_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MIN_SPEEDUP);
        assert!(
            speedup8 >= min_speedup,
            "saturation smoke: WAN speedup at depth 8 is {speedup8:.2}x, \
             below the {min_speedup:.2}x floor"
        );
        println!(
            "\nsmoke gate: all queries complete; wire tax {:.2} <= {:.2}; \
             WAN depth-8 speedup {:.2}x >= {:.2}x",
            best_tax, ceiling, speedup8, min_speedup
        );
    }
}
