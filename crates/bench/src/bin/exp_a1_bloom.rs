//! A1 — ablation: Bloom-filter lossy aggregation (§5.1).
//!
//! "Such aggregate directories could also use lossy aggregation
//! techniques, as in the Service Discovery Service, which hashes
//! descriptions and summarizes hashes via Bloom filtering."
//!
//! Part 1: raw filter behaviour — false-positive rate vs bits/element
//! against the theoretical (1 - e^{-kn/m})^k. Part 2: routing value in a
//! GIIS — fraction of children pruned for selective equality queries as
//! summary size varies, and the resulting chained-message savings.

use gis_bench::{banner, f2, section, Table};
use gis_giis::{BloomFilter, Giis, GiisAction, GiisConfig, GiisMode};
use gis_ldap::{Dn, Entry, Filter, LdapUrl};
use gis_netsim::{secs, SimTime};
use gis_proto::{GripReply, GripRequest, GrrpMessage, ResultCode, SearchSpec};

fn theoretical_fp(bits_per_element: usize) -> f64 {
    let k = ((bits_per_element as f64) * std::f64::consts::LN_2)
        .round()
        .max(1.0);
    let exponent = -k / bits_per_element as f64;
    (1.0 - exponent.exp()).powf(k)
}

fn main() {
    banner(
        "A1",
        "lossy Bloom aggregation: accuracy and routing savings",
        "§5.1 (SDS-style Bloom summaries) — design-choice ablation",
    );

    // --- Part 1: measured vs theoretical false-positive rate. ------------
    section("false-positive rate vs bits per element (1000 tokens inserted)");
    let mut t = Table::new(&[
        "bits/element",
        "measured fp",
        "theoretical fp",
        "fill ratio",
    ]);
    for bpe in [2usize, 4, 6, 8, 10, 16] {
        let mut bf = BloomFilter::for_capacity(1000, bpe);
        for i in 0..1000 {
            bf.insert(&format!("present-{i}"));
        }
        let trials = 20_000;
        let fp = (0..trials)
            .filter(|i| bf.may_contain(&format!("absent-{i}")))
            .count();
        t.row(vec![
            bpe.to_string(),
            format!("{:.4}", fp as f64 / trials as f64),
            format!("{:.4}", theoretical_fp(bpe)),
            f2(bf.fill_ratio()),
        ]);
    }
    t.print();

    // --- Part 2: routing savings in a Bloom-chaining GIIS. ---------------
    section("GIIS Bloom routing: children consulted per equality query");
    let n_children = 50;
    let t0 = SimTime::ZERO;
    let mut t = Table::new(&[
        "bits/element",
        "children consulted (avg)",
        "pruned (avg)",
        "missed answers",
    ]);
    for bpe in [2usize, 4, 8, 16] {
        let mut config = GiisConfig::chaining(LdapUrl::server("giis.bloom"), Dn::root());
        config.mode = GiisMode::BloomChain {
            timeout: secs(2),
            refresh: secs(600),
            bits_per_element: bpe,
        };
        let mut giis = Giis::new(config, secs(30), secs(900));

        // Register 50 children, each with one host whose OS is one of 10
        // variants; answer the harvests inline.
        for i in 0..n_children {
            let child = LdapUrl::server(format!("gris.h{i}"));
            let ns = Dn::parse(&format!("hn=h{i}")).expect("dn");
            let actions = giis.handle_grrp(
                GrrpMessage::register(child.clone(), ns.clone(), t0, secs(900)),
                t0,
            );
            for a in actions {
                if let GiisAction::SendRequest {
                    request: GripRequest::Search { id, .. },
                    ..
                } = a
                {
                    let entry = Entry::new(ns.clone())
                        .with_class("computer")
                        .with("system", format!("os-{}", i % 10))
                        .with("cpucount", (2 + i % 7) as i64);
                    giis.handle_reply(
                        &child,
                        GripReply::SearchResult {
                            id,
                            code: ResultCode::Success,
                            entries: vec![entry],
                            referrals: vec![],
                        },
                        t0,
                    );
                }
            }
        }

        // 10 equality queries, one per OS variant. Each should route to
        // exactly the 5 matching children (plus Bloom false positives).
        let mut consulted_total = 0usize;
        let mut missed = 0usize;
        let before_pruned = giis.stats().bloom_pruned;
        for os in 0..10 {
            let filter = Filter::parse(&format!("(system=os-{os})")).expect("filter");
            let actions = giis.handle_request(
                1,
                GripRequest::Search {
                    id: 100 + os,
                    spec: SearchSpec::subtree(Dn::root(), filter),
                },
                t0,
            );
            let consulted = actions
                .iter()
                .filter(|a| matches!(a, GiisAction::SendRequest { .. }))
                .count();
            consulted_total += consulted;
            if consulted < 5 {
                missed += 5 - consulted; // a real match was pruned: impossible for Bloom
            }
        }
        let pruned = giis.stats().bloom_pruned - before_pruned;
        t.row(vec![
            bpe.to_string(),
            f2(consulted_total as f64 / 10.0),
            f2(pruned as f64 / 10.0),
            missed.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nexpected shape: measured fp tracks the (1-e^-kn/m)^k curve; routing\n\
         converges to exactly 5 of {n_children} children consulted as summaries grow,\n\
         with ZERO missed answers at every size (Bloom filters have no false\n\
         negatives — lossy means extra work, never lost results)."
    );
}
