//! E13 — degraded-mode behaviour of the live runtime under injected
//! faults.
//!
//! The paper's availability argument (§2.2, §6) is that a Grid
//! information service must keep answering — possibly with reduced
//! scope or older data — while parts of it fail. This experiment drives
//! the threaded runtime through a fault cycle (healthy → degraded →
//! healed) twice: once with the robustness features off (no circuit
//! breaker, no serve-stale, no client retry) and once with them on,
//! and compares answer completeness and latency.
//!
//! Injected fault load, deterministic from a seed:
//! * ≥20% inbound message loss on every service link;
//! * one child GRIS "crashed" (paused: alive but unreachable, so its
//!   registration stays fresh and the directory keeps chaining to it);
//! * one child's info provider reporting `Unavailable`.
//!
//! Acceptance checks printed at the end:
//! (a) with the breaker, degraded-phase latency stops paying the full
//!     chaining deadline once the circuit opens;
//! (b) with serve-stale, the failed provider's entries stay visible,
//!     stamped `stale: TRUE`;
//! (c) after healing, half-open probes re-admit the child and answers
//!     return to complete.

use gis_bench::{banner, f2, section, Table};
use gis_core::{LiveRuntime, RetryPolicy, ServeOptions, ServiceFault};
use gis_giis::{BreakerConfig, Giis, GiisConfig, GiisMode};
use gis_gris::{Gris, GrisConfig, InfoProvider, ProviderError};
use gis_ldap::{Dn, Entry, Filter, LdapUrl};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{ResultCode, SearchSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_HOSTS: usize = 4;
const QUERIES_PER_PHASE: usize = 40;
const DROP_RATE: f64 = 0.20;
const FAULT_SEED: u64 = 42;
/// GIIS chaining deadline — the cost of waiting for a dead child.
const CHAIN_TIMEOUT_MS: u64 = 400;

/// A one-entry host provider whose availability is flipped from the
/// driver thread (the live analogue of the netsim provider-failure
/// switch).
struct FlakyHostProvider {
    name: String,
    namespace: Dn,
    entry: Entry,
    fail: Arc<AtomicBool>,
}

impl FlakyHostProvider {
    fn new(host: &str, fail: Arc<AtomicBool>) -> FlakyHostProvider {
        let namespace = Dn::parse(&format!("hn={host}")).expect("dn");
        let entry = Entry::new(namespace.clone())
            .with_class("computer")
            .with("hn", host)
            .with("system", "linux");
        FlakyHostProvider {
            name: format!("flaky-host:{host}"),
            namespace,
            entry,
            fail,
        }
    }
}

impl InfoProvider for FlakyHostProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        // Short TTL so the degraded phase actually re-fetches (and hits
        // the failure) instead of coasting on a fresh cache.
        SimDuration::from_millis(100)
    }
    fn fetch(&mut self, _spec: &SearchSpec, _now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        if self.fail.load(Ordering::Relaxed) {
            return Err(ProviderError::Unavailable(self.name.clone()));
        }
        Ok(vec![self.entry.clone()])
    }
}

struct Deployment {
    rt: LiveRuntime,
    vo_url: LdapUrl,
    /// The child that the degraded phase will pause ("crash").
    crash_url: LdapUrl,
    /// Switch for the child whose provider the degraded phase fails.
    provider_fail: Arc<AtomicBool>,
    host_urls: Vec<LdapUrl>,
}

fn deploy(hardened: bool) -> Deployment {
    let mut rt = LiveRuntime::new(Duration::from_millis(10));
    let vo_url = LdapUrl::server("giis.e13");
    let mut config = GiisConfig::chaining(vo_url.clone(), Dn::root());
    config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(CHAIN_TIMEOUT_MS),
    };
    if hardened {
        config.breaker = Some(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(2),
            retry: true,
        });
    }
    rt.spawn_giis(
        Giis::new(
            config,
            SimDuration::from_millis(200),
            SimDuration::from_millis(800),
        ),
        ServeOptions::default(),
    )
    .unwrap();

    let provider_fail = Arc::new(AtomicBool::new(false));
    let mut host_urls = Vec::new();
    for i in 0..N_HOSTS {
        let host = format!("e13-{i}");
        let url = LdapUrl::server(format!("gris.{host}"));
        let mut config = GrisConfig::open(url.clone(), Dn::parse(&format!("hn={host}")).unwrap());
        if hardened {
            config.stale_ttl = Some(SimDuration::from_secs(120));
        }
        let mut gris = Gris::new(
            config,
            SimDuration::from_millis(200),
            SimDuration::from_millis(800),
        );
        // Host 1 carries the failable provider; the others never fail.
        let fail = if i == 1 {
            provider_fail.clone()
        } else {
            Arc::new(AtomicBool::new(false))
        };
        gris.add_provider(Box::new(FlakyHostProvider::new(&host, fail)));
        gris.agent.add_target(vo_url.clone());
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
        host_urls.push(url);
    }
    // Host 0 is the crash victim.
    let crash_url = host_urls[0].clone();
    // Let registrations propagate before measuring.
    std::thread::sleep(Duration::from_millis(600));
    Deployment {
        rt,
        vo_url,
        crash_url,
        provider_fail,
        host_urls,
    }
}

#[derive(Default)]
struct Phase {
    answered: usize,
    total: usize,
    /// Mean fraction of the N_HOSTS host entries present per answer.
    completeness_sum: f64,
    stale_answers: usize,
    codes: Vec<ResultCode>,
    latencies_ms: Vec<f64>,
}

impl Phase {
    fn completeness(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.completeness_sum / self.total as f64
        }
    }
    /// Fraction of answers that beat the chaining deadline: with a dead
    /// child still registered, only an open circuit makes this nonzero.
    fn below_deadline(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let cutoff = CHAIN_TIMEOUT_MS as f64 * 0.95;
        self.latencies_ms.iter().filter(|l| **l < cutoff).count() as f64
            / self.latencies_ms.len() as f64
    }
    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
    fn code_summary(&self) -> String {
        let count = |c: ResultCode| self.codes.iter().filter(|x| **x == c).count();
        format!(
            "ok={} stale={} partial={}",
            count(ResultCode::Success),
            count(ResultCode::StaleResults),
            count(ResultCode::PartialResults),
        )
    }
}

fn measure(dep: &Deployment, hardened: bool) -> Phase {
    let mut client = dep.rt.client();
    let spec = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    let mut phase = Phase {
        total: QUERIES_PER_PHASE,
        ..Phase::default()
    };
    for _ in 0..QUERIES_PER_PHASE {
        let t0 = Instant::now();
        let result = if hardened {
            client
                .request(&dep.vo_url, spec.clone())
                .retry(RetryPolicy {
                    attempt_timeout: Duration::from_millis(700),
                    max_attempts: 4,
                    base_backoff: Duration::from_millis(30),
                    max_backoff: Duration::from_millis(250),
                })
                .send()
                .outcome
        } else {
            client
                .request(&dep.vo_url, spec.clone())
                .timeout(Duration::from_millis(700))
                .send()
                .outcome
        };
        if let Some((code, entries, _)) = result {
            phase.answered += 1;
            phase.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            phase.completeness_sum += entries.len().min(N_HOSTS) as f64 / N_HOSTS as f64;
            if entries.iter().any(|e| e.get_str("stale") == Some("TRUE")) {
                phase.stale_answers += 1;
            }
            phase.codes.push(code);
        }
    }
    phase
}

fn run_mode(hardened: bool) -> [Phase; 3] {
    let dep = deploy(hardened);

    let healthy = measure(&dep, hardened);

    // Inject the fault load: seeded loss everywhere, one crashed child,
    // one failed provider.
    dep.rt.set_fault_seed(FAULT_SEED);
    for url in std::iter::once(&dep.vo_url).chain(&dep.host_urls) {
        dep.rt.set_fault(
            url,
            ServiceFault {
                drop: DROP_RATE,
                latency: Duration::ZERO,
                paused: false,
            },
        );
    }
    dep.rt.pause_service(&dep.crash_url);
    dep.provider_fail.store(true, Ordering::Relaxed);
    // Let the serve-stale caches age past the provider TTL so degraded
    // queries really exercise the failure path.
    std::thread::sleep(Duration::from_millis(200));
    let degraded = measure(&dep, hardened);

    // Heal everything; wait out the breaker cooldown so half-open probes
    // can re-admit the crashed child, plus one registration interval.
    dep.rt.heal_all();
    dep.rt.resume_service(&dep.crash_url);
    dep.provider_fail.store(false, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(2500));
    let healed = measure(&dep, hardened);

    let metrics = dep.rt.net_metrics();
    println!(
        "  [{}] router counters: sent={} delivered={} dropped_fault={} \
         dropped_paused={} delayed={}",
        if hardened { "hardened" } else { "baseline" },
        metrics.sent,
        metrics.delivered,
        metrics.dropped_fault,
        metrics.dropped_paused,
        metrics.delayed,
    );
    dep.rt.shutdown();
    [healthy, degraded, healed]
}

fn main() {
    banner(
        "E13",
        "answer completeness and latency under injected faults",
        "degraded modes keep the directory useful while parts of it fail (§2.2, §6)",
    );
    println!(
        "1 chaining GIIS (deadline {CHAIN_TIMEOUT_MS}ms) + {N_HOSTS} GRIS on live threads;\n\
         {QUERIES_PER_PHASE} queries per phase; degraded phase injects {}% loss,\n\
         one crashed child and one failed provider (fault seed {FAULT_SEED}).\n",
        (DROP_RATE * 100.0) as u32
    );

    let baseline = run_mode(false);
    let hardened = run_mode(true);

    let mut table = Table::new(&[
        "mode",
        "phase",
        "answered",
        "completeness",
        "stale answers",
        "< deadline",
        "p50 (ms)",
        "p99 (ms)",
        "codes",
    ]);
    for (mode, phases) in [("baseline", &baseline), ("hardened", &hardened)] {
        for (name, p) in ["healthy", "degraded", "healed"].iter().zip(phases.iter()) {
            table.row(vec![
                mode.into(),
                (*name).into(),
                format!("{}/{}", p.answered, p.total),
                f2(p.completeness()),
                p.stale_answers.to_string(),
                f2(p.below_deadline()),
                f2(p.percentile(0.5)),
                f2(p.percentile(0.99)),
                p.code_summary(),
            ]);
        }
    }
    section("results (wall-clock, this machine)");
    table.print();

    section("acceptance checks");
    let b_deg = &baseline[1];
    let h_deg = &hardened[1];
    let h_healed = &hardened[2];
    let check = |label: &str, pass: bool, detail: String| {
        println!(
            "  [{}] {label}: {detail}",
            if pass { "PASS" } else { "FAIL" }
        );
    };
    check(
        "(a) breaker skips the dead child",
        h_deg.below_deadline() > 0.25 && b_deg.below_deadline() < 0.05,
        format!(
            "{}% of hardened degraded answers beat the {CHAIN_TIMEOUT_MS}ms \
             chaining deadline vs {}% baseline (without a breaker, a dead but \
             still-registered child makes every fan-out wait it out)",
            f2(h_deg.below_deadline() * 100.0),
            f2(b_deg.below_deadline() * 100.0),
        ),
    );
    check(
        "(b) serve-stale keeps the failed provider visible",
        h_deg.stale_answers > 0 && h_deg.completeness() > b_deg.completeness(),
        format!(
            "{} of {} hardened degraded answers carried stale-marked entries; \
             completeness {} vs {} baseline",
            h_deg.stale_answers,
            h_deg.total,
            f2(h_deg.completeness()),
            f2(b_deg.completeness()),
        ),
    );
    check(
        "(c) probes re-admit after heal",
        h_healed.completeness() > 0.99 && h_healed.answered == h_healed.total,
        format!(
            "healed completeness {} with {}/{} answered",
            f2(h_healed.completeness()),
            h_healed.answered,
            h_healed.total,
        ),
    );
    println!(
        "\nexpected shape: baseline loses the crashed child AND the failed\n\
         provider's entries, and every degraded query pays the full chaining\n\
         deadline; hardened answers keep 3/4 hosts live plus the fourth as a\n\
         stale-marked cache hit, return fast once the circuit opens, and\n\
         recover the complete view after healing."
    );
}
