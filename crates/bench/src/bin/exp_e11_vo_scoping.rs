//! E11 — §3/§11.2: VO scoping as the scalability mechanism, vs multicast
//! discovery.
//!
//! "Each aggregate directory defines a scope within which search
//! operations take place ... This scoping allows many independent VOs to
//! co-exist in a grid without adversely affecting their individual
//! discovery performance." By contrast, multicast discovery scopes by
//! *physical* subnet: cost follows subnet population and coverage misses
//! VO members elsewhere.
//!
//! Sweep the number of co-existing VOs (fixed per-VO size). MDS-2: each
//! VO has its own directory; measure one VO's discovery cost/coverage as
//! the grid grows. Multicast: all agents share subnets; measure flood
//! cost and coverage for the same logical VO.

use gis_baselines::{McastAgent, McastClient, McastGroups, McastMsg};
use gis_bench::{banner, f2, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig};
use gis_gris::HostSpec;
use gis_ldap::{Dn, Entry, Filter, LdapUrl};
use gis_netsim::{secs, Sim, SimTime};
use gis_proto::SearchSpec;

struct MdsSample {
    msgs_per_query: f64,
    found: usize,
    latency_ms: f64,
}

fn run_mds2(n_vos: usize, hosts_per_vo: usize) -> MdsSample {
    let mut dep = SimDeployment::new(31);
    let mut first_vo_url = None;
    for v in 0..n_vos {
        let vo_url = LdapUrl::server(format!("giis.vo{v}"));
        dep.add_giis(Giis::new(
            GiisConfig::chaining(vo_url.clone(), Dn::root()),
            secs(30),
            secs(90),
        ));
        for i in 0..hosts_per_vo {
            let host = HostSpec::linux(&format!("v{v}h{i}"), 2).at(gis_core::org(&format!("V{v}")));
            dep.add_standard_host(&host, (v * 100 + i) as u64, std::slice::from_ref(&vo_url));
        }
        if v == 0 {
            first_vo_url = Some(vo_url);
        }
    }
    let vo_url = first_vo_url.expect("at least one VO");
    let client = dep.add_client("user");
    dep.run_for(secs(5));

    let before = dep.sim.metrics().sent;
    let (_, entries, _) = dep
        .search_and_wait(
            client,
            &vo_url,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            secs(15),
        )
        .expect("discovery completes");
    // Subtract the background registration refresh that happened during
    // the wait (approximate: re-measure a quiet window of equal length).
    let msgs = dep.sim.metrics().sent - before;
    let id = *dep.client(client).sent_at.keys().last().unwrap();
    let latency_ms = dep.client(client).latency(id).unwrap().as_secs_f64() * 1e3;
    MdsSample {
        msgs_per_query: msgs as f64,
        found: entries.len(),
        latency_ms,
    }
}

struct McastSample {
    msgs_per_query: f64,
    found: usize,
}

fn run_mcast(n_vos: usize, hosts_per_vo: usize) -> McastSample {
    // All hosts share 2 physical subnets regardless of VO. VO 0's members
    // are spread evenly across both; the client sits on subnet 0.
    let mut sim: Sim<McastMsg> = Sim::new(77);
    let mut groups = McastGroups::new();
    for v in 0..n_vos {
        for i in 0..hosts_per_vo {
            let entry = Entry::at(&format!("hn=v{v}h{i}"))
                .expect("dn")
                .with_class("computer")
                .with("vo", format!("vo{v}"));
            let node = sim.add_node(format!("a{v}-{i}"), Box::new(McastAgent::new(entry)));
            groups.join((i % 2) as u32, node);
        }
    }
    let client = sim.add_node("client", Box::new(McastClient::new(0, groups)));
    sim.run_until(SimTime::ZERO + secs(1));
    let id = sim.invoke::<McastClient, _>(client, |c, ctx| {
        c.discover(ctx, Filter::parse("(vo=vo0)").expect("filter"))
    });
    sim.run_for(secs(3));
    let c = sim.actor::<McastClient>(client).expect("client");
    McastSample {
        msgs_per_query: c.messages_sent as f64,
        found: c.discovered(id).len(),
    }
}

fn main() {
    banner(
        "E11",
        "per-VO discovery cost as the grid grows: VO scoping vs multicast",
        "§3 (aggregate directories define scope); §11.2 (multicast critique)",
    );
    let hosts_per_vo = 8;
    println!("each VO has {hosts_per_vo} hosts; we query VO 0 only.\n");

    let mut table = Table::new(&[
        "co-existing VOs",
        "total hosts",
        "mds2 msgs",
        "mds2 found",
        "mds2 lat (ms)",
        "mcast msgs",
        "mcast found",
    ]);
    for &n_vos in &[1usize, 2, 4, 8, 16] {
        let mds = run_mds2(n_vos, hosts_per_vo);
        let mc = run_mcast(n_vos, hosts_per_vo);
        table.row(vec![
            n_vos.to_string(),
            (n_vos * hosts_per_vo).to_string(),
            f2(mds.msgs_per_query),
            mds.found.to_string(),
            f2(mds.latency_ms),
            f2(mc.msgs_per_query),
            mc.found.to_string(),
        ]);
    }
    section("results");
    table.print();
    println!(
        "\nexpected shape: MDS-2's per-VO discovery touches only VO 0's own\n\
         directory and {hosts_per_vo} providers — flat as unrelated VOs multiply (the\n\
         grid grows 16x, VO-0 cost doesn't). Multicast flood cost grows with\n\
         the shared subnet population (every co-located agent pays), and\n\
         coverage stays partial: only the subnet-local half of VO 0 answers."
    );
}
