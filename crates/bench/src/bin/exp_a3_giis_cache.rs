//! A3 — ablation: the GIIS result cache (§10.4).
//!
//! "Performance concerns make caching data within the GIIS desirable,
//! and this capability is provided as part of the basic GIIS framework."
//! §12 lists "update versus freshness tradeoffs in directory
//! implementation" as future work — this ablation quantifies that knob
//! at the directory: sweep the result-cache TTL under a steady query
//! stream and report fan-out traffic saved versus the age of answers.

use gis_bench::{banner, f2, section, Table};
use gis_core::SimDeployment;
use gis_giis::{Giis, GiisConfig};
use gis_gris::HostSpec;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{secs, SimDuration};
use gis_proto::SearchSpec;

const N_HOSTS: usize = 10;
const QUERY_PERIOD_S: u64 = 5;
const RUN_S: u64 = 300;

struct Sample {
    chained: u64,
    cache_hits: u64,
    msgs: u64,
    mean_latency_ms: f64,
}

fn run(cache_ttl_s: Option<u64>) -> Sample {
    let mut dep = SimDeployment::new(19);
    let vo_url = LdapUrl::server("giis.vo");
    let mut config = GiisConfig::chaining(vo_url.clone(), Dn::root());
    config.result_cache_ttl = cache_ttl_s.map(SimDuration::from_secs);
    let vo = dep.add_giis(Giis::new(config, secs(30), secs(90)));
    for i in 0..N_HOSTS {
        let host = HostSpec::linux(&format!("h{i}"), 2);
        dep.add_standard_host(&host, i as u64, std::slice::from_ref(&vo_url));
    }
    let client = dep.add_client("c");
    dep.run_for(secs(5));

    let msgs_before = dep.sim.metrics().sent;
    let chained_before = dep.giis(vo).stats().chained_requests;
    let queries = RUN_S / QUERY_PERIOD_S;
    let q = || SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    for _ in 0..queries {
        let _ = dep.search_and_wait(client, &vo_url, q(), secs(4));
        // search_and_wait advances time while waiting; pad to the period.
        dep.run_for(secs(QUERY_PERIOD_S.saturating_sub(1)));
    }
    let c = dep.client(client);
    let latencies: Vec<f64> = c
        .sent_at
        .keys()
        .filter_map(|id| c.latency(*id))
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    Sample {
        chained: dep.giis(vo).stats().chained_requests - chained_before,
        cache_hits: dep.giis(vo).stats().result_cache_hits,
        msgs: dep.sim.metrics().sent - msgs_before,
        mean_latency_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
    }
}

fn main() {
    banner(
        "A3",
        "GIIS result cache: fan-out savings vs answer age",
        "§10.4 (caching within the GIIS); §12 (freshness tradeoffs)",
    );
    println!(
        "{N_HOSTS} providers behind a chaining GIIS; identical discovery query\n\
         every {QUERY_PERIOD_S} s for {RUN_S} s.\n"
    );

    let mut table = Table::new(&[
        "cache TTL (s)",
        "chained requests",
        "cache hits",
        "msgs total",
        "mean latency (ms)",
        "max answer age (s)",
    ]);
    for ttl in [None, Some(5u64), Some(15), Some(60), Some(300)] {
        let s = run(ttl);
        table.row(vec![
            ttl.map(|t| t.to_string()).unwrap_or_else(|| "off".into()),
            s.chained.to_string(),
            s.cache_hits.to_string(),
            s.msgs.to_string(),
            f2(s.mean_latency_ms),
            ttl.map(|t| t.to_string()).unwrap_or_else(|| "0".into()),
        ]);
    }
    section("results");
    table.print();
    println!(
        "\nexpected shape: with the cache off, every query fans out to all\n\
         {N_HOSTS} children; a TTL >= the query period converts almost all queries\n\
         into local answers (latency collapses to one network round trip)\n\
         at the price of answers up to one TTL old. Partial results are\n\
         never cached, so partition recovery is never masked."
    );
}
