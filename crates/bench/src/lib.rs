//! Experiment harness utilities shared by the `exp_*` binaries.
//!
//! Each binary under `src/bin/` regenerates one paper artifact (figure or
//! argued tradeoff); see DESIGN.md §4 for the index and EXPERIMENTS.md
//! for recorded paper-vs-measured outcomes.

#![warn(missing_docs)]

/// A simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringify each cell yourself).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("paper artifact: {paper_ref}");
    println!("==================================================================");
}

/// Print a labelled section heading.
pub fn section(s: &str) {
    println!("\n--- {s} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["n", "latency"]);
        t.row(vec!["10".into(), f2(1.234)]);
        t.row(vec!["100".into(), f3(0.5)]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
