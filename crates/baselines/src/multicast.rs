//! Multicast-scoped service-discovery baseline (§11.2).
//!
//! SLP, SDS, Jini and WASRV "rely on IP multicast to locate or to
//! disseminate service descriptions ... the reliance on IP multicast
//! makes them inappropriate for our use": multicast scope follows
//! *physical* topology (a subnet/administrative domain), while VO
//! membership is *virtual* and crosses those boundaries.
//!
//! This baseline models agents on physical subnets. A discovery floods a
//! query to every agent in the querier's multicast scope; matching agents
//! reply. Experiment E11 shows the two failure modes the paper argues:
//! coverage loss (VO members on other subnets are invisible) and message
//! cost proportional to subnet population rather than VO relevance.

use gis_ldap::Entry;
use gis_ldap::Filter;
use gis_netsim::{Actor, Ctx, NodeId, SimTime};
use gis_proto::RequestId;
use std::collections::BTreeMap;

/// A physical multicast scope (subnet / administrative domain).
pub type ScopeId = u32;

/// Messages of the multicast-discovery baseline.
#[derive(Debug, Clone)]
pub enum McastMsg {
    /// A flooded discovery query.
    Query {
        /// Request id (per querier).
        id: RequestId,
        /// Matching criterion.
        filter: Filter,
    },
    /// A positive response from a matching agent.
    Response {
        /// The query id being answered.
        id: RequestId,
        /// The responder's description.
        entry: Entry,
    },
}

/// The "network's" multicast group membership: scope -> member nodes.
/// (In a real deployment this is switch/router state; here the driver
/// builds it and hands each agent its member list.)
#[derive(Debug, Clone, Default)]
pub struct McastGroups {
    members: BTreeMap<ScopeId, Vec<NodeId>>,
}

impl McastGroups {
    /// Empty membership.
    pub fn new() -> McastGroups {
        McastGroups::default()
    }

    /// Add a node to a scope.
    pub fn join(&mut self, scope: ScopeId, node: NodeId) {
        self.members.entry(scope).or_default().push(node);
    }

    /// Members of a scope.
    pub fn members(&self, scope: ScopeId) -> &[NodeId] {
        self.members.get(&scope).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A service agent: belongs to one physical scope, may belong to a VO
/// (attribute `vo` on its entry), answers matching flooded queries.
pub struct McastAgent {
    /// Description this agent advertises.
    pub entry: Entry,
    /// Queries this agent received (message-cost accounting).
    pub queries_seen: u64,
}

impl McastAgent {
    /// Create an agent advertising `entry`.
    pub fn new(entry: Entry) -> McastAgent {
        McastAgent {
            entry,
            queries_seen: 0,
        }
    }
}

impl Actor<McastMsg> for McastAgent {
    fn on_message(&mut self, ctx: &mut Ctx<'_, McastMsg>, from: NodeId, msg: McastMsg) {
        if let McastMsg::Query { id, filter } = msg {
            self.queries_seen += 1;
            if filter.matches(&self.entry) {
                ctx.send(
                    from,
                    McastMsg::Response {
                        id,
                        entry: self.entry.clone(),
                    },
                );
            }
        }
    }
}

/// A discovery client: floods queries to its local scope and collects
/// responses.
pub struct McastClient {
    groups: McastGroups,
    /// The client's physical scope.
    pub scope: ScopeId,
    next_id: RequestId,
    /// Responses per query.
    pub responses: BTreeMap<RequestId, Vec<(SimTime, Entry)>>,
    /// Messages sent by this client's floods.
    pub messages_sent: u64,
}

impl McastClient {
    /// Create a client on `scope` with a snapshot of group membership.
    pub fn new(scope: ScopeId, groups: McastGroups) -> McastClient {
        McastClient {
            groups,
            scope,
            next_id: 1,
            responses: BTreeMap::new(),
            messages_sent: 0,
        }
    }

    /// Flood a discovery query to the local scope (drive via
    /// `Sim::invoke`). Returns the query id.
    pub fn discover(&mut self, ctx: &mut Ctx<'_, McastMsg>, filter: Filter) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        let members: Vec<NodeId> = self.groups.members(self.scope).to_vec();
        for node in members {
            if node != ctx.id() {
                self.messages_sent += 1;
                ctx.send(
                    node,
                    McastMsg::Query {
                        id,
                        filter: filter.clone(),
                    },
                );
            }
        }
        self.responses.entry(id).or_default();
        id
    }

    /// Entries discovered by a query so far.
    pub fn discovered(&self, id: RequestId) -> Vec<&Entry> {
        self.responses
            .get(&id)
            .map(|v| v.iter().map(|(_, e)| e).collect())
            .unwrap_or_default()
    }
}

impl Actor<McastMsg> for McastClient {
    fn on_message(&mut self, ctx: &mut Ctx<'_, McastMsg>, _from: NodeId, msg: McastMsg) {
        if let McastMsg::Response { id, entry } = msg {
            self.responses
                .entry(id)
                .or_default()
                .push((ctx.now(), entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::{secs, Sim, SimTime};

    /// Two subnets. The VO spans both; irrelevant agents share the
    /// subnets.
    fn build() -> (Sim<McastMsg>, NodeId, usize) {
        let mut sim: Sim<McastMsg> = Sim::new(9);
        let mut groups = McastGroups::new();
        let mut vo_total = 0;

        // Subnet 0: 3 VO members + 5 unrelated agents.
        // Subnet 1: 2 VO members + 4 unrelated agents.
        for (scope, vo_members, others) in [(0u32, 3usize, 5usize), (1, 2, 4)] {
            for i in 0..vo_members {
                let entry = Entry::at(&format!("hn=vo-s{scope}-{i}"))
                    .unwrap()
                    .with_class("computer")
                    .with("vo", "physics");
                let node =
                    sim.add_node(format!("vo-{scope}-{i}"), Box::new(McastAgent::new(entry)));
                groups.join(scope, node);
                vo_total += 1;
            }
            for i in 0..others {
                let entry = Entry::at(&format!("hn=other-s{scope}-{i}"))
                    .unwrap()
                    .with_class("printer");
                let node = sim.add_node(
                    format!("other-{scope}-{i}"),
                    Box::new(McastAgent::new(entry)),
                );
                groups.join(scope, node);
            }
        }

        let client = sim.add_node("client", Box::new(McastClient::new(0, groups.clone())));
        // The client is also a member of subnet 0 (it needn't be an agent).
        (sim, client, vo_total)
    }

    #[test]
    fn discovery_limited_to_physical_scope() {
        let (mut sim, client, vo_total) = build();
        sim.run_until(SimTime::ZERO + secs(1));
        let id = sim.invoke::<McastClient, _>(client, |c, ctx| {
            c.discover(ctx, Filter::parse("(vo=physics)").unwrap())
        });
        sim.run_for(secs(2));
        let c = sim.actor::<McastClient>(client).unwrap();
        let found = c.discovered(id).len();
        assert_eq!(found, 3, "only subnet-0 VO members found");
        assert!(found < vo_total, "VO members on subnet 1 are invisible");
    }

    #[test]
    fn flood_cost_is_subnet_population_not_vo_size() {
        let (mut sim, client, _) = build();
        sim.run_until(SimTime::ZERO + secs(1));
        sim.invoke::<McastClient, _>(client, |c, ctx| {
            c.discover(ctx, Filter::parse("(vo=physics)").unwrap())
        });
        sim.run_for(secs(2));
        let c = sim.actor::<McastClient>(client).unwrap();
        assert_eq!(
            c.messages_sent, 8,
            "all 8 subnet-0 agents polled for 3 relevant members"
        );
        // Every irrelevant agent on the subnet paid the query cost.
        let other0 = sim.lookup("other-0-0").unwrap();
        assert_eq!(sim.actor::<McastAgent>(other0).unwrap().queries_seen, 1);
    }

    #[test]
    fn scope_crossing_requires_membership_change() {
        // Moving the client to subnet 1 flips which VO members it sees —
        // discovery is coupled to physical topology, not the VO.
        let (mut sim, _, _) = build();
        // Rebuild membership view for a subnet-1 client.
        let mut groups = McastGroups::new();
        for scope in [0u32, 1] {
            for i in 0..10 {
                for prefix in ["vo", "other"] {
                    if let Some(node) = sim.lookup(&format!("{prefix}-{scope}-{i}")) {
                        groups.join(scope, node);
                    }
                }
            }
        }
        let client1 = sim.add_node("client1", Box::new(McastClient::new(1, groups)));
        sim.run_until(SimTime::ZERO + secs(1));
        let id = sim.invoke::<McastClient, _>(client1, |c, ctx| {
            c.discover(ctx, Filter::parse("(vo=physics)").unwrap())
        });
        sim.run_for(secs(2));
        let c = sim.actor::<McastClient>(client1).unwrap();
        assert_eq!(c.discovered(id).len(), 2, "subnet-1 members only");
    }
}
