//! MDS-1-style centralized directory baseline (§11.1).
//!
//! "We employed this approach in early versions of MDS-1. While this
//! system pioneered information services for the Grid, the strategy of
//! collecting all information into a database inevitably limited
//! scalability and reliability."
//!
//! Providers push their complete entry set to a single central server on
//! a fixed period; queries are answered from the central database.
//! Experiment E7 compares this against MDS-2's pull/cache GIIS: central
//! ingest load grows linearly with provider count and data is as stale
//! as the push period, while the distributed architecture keeps per-query
//! freshness and spreads load.

use gis_gris::InfoProvider;
use gis_ldap::{Dit, Entry, Filter};
use gis_netsim::{Actor, Ctx, NodeId, SimDuration, SimTime};
use gis_proto::{RequestId, SearchSpec};

/// Messages of the centralized baseline.
#[derive(Debug, Clone)]
pub enum Mds1Msg {
    /// A provider pushes its full entry set.
    Push {
        /// Pushing provider's name.
        provider: String,
        /// All of its entries.
        entries: Vec<Entry>,
    },
    /// A client query.
    Query {
        /// Request id.
        id: RequestId,
        /// What to search.
        spec: SearchSpec,
    },
    /// The central server's answer.
    Result {
        /// Request id.
        id: RequestId,
        /// Matching entries.
        entries: Vec<Entry>,
    },
}

/// The central directory server.
pub struct Mds1Central {
    dit: Dit,
    /// Push messages ingested.
    pub pushes_received: u64,
    /// Entries ingested (total over all pushes).
    pub entries_ingested: u64,
    /// Queries answered.
    pub queries: u64,
}

impl Mds1Central {
    /// Empty central directory.
    pub fn new() -> Mds1Central {
        Mds1Central {
            dit: Dit::new(),
            pushes_received: 0,
            entries_ingested: 0,
            queries: 0,
        }
    }

    /// Entries currently stored.
    pub fn stored(&self) -> usize {
        self.dit.len()
    }
}

impl Default for Mds1Central {
    fn default() -> Self {
        Mds1Central::new()
    }
}

impl Actor<Mds1Msg> for Mds1Central {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Mds1Msg>, from: NodeId, msg: Mds1Msg) {
        match msg {
            Mds1Msg::Push { entries, .. } => {
                self.pushes_received += 1;
                self.entries_ingested += entries.len() as u64;
                for e in entries {
                    self.dit.upsert(e);
                }
            }
            Mds1Msg::Query { id, spec } => {
                self.queries += 1;
                let entries = self.dit.search(
                    &spec.base,
                    spec.scope,
                    &spec.filter,
                    &spec.attrs,
                    spec.size_limit as usize,
                );
                ctx.send(from, Mds1Msg::Result { id, entries });
            }
            Mds1Msg::Result { .. } => {}
        }
    }
}

/// A provider node that pushes all of its information to the central
/// directory every `push_interval`.
pub struct Mds1Provider {
    providers: Vec<Box<dyn InfoProvider>>,
    central: NodeId,
    name: String,
    /// How often a full push happens.
    pub push_interval: SimDuration,
    /// Pushes sent.
    pub pushes_sent: u64,
}

impl Mds1Provider {
    /// Wrap a set of information sources.
    pub fn new(
        name: impl Into<String>,
        providers: Vec<Box<dyn InfoProvider>>,
        central: NodeId,
        push_interval: SimDuration,
    ) -> Mds1Provider {
        Mds1Provider {
            providers,
            central,
            name: name.into(),
            push_interval,
            pushes_sent: 0,
        }
    }

    fn push_all(&mut self, ctx: &mut Ctx<'_, Mds1Msg>) {
        let now = ctx.now();
        let mut entries = Vec::new();
        for p in &mut self.providers {
            let spec = SearchSpec::subtree(p.namespace().clone(), Filter::always());
            if let Ok(mut es) = p.fetch(&spec, now) {
                entries.append(&mut es);
            }
        }
        self.pushes_sent += 1;
        ctx.send(
            self.central,
            Mds1Msg::Push {
                provider: self.name.clone(),
                entries,
            },
        );
    }
}

impl Actor<Mds1Msg> for Mds1Provider {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Mds1Msg>) {
        self.push_all(ctx);
        ctx.set_timer(self.push_interval, 0);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Mds1Msg>, _from: NodeId, _msg: Mds1Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Mds1Msg>, _token: u64) {
        self.push_all(ctx);
        ctx.set_timer(self.push_interval, 0);
    }
}

/// A query client for the centralized baseline.
#[derive(Default)]
pub struct Mds1Client {
    next_id: RequestId,
    /// Results received: `(id, arrival time, entries)`.
    pub results: Vec<(RequestId, SimTime, Vec<Entry>)>,
}

impl Mds1Client {
    /// New client.
    pub fn new() -> Mds1Client {
        Mds1Client {
            next_id: 1,
            results: Vec::new(),
        }
    }

    /// Issue a query to the central server (drive via `Sim::invoke`).
    pub fn query(
        &mut self,
        ctx: &mut Ctx<'_, Mds1Msg>,
        central: NodeId,
        spec: SearchSpec,
    ) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        ctx.send(central, Mds1Msg::Query { id, spec });
        id
    }

    /// Entries of a completed query.
    pub fn result(&self, id: RequestId) -> Option<&[Entry]> {
        self.results
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .map(|(_, _, e)| e.as_slice())
    }
}

impl Actor<Mds1Msg> for Mds1Client {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Mds1Msg>, _from: NodeId, msg: Mds1Msg) {
        if let Mds1Msg::Result { id, entries } = msg {
            self.results.push((id, ctx.now(), entries));
        }
    }
}

/// Mean staleness (seconds) of `measuredat`-stamped entries at `now`: the
/// headline weakness of push-everything designs.
pub fn mean_staleness_secs(entries: &[Entry], now: SimTime) -> Option<f64> {
    let ages: Vec<f64> = entries
        .iter()
        .filter_map(|e| e.get_i64("measuredat"))
        .map(|at| now.since(SimTime(at as u64)).as_secs_f64())
        .collect();
    if ages.is_empty() {
        return None;
    }
    Some(ages.iter().sum::<f64>() / ages.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_gris::{DynamicHostProvider, HostSpec, StaticHostProvider};
    use gis_ldap::Dn;
    use gis_netsim::{secs, Sim};

    fn build(
        seed: u64,
        n_hosts: usize,
        push_interval: SimDuration,
    ) -> (Sim<Mds1Msg>, NodeId, NodeId) {
        let mut sim: Sim<Mds1Msg> = Sim::new(seed);
        let central = sim.add_node("central", Box::new(Mds1Central::new()));
        for i in 0..n_hosts {
            let host = HostSpec::linux(&format!("h{i}"), 2);
            let providers: Vec<Box<dyn InfoProvider>> = vec![
                Box::new(StaticHostProvider::new(host.clone())),
                Box::new(DynamicHostProvider::new(
                    &host,
                    i as u64,
                    1.0,
                    secs(10),
                    secs(30),
                )),
            ];
            sim.add_node(
                format!("prov{i}"),
                Box::new(Mds1Provider::new(
                    format!("h{i}"),
                    providers,
                    central,
                    push_interval,
                )),
            );
        }
        let client = sim.add_node("client", Box::new(Mds1Client::new()));
        (sim, central, client)
    }

    #[test]
    fn pushes_populate_central_database() {
        let (mut sim, central, _) = build(1, 3, secs(30));
        sim.run_until(SimTime::ZERO + secs(1));
        let c = sim.actor::<Mds1Central>(central).unwrap();
        assert_eq!(c.pushes_received, 3);
        assert_eq!(c.stored(), 6, "host + perf entry per host");
    }

    #[test]
    fn queries_answered_from_database() {
        let (mut sim, central, client) = build(2, 3, secs(30));
        sim.run_until(SimTime::ZERO + secs(1));
        let id = sim.invoke::<Mds1Client, _>(client, |c, ctx| {
            c.query(
                ctx,
                central,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
        });
        sim.run_for(secs(1));
        let c = sim.actor::<Mds1Client>(client).unwrap();
        assert_eq!(c.result(id).unwrap().len(), 3);
    }

    #[test]
    fn central_ingest_load_scales_with_providers() {
        let count_pushes = |n: usize| {
            let (mut sim, central, _) = build(3, n, secs(10));
            sim.run_until(SimTime::ZERO + secs(60));
            sim.actor::<Mds1Central>(central).unwrap().pushes_received
        };
        let small = count_pushes(5);
        let large = count_pushes(20);
        assert!(
            large >= small * 3,
            "ingest load must grow with provider count: {small} vs {large}"
        );
    }

    #[test]
    fn staleness_bounded_by_push_interval() {
        let (mut sim, central, client) = build(4, 1, secs(30));
        // Query just before the second push (t≈29.9): data is ~30s old.
        sim.run_until(SimTime::ZERO + secs(29));
        let id = sim.invoke::<Mds1Client, _>(client, |c, ctx| {
            c.query(
                ctx,
                central,
                SearchSpec::subtree(Dn::root(), Filter::parse("(load5=*)").unwrap()),
            )
        });
        sim.run_for(secs(1));
        let cl = sim.actor::<Mds1Client>(client).unwrap();
        let entries = cl.result(id).unwrap().to_vec();
        let staleness = mean_staleness_secs(&entries, sim.now()).unwrap();
        assert!(
            (25.0..35.0).contains(&staleness),
            "staleness {staleness} should be near the push interval"
        );
    }

    #[test]
    fn dead_provider_leaves_stale_entries_behind() {
        // Unlike soft-state GRRP, a centralized push design has no expiry:
        // a crashed provider's data lingers forever.
        let (mut sim, central, client) = build(5, 2, secs(10));
        sim.run_until(SimTime::ZERO + secs(1));
        let prov0 = sim.lookup("prov0").unwrap();
        sim.crash(prov0);
        sim.run_until(SimTime::ZERO + secs(120));
        let id = sim.invoke::<Mds1Client, _>(client, |c, ctx| {
            c.query(
                ctx,
                central,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            )
        });
        sim.run_for(secs(1));
        let cl = sim.actor::<Mds1Client>(client).unwrap();
        assert_eq!(
            cl.result(id).unwrap().len(),
            2,
            "crashed host still listed — the baseline's reliability flaw"
        );
    }
}
