//! Baseline systems the paper positions MDS-2 against (§11).
//!
//! * [`mds1`] — the centralized push-everything directory of MDS-1
//!   (§11.1): ingest load grows with the grid, data is push-period
//!   stale, and dead providers linger (no soft-state expiry);
//! * [`multicast`] — SLP/SDS/Jini-style multicast-scoped discovery
//!   (§11.2): coverage follows physical topology rather than VO
//!   membership, and flood cost follows subnet population.
//!
//! Both are implemented as simulator actors so experiments E7 and E11
//! can compare them head-to-head with the MDS-2 architecture.

#![warn(missing_docs)]

pub mod mds1;
pub mod multicast;

pub use mds1::{mean_staleness_secs, Mds1Central, Mds1Client, Mds1Msg, Mds1Provider};
pub use multicast::{McastAgent, McastClient, McastGroups, McastMsg, ScopeId};
