//! GRIS — the Grid Resource Information Service (§10.3 of the paper).
//!
//! "The MDS-2 release includes a standard, configurable information
//! provider framework called a Grid Resource Information Service (GRIS)
//! ... that can be customized by plugging in specific information
//! sources."
//!
//! * [`provider`] — the provider API (the paper's "well-defined API" that
//!   information sources implement) and namespace-intersection pruning;
//! * [`providers`] — the standard source set: static host, dynamic host,
//!   filesystem, queue, and the NWS gateway over a non-enumerable link
//!   namespace;
//! * [`server`] — the sans-IO GRIS engine: authentication, per-provider
//!   TTL caching, result merging, mandatory final filtering, ACL
//!   redaction, subscriptions, and GRRP registration refresh.

#![warn(missing_docs)]

pub mod archive;
pub mod provider;
pub mod providers;
pub mod server;

pub use archive::{extract_time_range, ArchiveProvider, TimeRange};
pub use provider::{namespace_intersects, InfoProvider, ProviderError};
pub use providers::{
    DynamicHostProvider, FilesystemProvider, HostSpec, NwsGatewayProvider, QueueProvider,
    StaticHostProvider,
};
pub use server::{ClientId, Gris, GrisConfig, GrisQueryPath, GrisStats, TickOutput};
