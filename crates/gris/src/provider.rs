//! The information-provider API (§10.3).
//!
//! "The GRIS communicates with an information provider via a well-defined
//! API ... a GRIS is configured by specifying the type of information to
//! be produced by a provider and the provider-defined set of routines
//! that implement the GRIS API."
//!
//! Providers are *pull-mode* sources: the GRIS invokes [`InfoProvider::fetch`]
//! when (and only when) a query needs them and their cached results have
//! expired. A provider may return a superset of what the query asked for;
//! the GRIS performs the mandatory final filtering.

use gis_ldap::{Dn, Entry};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::SearchSpec;
use std::fmt;

/// Why a provider could not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderError {
    /// The backing source is down or unreachable.
    Unavailable(String),
    /// The query's scope is too wide for a non-enumerable namespace
    /// (§4.1: such providers "might signal an error and/or return partial
    /// results for searches that use too wide a scope").
    TooWide(String),
}

impl fmt::Display for ProviderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderError::Unavailable(s) => write!(f, "provider unavailable: {s}"),
            ProviderError::TooWide(s) => write!(f, "scope too wide: {s}"),
        }
    }
}

impl std::error::Error for ProviderError {}

/// An information source pluggable into a GRIS.
///
/// The `Any` supertrait lets callers downcast a configured provider back
/// to its concrete type for inspection and failure injection.
pub trait InfoProvider: Send + std::any::Any {
    /// Stable provider name (cache key and diagnostics).
    fn name(&self) -> &str;

    /// The DN subtree this provider's entries live under. Used to "prune
    /// search processing: a specific provider's results are only
    /// considered if the provider's namespace intersects the query
    /// scope."
    fn namespace(&self) -> &Dn;

    /// How long this provider's results may be cached. "The appropriate
    /// value depends greatly on both the dynamism of the modeled resource
    /// and the cost of the provider mechanism."
    fn cache_ttl(&self) -> SimDuration;

    /// Whether the GRIS-side cache applies. Providers over non-enumerable
    /// namespaces answer per-query and manage their own caching.
    fn cacheable(&self) -> bool {
        true
    }

    /// Produce entries relevant to `spec` (possibly a superset). The GRIS
    /// applies scope, filter, ACL and projection afterwards.
    fn fetch(&mut self, spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError>;
}

/// True when a provider whose entries live under `namespace` could
/// contribute to a search rooted at `base`: the two subtrees intersect.
/// (Conservative: returns true on any containment either way.)
pub fn namespace_intersects(namespace: &Dn, base: &Dn) -> bool {
    namespace.is_under(base) || base.is_under(namespace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_cases() {
        let host = Dn::parse("hn=hostX").unwrap();
        let perf = Dn::parse("perf=load5, hn=hostX").unwrap();
        let other = Dn::parse("hn=hostY").unwrap();
        let root = Dn::root();

        // Search at the root reaches every provider.
        assert!(namespace_intersects(&host, &root));
        // Search below a provider's namespace reaches it.
        assert!(namespace_intersects(&host, &perf));
        // Provider below the search base is reached.
        assert!(namespace_intersects(&perf, &host));
        // Disjoint subtrees are pruned.
        assert!(!namespace_intersects(&host, &other));
        assert!(!namespace_intersects(&perf, &other));
    }

    #[test]
    fn provider_error_display() {
        assert!(ProviderError::Unavailable("x".into())
            .to_string()
            .contains("x"));
        assert!(ProviderError::TooWide("y".into()).to_string().contains("y"));
    }
}
