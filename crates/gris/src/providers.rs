//! The standard MDS-2 provider set (§10.3): "static host information
//! (operating system version, CPU type, number of processors, etc.),
//! dynamic host information (load average, queue entries, etc.), storage
//! system information (available disk space, total disk space, etc.), and
//! network information via the Network Weather Service."
//!
//! Host sensors are synthetic but deterministic functions of simulated
//! time (see DESIGN.md §3): dynamic values change on a fixed period so
//! staleness experiments are reproducible.

use crate::provider::{InfoProvider, ProviderError};
use gis_ldap::{Dn, Entry, Rdn, Scope};
use gis_netsim::{SimDuration, SimTime};
use gis_nws::{LinkId, Metric, Nws};
use gis_proto::SearchSpec;

/// Deterministic per-step noise in `[-1, 1)` derived from a seed and a
/// time step.
fn step_noise(seed: u64, step: u64) -> f64 {
    let mut z = seed ^ step.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    ((z >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// Static description of a host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Host name (`hn` attribute and RDN).
    pub hostname: String,
    /// Namespace the host lives under (e.g. `o=O1`); root for
    /// organization-less individuals (Figure 5's lone contributor).
    pub parent: Dn,
    /// Operating system string, e.g. `"mips irix"` or `"linux 2.4"`.
    pub system: String,
    /// Processor architecture, e.g. `"x86"`, `"mips"`.
    pub arch: String,
    /// Number of CPUs.
    pub cpu_count: u32,
    /// Physical memory in MB.
    pub memory_mb: u64,
}

impl HostSpec {
    /// A convenience Linux box.
    pub fn linux(hostname: &str, cpus: u32) -> HostSpec {
        HostSpec {
            hostname: hostname.to_owned(),
            parent: Dn::root(),
            system: "linux 2.4".to_owned(),
            arch: "x86".to_owned(),
            cpu_count: cpus,
            memory_mb: 512 * u64::from(cpus),
        }
    }

    /// The Figure 3 IRIX host.
    pub fn irix(hostname: &str, cpus: u32) -> HostSpec {
        HostSpec {
            hostname: hostname.to_owned(),
            parent: Dn::root(),
            system: "mips irix".to_owned(),
            arch: "mips".to_owned(),
            cpu_count: cpus,
            memory_mb: 1024,
        }
    }

    /// Re-home the host under an organization namespace (builder style).
    pub fn at(mut self, parent: Dn) -> HostSpec {
        self.parent = parent;
        self
    }

    /// The host's DN: `hn=<hostname>` under its parent namespace.
    pub fn dn(&self) -> Dn {
        self.parent.child(Rdn::new("hn", self.hostname.clone()))
    }
}

/// Static host information provider: configuration that "changes rarely".
#[derive(Debug)]
pub struct StaticHostProvider {
    spec: HostSpec,
    namespace: Dn,
    name: String,
    /// Invocation counter (experiments read this to measure intrusiveness).
    pub invocations: u64,
}

impl StaticHostProvider {
    /// Create the provider for a host.
    pub fn new(spec: HostSpec) -> StaticHostProvider {
        let namespace = spec.dn();
        let name = format!("static-host:{}", spec.hostname);
        StaticHostProvider {
            spec,
            namespace,
            name,
            invocations: 0,
        }
    }
}

impl InfoProvider for StaticHostProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        // Static data: long TTL (§10.3 — value depends on dynamism).
        SimDuration::from_secs(3600)
    }
    fn fetch(&mut self, _spec: &SearchSpec, _now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        self.invocations += 1;
        let e = Entry::new(self.namespace.clone())
            .with_class("computer")
            .with("hn", self.spec.hostname.clone())
            .with("system", self.spec.system.clone())
            .with("arch", self.spec.arch.clone())
            .with("cpucount", i64::from(self.spec.cpu_count))
            .with("memorymb", self.spec.memory_mb);
        Ok(vec![e])
    }
}

/// Dynamic host information: load averages and a queue-length reading,
/// regenerated each `period` of simulated time.
#[derive(Debug)]
pub struct DynamicHostProvider {
    host_dn: Dn,
    namespace: Dn,
    name: String,
    seed: u64,
    /// Base (long-run mean) 5-minute load.
    pub base_load: f64,
    /// How often the underlying value changes.
    pub period: SimDuration,
    ttl: SimDuration,
    /// Invocation counter.
    pub invocations: u64,
    /// When set, `fetch` fails (failure-injection for tests/experiments).
    pub fail: bool,
}

impl DynamicHostProvider {
    /// Create with the given base load, change period, and cache TTL.
    pub fn new(
        host: &HostSpec,
        seed: u64,
        base_load: f64,
        period: SimDuration,
        ttl: SimDuration,
    ) -> DynamicHostProvider {
        let host_dn = host.dn();
        DynamicHostProvider {
            namespace: host_dn.child(Rdn::new("perf", "load")),
            name: format!("dynamic-host:{}", host.hostname),
            host_dn,
            seed,
            base_load,
            period,
            ttl,
            invocations: 0,
            fail: false,
        }
    }

    /// The true instantaneous load at `now` (ground truth for staleness
    /// experiments): base + slow diurnal-ish wave + per-step noise. The
    /// value is piecewise-constant over `period` (load averages are
    /// sampled quantities, and experiments need a discrete change
    /// process).
    pub fn true_load(&self, now: SimTime) -> f64 {
        let step = now.micros() / self.period.micros().max(1);
        let step_secs = (step * self.period.micros()) as f64 / 1e6;
        let wave = (step_secs / 300.0 * std::f64::consts::TAU).sin();
        (self.base_load + 0.8 * wave + 0.6 * step_noise(self.seed, step)).max(0.0)
    }
}

impl InfoProvider for DynamicHostProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        self.ttl
    }
    fn fetch(&mut self, _spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        if self.fail {
            return Err(ProviderError::Unavailable(self.name.clone()));
        }
        self.invocations += 1;
        let load5 = self.true_load(now);
        let load1 = (load5
            + 0.4 * step_noise(self.seed ^ 1, now.micros() / self.period.micros().max(1)))
        .max(0.0);
        let e = Entry::new(self.namespace.clone())
            .with_class("perf")
            .with_class("loadaverage")
            .with("period", (self.period.micros() / 1_000_000) as i64)
            .with("load1", load1)
            .with("load5", load5)
            .with("measuredat", now.micros());
        Ok(vec![e])
    }
}

impl DynamicHostProvider {
    /// The DN of the host this provider describes.
    pub fn host_dn(&self) -> &Dn {
        &self.host_dn
    }
}

/// Storage (filesystem) information provider.
#[derive(Debug)]
pub struct FilesystemProvider {
    namespace: Dn,
    name: String,
    /// Mount path.
    pub path: String,
    /// Total capacity in MB.
    pub total_mb: u64,
    seed: u64,
    period: SimDuration,
    ttl: SimDuration,
    /// Invocation counter.
    pub invocations: u64,
}

impl FilesystemProvider {
    /// Create for store `store_name` on `host`.
    pub fn new(
        host: &HostSpec,
        store_name: &str,
        path: &str,
        total_mb: u64,
        seed: u64,
        ttl: SimDuration,
    ) -> FilesystemProvider {
        FilesystemProvider {
            namespace: host.dn().child(Rdn::new("store", store_name)),
            name: format!("filesystem:{}:{store_name}", host.hostname),
            path: path.to_owned(),
            total_mb,
            seed,
            period: SimDuration::from_secs(60),
            ttl,
            invocations: 0,
        }
    }

    /// Ground-truth free space at `now`: 30–90% of capacity, wandering.
    pub fn true_free_mb(&self, now: SimTime) -> u64 {
        let step = now.micros() / self.period.micros().max(1);
        let frac = 0.6 + 0.3 * step_noise(self.seed, step);
        (self.total_mb as f64 * frac) as u64
    }
}

impl InfoProvider for FilesystemProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        self.ttl
    }
    fn fetch(&mut self, _spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        self.invocations += 1;
        let e = Entry::new(self.namespace.clone())
            .with_class("storage")
            .with_class("filesystem")
            .with("path", self.path.clone())
            .with("total", self.total_mb)
            .with("free", self.true_free_mb(now));
        Ok(vec![e])
    }
}

/// Batch-queue information provider (Figure 3's `queue=default` entry).
#[derive(Debug)]
pub struct QueueProvider {
    namespace: Dn,
    name: String,
    url: String,
    seed: u64,
    /// Mean number of queued jobs.
    pub mean_jobs: f64,
    ttl: SimDuration,
    /// Invocation counter.
    pub invocations: u64,
}

impl QueueProvider {
    /// Create for queue `queue_name` on `host`.
    pub fn new(
        host: &HostSpec,
        queue_name: &str,
        mean_jobs: f64,
        seed: u64,
        ttl: SimDuration,
    ) -> QueueProvider {
        QueueProvider {
            namespace: host.dn().child(Rdn::new("queue", queue_name)),
            name: format!("queue:{}:{queue_name}", host.hostname),
            url: format!("gram://{}/{queue_name}", host.hostname),
            seed,
            mean_jobs,
            ttl,
            invocations: 0,
        }
    }
}

impl InfoProvider for QueueProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        self.ttl
    }
    fn fetch(&mut self, _spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        self.invocations += 1;
        let step = now.micros() / 30_000_000; // 30s resolution
        let jobs = (self.mean_jobs * (1.0 + step_noise(self.seed, step))).max(0.0) as i64;
        let e = Entry::new(self.namespace.clone())
            .with_class("service")
            .with_class("queue")
            .with("url", self.url.clone())
            .with("dispatchtype", "immediate")
            .with("jobcount", jobs);
        Ok(vec![e])
    }
}

/// NWS gateway provider: serves the non-enumerable `link=<src>-<dst>`
/// namespace by handing queries to the Network Weather Service (§4.1).
pub struct NwsGatewayProvider {
    namespace: Dn,
    name: String,
    nws: Nws,
    /// Invocation counter (actual NWS hand-offs).
    pub invocations: u64,
}

impl NwsGatewayProvider {
    /// Create a gateway serving `nn=<network_name>` with the given NWS
    /// backend.
    pub fn new(network_name: &str, nws: Nws) -> NwsGatewayProvider {
        NwsGatewayProvider {
            namespace: Dn::from_rdns(vec![Rdn::new("nn", network_name)]),
            name: format!("nws:{network_name}"),
            nws,
            invocations: 0,
        }
    }

    /// Access to the underlying NWS (for experiment reporting).
    pub fn nws(&self) -> &Nws {
        &self.nws
    }

    /// Parse `link=src-dst` from the most specific RDN of a DN.
    fn parse_link(dn: &Dn) -> Option<LinkId> {
        let rdn = dn.rdn()?;
        if rdn.attr() != "link" {
            return None;
        }
        let (src, dst) = rdn.value().split_once('-')?;
        if src.is_empty() || dst.is_empty() {
            return None;
        }
        Some(LinkId::new(src, dst))
    }
}

impl InfoProvider for NwsGatewayProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        SimDuration::ZERO // self-caching inside the NWS
    }
    fn cacheable(&self) -> bool {
        false
    }
    fn fetch(&mut self, spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        // The namespace is infinite: only queries naming a specific link
        // can be materialized. A subtree search rooted at (or above) the
        // gateway itself is "too wide" (§4.1).
        let link = match Self::parse_link(&spec.base) {
            Some(link)
                if spec.base.is_under(&self.namespace) && matches!(spec.scope, Scope::Base) =>
            {
                link
            }
            _ => {
                return Err(ProviderError::TooWide(format!(
                    "namespace {} is not enumerable; look up a specific link=src-dst entry",
                    self.namespace
                )));
            }
        };
        self.invocations += 1;
        let bw = self.nws.query(&link, Metric::BandwidthMbps, now);
        let lat = self.nws.query(&link, Metric::LatencyMs, now);
        let e = Entry::new(spec.base.clone())
            .with_class("networklink")
            .with("src", link.src.clone())
            .with("dst", link.dst.clone())
            .with("bandwidth", bw.measured)
            .with("predictedbandwidth", bw.predicted)
            .with("latency", lat.measured)
            .with("predictedlatency", lat.predicted)
            .with("measuredat", bw.measured_at.micros());
        Ok(vec![e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    fn any_spec(base: &str) -> SearchSpec {
        SearchSpec::subtree(Dn::parse(base).unwrap(), gis_ldap::Filter::always())
    }

    #[test]
    fn static_host_entry_shape() {
        let mut p = StaticHostProvider::new(HostSpec::irix("hostX", 8));
        let entries = p.fetch(&any_spec("hn=hostX"), t(0)).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert!(e.has_class("computer"));
        assert_eq!(e.get_str("system"), Some("mips irix"));
        assert_eq!(e.get_i64("cpucount"), Some(8));
        assert_eq!(p.invocations, 1);
    }

    #[test]
    fn dynamic_load_changes_over_time_and_is_deterministic() {
        let host = HostSpec::linux("h1", 4);
        let mut p = DynamicHostProvider::new(&host, 42, 1.5, secs(10), secs(30));
        let a = p.fetch(&any_spec("hn=h1"), t(0)).unwrap()[0]
            .get_f64("load5")
            .unwrap();
        let b = p.fetch(&any_spec("hn=h1"), t(100)).unwrap()[0]
            .get_f64("load5")
            .unwrap();
        assert_ne!(a, b, "load must vary");
        // Deterministic: a fresh provider with the same seed agrees.
        let mut q = DynamicHostProvider::new(&host, 42, 1.5, secs(10), secs(30));
        let a2 = q.fetch(&any_spec("hn=h1"), t(0)).unwrap()[0]
            .get_f64("load5")
            .unwrap();
        assert_eq!(a, a2);
        assert!(a >= 0.0 && b >= 0.0);
    }

    #[test]
    fn dynamic_failure_injection() {
        let host = HostSpec::linux("h1", 4);
        let mut p = DynamicHostProvider::new(&host, 42, 1.5, secs(10), secs(30));
        p.fail = true;
        assert!(matches!(
            p.fetch(&any_spec("hn=h1"), t(0)),
            Err(ProviderError::Unavailable(_))
        ));
    }

    #[test]
    fn filesystem_free_space_bounded() {
        let host = HostSpec::linux("h1", 4);
        let mut p =
            FilesystemProvider::new(&host, "scratch", "/disks/scratch1", 40_000, 7, secs(60));
        for s in [0u64, 60, 600, 3600] {
            let e = &p.fetch(&any_spec("hn=h1"), t(s)).unwrap()[0];
            let free = e.get_i64("free").unwrap() as u64;
            assert!(free <= 40_000);
            assert_eq!(e.get_str("path"), Some("/disks/scratch1"));
        }
    }

    #[test]
    fn queue_provider_entry() {
        let host = HostSpec::irix("hostX", 4);
        let mut p = QueueProvider::new(&host, "default", 5.0, 3, secs(30));
        let e = &p.fetch(&any_spec("hn=hostX"), t(0)).unwrap()[0];
        assert!(e.has_class("queue"));
        assert_eq!(e.get_str("url"), Some("gram://hostX/default"));
        assert!(e.get_i64("jobcount").unwrap() >= 0);
        assert_eq!(e.dn().to_string(), "queue=default, hn=hostX");
    }

    #[test]
    fn nws_gateway_serves_named_links_lazily() {
        let nws = Nws::new(1, secs(10));
        let mut p = NwsGatewayProvider::new("wan", nws);
        let spec = SearchSpec::lookup(Dn::parse("link=siteA-siteB, nn=wan").unwrap());
        let e = &p.fetch(&spec, t(0)).unwrap()[0];
        assert!(e.has_class("networklink"));
        assert_eq!(e.get_str("src"), Some("siteA"));
        assert_eq!(e.get_str("dst"), Some("siteB"));
        assert!(e.get_f64("bandwidth").unwrap() > 0.0);
        assert!(e.get_f64("predictedlatency").unwrap() > 0.0);
        assert_eq!(p.invocations, 1);
    }

    #[test]
    fn nws_gateway_rejects_wide_searches() {
        let nws = Nws::new(1, secs(10));
        let mut p = NwsGatewayProvider::new("wan", nws);
        // Subtree search over the whole gateway: non-enumerable.
        let err = p.fetch(&any_spec("nn=wan"), t(0)).unwrap_err();
        assert!(matches!(err, ProviderError::TooWide(_)));
    }

    #[test]
    fn nws_gateway_rejects_malformed_links() {
        let nws = Nws::new(1, secs(10));
        let mut p = NwsGatewayProvider::new("wan", nws);
        for bad in [
            "link=nodash, nn=wan",
            "link=-b, nn=wan",
            "link=a-, nn=wan",
            "x=y, nn=wan",
        ] {
            let spec = SearchSpec::lookup(Dn::parse(bad).unwrap());
            assert!(p.fetch(&spec, t(0)).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn nws_gateway_outside_namespace() {
        let nws = Nws::new(1, secs(10));
        let mut p = NwsGatewayProvider::new("wan", nws);
        let spec = SearchSpec::lookup(Dn::parse("link=a-b, nn=other").unwrap());
        assert!(p.fetch(&spec, t(0)).is_err());
    }
}
