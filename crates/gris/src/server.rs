//! The GRIS server engine (§10.3).
//!
//! "GRIS authenticates and parses each incoming GRIP request and then
//! dispatches those requests to one or more 'local' information
//! providers, depending on the type of information named in the request.
//! Results are then merged back to the client. To efficiently prune
//! search processing, a specific provider's results are only considered
//! if the provider's namespace intersects the query scope."
//!
//! The engine is sans-IO: `handle_request` consumes a request and yields
//! replies; `tick` advances timers (registration refreshes, subscription
//! deliveries). Runtimes in `gis-core` move the messages.
//!
//! # Concurrent read path
//!
//! Queries are the hot path ("numerous concurrent enquiries", §5), so
//! [`Gris::search`] takes `&self` and every piece of state it touches is
//! safe to share across threads:
//!
//! * hot counters are atomics ([`gis_proto::Counter`], `Relaxed` — they
//!   carry no synchronization);
//! * each provider slot guards its provider behind its own mutex and its
//!   result cache behind its own reader-writer lock (striped by
//!   provider), so cache hits on different providers never contend and a
//!   hit never waits on a fetch in flight;
//! * bind sessions live behind a reader-writer lock.
//!
//! [`Gris::query_path`] packages this shared state into a cloneable
//! [`GrisQueryPath`] handle the live runtime hands to its query worker
//! threads, while mutation (registration refresh, subscriptions, GRRP)
//! stays with the engine's owner.

use crate::provider::{namespace_intersects, InfoProvider, ProviderError};
use gis_gsi::{Authenticator, PolicyMap, Requester};
use gis_ldap::{Dn, Entry, LdapUrl, Schema, Scope, Strictness};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{
    result_digest, Counter, GripReply, GripRequest, GrrpMessage, RegistrationAgent, RequestId,
    ResultCode, SearchSpec, SubscriptionMode, SubscriptionTable,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a client connection to this server (assigned by the
/// runtime: a sim node id, a channel index, ...).
pub type ClientId = u64;

/// Operational counters (experiments report these). This is the plain
/// snapshot type returned by [`Gris::stats`]; the live counters are
/// atomics updated through shared references.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrisStats {
    /// Search/lookup requests served.
    pub queries: u64,
    /// Provider `fetch` calls actually made.
    pub provider_invocations: u64,
    /// Queries (per provider touched) answered from the result cache.
    pub cache_hits: u64,
    /// Cache misses (fetch required).
    pub cache_misses: u64,
    /// Entries returned to clients.
    pub entries_returned: u64,
    /// Successful binds.
    pub binds_ok: u64,
    /// Failed binds.
    pub binds_failed: u64,
    /// Subscription updates pushed.
    pub updates_sent: u64,
    /// Provider entries dropped for violating the configured schema.
    pub schema_violations: u64,
    /// Provider failures answered from the last-known-good cache
    /// (serve-stale degraded mode).
    pub stale_served: u64,
    /// Provider failures with no cache to fall back on (entries omitted,
    /// answer partial).
    pub provider_failures: u64,
}

/// The atomic counterpart of [`GrisStats`], shared between the owner and
/// query workers.
#[derive(Debug, Default)]
struct GrisStatsAtomic {
    queries: Counter,
    provider_invocations: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    entries_returned: Counter,
    binds_ok: Counter,
    binds_failed: Counter,
    updates_sent: Counter,
    schema_violations: Counter,
    stale_served: Counter,
    provider_failures: Counter,
}

impl GrisStatsAtomic {
    fn snapshot(&self) -> GrisStats {
        GrisStats {
            queries: self.queries.get(),
            provider_invocations: self.provider_invocations.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            entries_returned: self.entries_returned.get(),
            binds_ok: self.binds_ok.get(),
            binds_failed: self.binds_failed.get(),
            updates_sent: self.updates_sent.get(),
            schema_violations: self.schema_violations.get(),
            stale_served: self.stale_served.get(),
            provider_failures: self.provider_failures.get(),
        }
    }
}

/// One configured provider and its private cache. The provider sits
/// behind its own mutex (taken only to fetch) and the cache behind its
/// own reader-writer lock, so the locking is striped per provider:
/// concurrent cache hits share read locks, and a fetch for one provider
/// never blocks hits on another.
struct Slot {
    /// Copied from the provider at registration so the read path can
    /// prune and probe caches without locking the provider.
    name: String,
    namespace: Dn,
    cacheable: bool,
    cache_ttl: SimDuration,
    provider: Mutex<Box<dyn InfoProvider>>,
    /// Last successful fetch. Kept past its TTL to back the serve-stale
    /// degraded mode.
    cached: RwLock<Option<(SimTime, Arc<Vec<Entry>>)>>,
}

/// GRIS configuration.
pub struct GrisConfig {
    /// This server's own GRIP endpoint (its global name, §4.1).
    pub url: LdapUrl,
    /// The DN suffix this server serves (e.g. `hn=hostX`).
    pub suffix: Dn,
    /// Per-subtree access control (§7).
    pub policy: PolicyMap,
    /// When present, binds are verified against this; when absent, all
    /// clients remain anonymous (§7's open model).
    pub authenticator: Option<Authenticator>,
    /// When present, outgoing GRRP registrations are signed with this
    /// credential ("we can cryptographically sign each GRRP message with
    /// the credentials of the registering entity", §7).
    pub credential: Option<gis_gsi::Credential>,
    /// When present, provider output is validated against this schema
    /// (§8's type authorities: "it can be desirable to be able to enforce
    /// standard formats for entity descriptions"). Invalid entries are
    /// dropped and counted, never served. `None` skips validation — the
    /// paper's "support but not force" stance.
    pub schema: Option<(Schema, Strictness)>,
    /// Serve-stale window: when a provider reports `Unavailable` and its
    /// last successful fetch is at most this old, the cached entries are
    /// served anyway — stamped `stale: TRUE` with their age — instead of
    /// silently vanishing from the answer (the fault-tolerant-BDII
    /// last-known-good idiom; the paper's "as much partial or even
    /// inconsistent information as is available", §2.2). `None` disables
    /// the degraded mode: failures omit the provider's entries.
    pub stale_ttl: Option<SimDuration>,
    /// When true, a multi-provider search resolves its cache misses on
    /// scoped threads instead of invoking providers sequentially, so one
    /// slow provider does not add its latency to every other's. Results
    /// are still merged in provider registration order, keeping output
    /// identical to the sequential path. Off by default (the simulated
    /// runtime keeps the deterministic sequential path).
    pub parallel_fetch: bool,
}

impl GrisConfig {
    /// An open (no-security) GRIS at `url` serving `suffix`.
    pub fn open(url: LdapUrl, suffix: Dn) -> GrisConfig {
        GrisConfig {
            url,
            suffix,
            policy: PolicyMap::open(),
            authenticator: None,
            credential: None,
            schema: None,
            stale_ttl: None,
            parallel_fetch: false,
        }
    }
}

/// A Grid Resource Information Service instance.
pub struct Gris {
    /// Configuration (public for inspection). Frozen once a
    /// [`GrisQueryPath`] has been created: the handle captures the
    /// query-relevant parts at creation time.
    pub config: GrisConfig,
    slots: Arc<Vec<Slot>>,
    /// The GRRP refresh agent; add directory targets to join VOs.
    pub agent: RegistrationAgent,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    subs: SubscriptionTable<ClientId>,
    sub_requester: BTreeMap<(ClientId, RequestId), Requester>,
    sub_next_due: BTreeMap<(ClientId, RequestId), SimTime>,
    stats: Arc<GrisStatsAtomic>,
}

/// What a `tick` produced: messages for the runtime to transmit.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// GRRP registrations to send, as `(directory, message)`.
    pub registrations: Vec<(LdapUrl, GrrpMessage)>,
    /// Subscription updates to deliver, as `(client, reply)`.
    pub updates: Vec<(ClientId, GripReply)>,
}

/// What one provider slot contributed to a search.
enum SlotData {
    /// Fresh entries, shared with the slot cache (no copy).
    Fresh(Arc<Vec<Entry>>),
    /// Last-known-good entries stamped `stale`/`staleage` (degraded).
    Stale(Vec<Entry>),
    /// Provider unavailable with nothing to fall back on (partial).
    Failed,
    /// Provider refused the scope.
    TooWide,
}

/// Borrowed view of everything the query path needs. [`Gris::search`]
/// builds it from `&self`; [`GrisQueryPath::search`] from its captured
/// clones — both run the same code.
struct ReadPathRef<'a> {
    suffix: &'a Dn,
    policy: &'a PolicyMap,
    schema: Option<&'a (Schema, Strictness)>,
    stale_ttl: Option<SimDuration>,
    parallel_fetch: bool,
    slots: &'a [Slot],
    stats: &'a GrisStatsAtomic,
}

impl ReadPathRef<'_> {
    /// Probe a slot's cache without touching the provider. `Some` is a
    /// countable cache hit.
    fn probe_cache(&self, slot: &Slot, now: SimTime) -> Option<Arc<Vec<Entry>>> {
        if !slot.cacheable {
            return None;
        }
        let guard = slot.cached.read();
        let (at, entries) = guard.as_ref()?;
        (now.since(*at) < slot.cache_ttl).then(|| Arc::clone(entries))
    }

    /// Produce a slot's contribution, consulting cache, provider, and the
    /// serve-stale fallback.
    fn resolve_slot(&self, slot: &Slot, spec: &SearchSpec, now: SimTime) -> SlotData {
        if let Some(entries) = self.probe_cache(slot, now) {
            self.stats.cache_hits.bump();
            return SlotData::Fresh(entries);
        }
        let mut provider = slot.provider.lock();
        // Double-check under the provider lock: a concurrent worker may
        // have completed the same fetch while we waited. (Single-threaded
        // callers never hit this branch, keeping their counters exactly
        // as before.)
        if let Some(entries) = self.probe_cache(slot, now) {
            self.stats.cache_hits.bump();
            return SlotData::Fresh(entries);
        }
        self.stats.cache_misses.bump();
        match provider.fetch(spec, now) {
            Ok(entries) => {
                self.stats.provider_invocations.bump();
                let entries = Arc::new(entries);
                if slot.cacheable {
                    *slot.cached.write() = Some((now, Arc::clone(&entries)));
                }
                SlotData::Fresh(entries)
            }
            Err(ProviderError::Unavailable(_)) => {
                // Degraded serve-stale mode: fall back to the
                // last-known-good fetch when it is still inside the stale
                // window, stamping each entry so consumers can see (and
                // filter on) its age.
                let stale = self.stale_ttl.and_then(|window| {
                    let guard = slot.cached.read();
                    guard
                        .as_ref()
                        .filter(|(at, _)| now.since(*at) <= window)
                        .map(|(at, entries)| (*at, Arc::clone(entries)))
                });
                match stale {
                    Some((at, entries)) => {
                        self.stats.stale_served.bump();
                        let age_secs = now.since(at).micros() / 1_000_000;
                        SlotData::Stale(
                            entries
                                .iter()
                                .map(|e| {
                                    let mut e = e.clone();
                                    e.add("stale", "TRUE");
                                    e.add("staleage", age_secs);
                                    e
                                })
                                .collect(),
                        )
                    }
                    None => {
                        self.stats.provider_failures.bump();
                        SlotData::Failed
                    }
                }
            }
            Err(ProviderError::TooWide(_)) => SlotData::TooWide,
        }
    }

    /// The core search path: prune providers by namespace, consult
    /// caches, merge, redact, filter, project.
    fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (ResultCode, Vec<Entry>) {
        self.stats.queries.bump();

        // A search rooted entirely outside this server's namespace names
        // nothing we serve.
        if !namespace_intersects(self.suffix, &spec.base) && !self.suffix.is_root() {
            return (ResultCode::NoSuchObject, Vec::new());
        }

        let eligible: Vec<&Slot> = self
            .slots
            .iter()
            .filter(|s| namespace_intersects(&s.namespace, &spec.base))
            .collect();

        // Resolve every eligible slot. Cache hits are answered inline;
        // with `parallel_fetch`, two or more outstanding provider calls
        // fan out across scoped threads instead of queueing behind each
        // other. Contributions are merged in slot order either way, so
        // both paths produce identical output.
        let mut data: Vec<Option<SlotData>> = Vec::with_capacity(eligible.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, slot) in eligible.iter().enumerate() {
            match self.probe_cache(slot, now) {
                Some(entries) => {
                    self.stats.cache_hits.bump();
                    data.push(Some(SlotData::Fresh(entries)));
                }
                None => {
                    data.push(None);
                    missing.push(i);
                }
            }
        }
        if self.parallel_fetch && missing.len() >= 2 {
            let resolved = std::thread::scope(|sc| {
                let handles: Vec<_> = missing
                    .iter()
                    .map(|&i| {
                        let slot = eligible[i];
                        sc.spawn(move || self.resolve_slot(slot, spec, now))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("provider fetch thread"))
                    .collect::<Vec<_>>()
            });
            for (&i, d) in missing.iter().zip(resolved) {
                data[i] = Some(d);
            }
        } else {
            for &i in &missing {
                data[i] = Some(self.resolve_slot(eligible[i], spec, now));
            }
        }

        let mut partial = false;
        let mut degraded = false;
        let mut too_wide = false;
        let mut merged: BTreeMap<String, Entry> = BTreeMap::new();
        let mut merge_entry = |e: &Entry| {
            if let Some((schema, strictness)) = self.schema {
                if schema.validate(e, *strictness).is_err() {
                    self.stats.schema_violations.bump();
                    return;
                }
            }
            match merged.get_mut(&e.dn().to_string()) {
                Some(existing) => existing.merge_from(e),
                None => {
                    merged.insert(e.dn().to_string(), e.clone());
                }
            }
        };
        for d in data.into_iter().flatten() {
            match d {
                SlotData::Fresh(entries) => entries.iter().for_each(&mut merge_entry),
                SlotData::Stale(entries) => {
                    degraded = true;
                    entries.iter().for_each(&mut merge_entry);
                }
                SlotData::Failed => partial = true,
                SlotData::TooWide => too_wide = true,
            }
        }

        // Mandatory final filtering (§10.3): scope and filter semantics
        // are enforced here, not in providers — and ACL redaction happens
        // *before* filter evaluation so filters cannot probe hidden
        // attributes.
        let mut results = Vec::new();
        let mut truncated = false;
        for entry in merged.into_values() {
            let dn = entry.dn();
            let in_scope = match spec.scope {
                Scope::Base => dn == &spec.base,
                Scope::One => dn.is_child_of(&spec.base),
                Scope::Sub => dn.is_under(&spec.base),
            };
            if !in_scope {
                continue;
            }
            let Some(redacted) = self.policy.redact(&entry, requester) else {
                continue;
            };
            if !spec.filter.matches(&redacted) {
                continue;
            }
            results.push(redacted.project(&spec.attrs));
            if spec.size_limit != 0 && results.len() >= spec.size_limit as usize {
                truncated = true;
                break;
            }
        }

        let code = if truncated {
            ResultCode::SizeLimitExceeded
        } else if too_wide && results.is_empty() {
            ResultCode::UnwillingToPerform
        } else if partial {
            // Entries are genuinely missing (a failed provider had no
            // usable last-known-good data). Dominates StaleResults.
            ResultCode::PartialResults
        } else if degraded {
            ResultCode::StaleResults
        } else {
            ResultCode::Success
        };
        (code, results)
    }
}

/// A cloneable handle over a GRIS's concurrent query state: everything a
/// worker thread needs to answer `Search` requests without the engine's
/// owner. Created by [`Gris::query_path`]; the configuration slice it
/// captures (suffix, policy, schema, stale window) is frozen at creation.
#[derive(Clone)]
pub struct GrisQueryPath {
    suffix: Dn,
    policy: PolicyMap,
    schema: Option<(Schema, Strictness)>,
    stale_ttl: Option<SimDuration>,
    parallel_fetch: bool,
    slots: Arc<Vec<Slot>>,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    stats: Arc<GrisStatsAtomic>,
}

impl GrisQueryPath {
    fn read_path(&self) -> ReadPathRef<'_> {
        ReadPathRef {
            suffix: &self.suffix,
            policy: &self.policy,
            schema: self.schema.as_ref(),
            stale_ttl: self.stale_ttl,
            parallel_fetch: self.parallel_fetch,
            slots: &self.slots,
            stats: &self.stats,
        }
    }

    /// Run a search against the shared read path.
    pub fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (ResultCode, Vec<Entry>) {
        self.read_path().search(spec, requester, now)
    }

    /// Handle a request if it is query-path work (`Search`); every other
    /// request is returned to the caller for the engine's owner
    /// (mutations: bind, subscriptions).
    // Err carries the request back unboxed: the worker forwards it to
    // the owner channel by value, so boxing would be an extra
    // allocation on a path taken for every non-Search message.
    #[allow(clippy::result_large_err)]
    pub fn handle_query(
        &self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Result<Vec<GripReply>, GripRequest> {
        match req {
            GripRequest::Search { id, spec } => {
                let requester = self
                    .sessions
                    .read()
                    .get(&client)
                    .cloned()
                    .unwrap_or_else(Requester::anonymous);
                let (code, entries) = self.search(&spec, &requester, now);
                self.stats.entries_returned.add(entries.len() as u64);
                Ok(vec![GripReply::SearchResult {
                    id,
                    code,
                    entries,
                    referrals: Vec::new(),
                }])
            }
            other => Err(other),
        }
    }
}

impl Gris {
    /// Create a GRIS with the given registration cadence. The TTL attached
    /// to registrations should exceed the interval (typically 3×) so
    /// isolated message loss does not expire the soft state (§4.3).
    pub fn new(config: GrisConfig, reg_interval: SimDuration, reg_ttl: SimDuration) -> Gris {
        let agent = RegistrationAgent::new(
            config.url.clone(),
            config.suffix.clone(),
            reg_interval,
            reg_ttl,
        );
        Gris {
            config,
            slots: Arc::new(Vec::new()),
            agent,
            sessions: Arc::new(RwLock::new(BTreeMap::new())),
            subs: SubscriptionTable::new(),
            sub_requester: BTreeMap::new(),
            sub_next_due: BTreeMap::new(),
            stats: Arc::new(GrisStatsAtomic::default()),
        }
    }

    /// Plug in an information provider. Providers are configured before
    /// the engine starts serving; this panics if a [`GrisQueryPath`]
    /// handle already exists.
    pub fn add_provider(&mut self, provider: Box<dyn InfoProvider>) {
        let slot = Slot {
            name: provider.name().to_owned(),
            namespace: provider.namespace().clone(),
            cacheable: provider.cacheable(),
            cache_ttl: provider.cache_ttl(),
            provider: Mutex::new(provider),
            cached: RwLock::new(None),
        };
        Arc::get_mut(&mut self.slots)
            .expect("providers are configured before query handles are created")
            .push(slot);
    }

    /// Number of configured providers.
    pub fn provider_count(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot of the operational counters.
    pub fn stats(&self) -> GrisStats {
        self.stats.snapshot()
    }

    /// A cloneable concurrent-query handle sharing this engine's slots,
    /// sessions and counters. The config slice it captures is frozen at
    /// this point.
    pub fn query_path(&self) -> GrisQueryPath {
        GrisQueryPath {
            suffix: self.config.suffix.clone(),
            policy: self.config.policy.clone(),
            schema: self.config.schema.clone(),
            stale_ttl: self.config.stale_ttl,
            parallel_fetch: self.config.parallel_fetch,
            slots: Arc::clone(&self.slots),
            sessions: Arc::clone(&self.sessions),
            stats: Arc::clone(&self.stats),
        }
    }

    /// Mutable access to a provider by name, downcast to its concrete
    /// type (experiments use this for failure injection and counter
    /// reads). `None` once query handles exist.
    pub fn provider_mut<T: InfoProvider>(&mut self, name: &str) -> Option<&mut T> {
        let slots = Arc::get_mut(&mut self.slots)?;
        slots.iter_mut().find(|s| s.name == name).and_then(|s| {
            let any: &mut dyn std::any::Any = s.provider.get_mut().as_mut();
            any.downcast_mut::<T>()
        })
    }

    /// Shared access to a provider by name, downcast to its concrete
    /// type. Takes `&mut self` because the provider sits behind the
    /// slot's lock, which is bypassed through exclusive access.
    pub fn provider<T: InfoProvider>(&mut self, name: &str) -> Option<&T> {
        self.provider_mut::<T>(name).map(|p| &*p)
    }

    /// The requester identity associated with a client (anonymous until a
    /// successful bind).
    pub fn requester_of(&self, client: ClientId) -> Requester {
        self.sessions
            .read()
            .get(&client)
            .cloned()
            .unwrap_or_else(Requester::anonymous)
    }

    /// Handle one GRIP request from `client`, returning the replies to
    /// send back to that client.
    pub fn handle_request(
        &mut self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Vec<GripReply> {
        match req {
            GripRequest::Bind {
                id,
                subject: _,
                token,
            } => {
                let outcome = self
                    .config
                    .authenticator
                    .as_ref()
                    .and_then(|auth| auth.authenticate(&token));
                match outcome {
                    Some(subject) => {
                        self.stats.binds_ok.bump();
                        self.sessions
                            .write()
                            .insert(client, Requester::subject(subject.clone()));
                        vec![GripReply::BindResult {
                            id,
                            ok: true,
                            subject: Some(subject),
                        }]
                    }
                    None => {
                        self.stats.binds_failed.bump();
                        vec![GripReply::BindResult {
                            id,
                            ok: false,
                            subject: None,
                        }]
                    }
                }
            }
            GripRequest::Search { id, spec } => {
                let requester = self.requester_of(client);
                let (code, entries) = self.search(&spec, &requester, now);
                self.stats.entries_returned.add(entries.len() as u64);
                vec![GripReply::SearchResult {
                    id,
                    code,
                    entries,
                    referrals: Vec::new(),
                }]
            }
            GripRequest::Subscribe { id, spec, mode } => {
                let requester = self.requester_of(client);
                self.subs.subscribe(client, id, spec.clone(), mode);
                self.sub_requester.insert((client, id), requester.clone());
                if let SubscriptionMode::Periodic(period) = mode {
                    self.sub_next_due.insert((client, id), now + period);
                }
                // Initial snapshot is delivered immediately.
                let (_, entries) = self.search(&spec, &requester, now);
                self.note_delivery(client, id, &entries);
                self.stats.updates_sent.bump();
                vec![GripReply::Update { id, entries }]
            }
            GripRequest::Unsubscribe { id } => {
                let existed = self.subs.unsubscribe(client, id);
                self.sub_requester.remove(&(client, id));
                self.sub_next_due.remove(&(client, id));
                vec![GripReply::SubscriptionDone {
                    id,
                    code: if existed {
                        ResultCode::Success
                    } else {
                        ResultCode::NoSuchObject
                    },
                }]
            }
        }
    }

    /// Handle an incoming GRRP message (a GRIS receives invitations).
    /// Returns true if the invitation added a new registration target.
    pub fn handle_grrp(&mut self, msg: &GrrpMessage) -> bool {
        self.agent.accept_invite(msg)
    }

    /// Forget all session/subscription state for a disconnected client.
    pub fn drop_client(&mut self, client: ClientId) {
        self.sessions.write().remove(&client);
        self.subs.drop_subscriber(client);
        self.sub_requester.retain(|(c, _), _| *c != client);
        self.sub_next_due.retain(|(c, _), _| *c != client);
    }

    /// Advance timers: emit due GRRP registrations and subscription
    /// deliveries.
    pub fn tick(&mut self, now: SimTime) -> TickOutput {
        let mut registrations = self.agent.due_messages(now);
        if let Some(cred) = &self.config.credential {
            for (_, msg) in &mut registrations {
                msg.subject = Some(cred.subject().to_owned());
                let blob = gis_gsi::sign_registration(cred, &msg.signable_bytes());
                msg.signature = Some(blob);
            }
        }
        let mut out = TickOutput {
            registrations,
            updates: Vec::new(),
        };
        // Evaluate subscriptions. Collect due work first to avoid holding
        // a borrow of `subs` across the search.
        let mut due: Vec<(
            ClientId,
            RequestId,
            SearchSpec,
            SubscriptionMode,
            Option<u64>,
        )> = Vec::new();
        for (client, id, sub) in self.subs.iter_mut() {
            match sub.mode {
                SubscriptionMode::Periodic(_) => {
                    due.push((client, id, sub.spec.clone(), sub.mode, sub.last_digest))
                }
                SubscriptionMode::OnChange => {
                    due.push((client, id, sub.spec.clone(), sub.mode, sub.last_digest))
                }
            }
        }
        for (client, id, spec, mode, last_digest) in due {
            match mode {
                SubscriptionMode::Periodic(period) => {
                    let due_at = self.sub_next_due.get(&(client, id)).copied().unwrap_or(now);
                    if now < due_at {
                        continue;
                    }
                    let requester = self
                        .sub_requester
                        .get(&(client, id))
                        .cloned()
                        .unwrap_or_else(Requester::anonymous);
                    let (_, entries) = self.search(&spec, &requester, now);
                    self.note_delivery(client, id, &entries);
                    self.sub_next_due.insert((client, id), due_at + period);
                    self.stats.updates_sent.bump();
                    out.updates
                        .push((client, GripReply::Update { id, entries }));
                }
                SubscriptionMode::OnChange => {
                    let requester = self
                        .sub_requester
                        .get(&(client, id))
                        .cloned()
                        .unwrap_or_else(Requester::anonymous);
                    let (_, entries) = self.search(&spec, &requester, now);
                    let digest = result_digest(&entries);
                    if last_digest == Some(digest) {
                        continue;
                    }
                    self.note_delivery(client, id, &entries);
                    self.stats.updates_sent.bump();
                    out.updates
                        .push((client, GripReply::Update { id, entries }));
                }
            }
        }
        out
    }

    fn note_delivery(&mut self, client: ClientId, id: RequestId, entries: &[Entry]) {
        let digest = result_digest(entries);
        for (c, i, sub) in self.subs.iter_mut() {
            if c == client && i == id {
                sub.last_digest = Some(digest);
            }
        }
    }

    fn read_path(&self) -> ReadPathRef<'_> {
        ReadPathRef {
            suffix: &self.config.suffix,
            policy: &self.config.policy,
            schema: self.config.schema.as_ref(),
            stale_ttl: self.config.stale_ttl,
            parallel_fetch: self.config.parallel_fetch,
            slots: &self.slots,
            stats: &self.stats,
        }
    }

    /// The core search path: prune providers by namespace, consult caches,
    /// merge, redact, filter, project. Takes `&self` — searches never
    /// require exclusive access and run concurrently from worker threads.
    pub fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (ResultCode, Vec<Entry>) {
        self.read_path().search(spec, requester, now)
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::{
        DynamicHostProvider, FilesystemProvider, HostSpec, QueueProvider, StaticHostProvider,
    };
    use gis_gsi::{Acl, CertAuthority, Grant, Principal, TrustStore};
    use gis_ldap::Filter;
    use gis_netsim::secs;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    /// A GRIS for Figure 3's hostX with all four standard providers.
    fn host_gris() -> Gris {
        let host = HostSpec::irix("hostX", 8);
        let config = GrisConfig::open(LdapUrl::server("gris.hostX"), host.dn());
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
        gris.add_provider(Box::new(DynamicHostProvider::new(
            &host,
            42,
            1.5,
            secs(10),
            secs(30),
        )));
        gris.add_provider(Box::new(FilesystemProvider::new(
            &host,
            "scratch",
            "/disks/scratch1",
            40_000,
            7,
            secs(60),
        )));
        gris.add_provider(Box::new(QueueProvider::new(
            &host,
            "default",
            4.0,
            9,
            secs(30),
        )));
        gris
    }

    fn search(gris: &mut Gris, spec: SearchSpec, now: SimTime) -> (ResultCode, Vec<Entry>) {
        let replies = gris.handle_request(1, GripRequest::Search { id: 1, spec }, now);
        match replies.into_iter().next().unwrap() {
            GripReply::SearchResult { code, entries, .. } => (code, entries),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn subtree_search_merges_all_providers() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        // host + perf + store + queue entries.
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn lookup_returns_single_entry() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("queue=default, hn=hostX").unwrap()),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].has_class("queue"));
    }

    #[test]
    fn filter_selects_by_attributes() {
        let mut gris = host_gris();
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(
                Dn::parse("hn=hostX").unwrap(),
                Filter::parse("(objectclass=computer)").unwrap(),
            ),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get_str("system"), Some("mips irix"));
    }

    #[test]
    fn namespace_pruning_skips_unrelated_providers() {
        let mut gris = host_gris();
        // A lookup under the store subtree prunes the dynamic-host and
        // queue providers (disjoint subtrees). The static host provider's
        // namespace *contains* the base, so it cannot be pruned.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("store=scratch, hn=hostX").unwrap()),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(
            gris.stats().provider_invocations,
            2,
            "fs + static-host run; perf and queue are pruned"
        );
    }

    #[test]
    fn cache_prevents_repeated_invocations() {
        let mut gris = host_gris();
        // The lookup touches the dynamic provider (TTL 30s) and the
        // static host provider whose namespace contains the base
        // (TTL 1h).
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        search(&mut gris, spec.clone(), t(0));
        assert_eq!(gris.stats().provider_invocations, 2);
        search(&mut gris, spec.clone(), t(5)); // both within TTL
        assert_eq!(gris.stats().provider_invocations, 2);
        assert_eq!(gris.stats().cache_hits, 2);
        search(&mut gris, spec, t(31)); // dynamic TTL expired, static cached
        assert_eq!(gris.stats().provider_invocations, 3);
        assert_eq!(gris.stats().cache_hits, 3);
    }

    #[test]
    fn provider_failure_yields_partial_results() {
        let mut gris = host_gris();
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        assert_eq!(code, ResultCode::PartialResults);
        assert_eq!(entries.len(), 3, "other providers still answer");
    }

    #[test]
    fn serve_stale_within_window_marks_entries_and_code() {
        let mut gris = host_gris();
        gris.config.stale_ttl = Some(secs(300));
        // Populate the dynamic provider's cache, then fail it.
        search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        // t=40: past the 30s cache TTL, inside the 300s stale window.
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(40),
        );
        assert_eq!(code, ResultCode::StaleResults);
        assert_eq!(entries.len(), 4, "failed provider's entries retained");
        let perf = entries
            .iter()
            .find(|e| e.dn().to_string().starts_with("perf="))
            .expect("stale perf entry present");
        assert_eq!(perf.get_str("stale"), Some("TRUE"));
        assert_eq!(perf.get_str("staleage"), Some("40"));
        assert_eq!(gris.stats().stale_served, 1);

        // Recovery: once the provider heals, answers are fresh again.
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = false;
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(80),
        );
        assert_eq!(code, ResultCode::Success);
        assert!(entries.iter().all(|e| !e.has("stale")));
    }

    #[test]
    fn serve_stale_window_expiry_degrades_to_partial() {
        let mut gris = host_gris();
        gris.config.stale_ttl = Some(secs(300));
        search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        // t=400: even the stale window has lapsed — the data is gone.
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(400),
        );
        assert_eq!(code, ResultCode::PartialResults);
        assert_eq!(entries.len(), 3);
        assert_eq!(gris.stats().provider_failures, 1);
    }

    #[test]
    fn search_outside_suffix_is_no_such_object() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("hn=hostY").unwrap()),
            t(0),
        );
        assert_eq!(code, ResultCode::NoSuchObject);
        assert!(entries.is_empty());
    }

    #[test]
    fn size_limit_enforced() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()).limit(2),
            t(0),
        );
        assert_eq!(code, ResultCode::SizeLimitExceeded);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn attribute_projection() {
        let mut gris = host_gris();
        let (_, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("hn=hostX").unwrap()).select(&["system"]),
            t(0),
        );
        assert!(entries[0].has("system"));
        assert!(!entries[0].has("cpucount"));
    }

    #[test]
    fn acl_restricts_attributes_and_filter_cannot_probe() {
        let host = HostSpec::linux("h", 4);
        let mut config = GrisConfig::open(LdapUrl::server("gris.h"), host.dn());
        // Anonymous users may see the system type but not load averages.
        config.policy.set(
            host.dn(),
            Acl::default()
                .with_rule(
                    Principal::Anonymous,
                    Grant::Attrs(vec!["system".into(), "objectclass".into()]),
                )
                .with_rule(Principal::Authenticated, Grant::All),
        );
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
        gris.add_provider(Box::new(DynamicHostProvider::new(
            &host,
            1,
            1.0,
            secs(10),
            secs(30),
        )));

        // Anonymous: load5 invisible, and a filter on load5 matches nothing.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::parse("(load5=*)").unwrap()),
            t(0),
        );
        assert!(entries.is_empty(), "filter must not see hidden attributes");
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::parse("(system=*)").unwrap()),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].has("cpucount"), "cpucount not granted");
    }

    #[test]
    fn bind_flow_with_authenticator() {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 11);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let url = LdapUrl::server("gris.h");
        let host = HostSpec::linux("h", 2);
        let mut config = GrisConfig::open(url.clone(), host.dn());
        config.authenticator = Some(Authenticator::new(trust, url.to_string()));
        config.policy = PolicyMap::with_default(Acl::authenticated_only());
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));

        // Anonymous search is denied everything.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::always()),
            t(0),
        );
        assert!(entries.is_empty());

        // Bind as alice, then the search succeeds.
        let alice = ca.issue("/O=Grid/CN=alice");
        let token = gis_gsi::BindToken::create(&alice, &url.to_string()).to_bytes();
        let replies = gris.handle_request(
            1,
            GripRequest::Bind {
                id: 9,
                subject: "/O=Grid/CN=alice".into(),
                token,
            },
            t(1),
        );
        assert!(matches!(replies[0], GripReply::BindResult { ok: true, .. }));
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::always()),
            t(2),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(gris.stats().binds_ok, 1);

        // A different client is still anonymous.
        let replies = gris.handle_request(
            2,
            GripRequest::Search {
                id: 1,
                spec: SearchSpec::subtree(host.dn(), Filter::always()),
            },
            t(3),
        );
        match &replies[0] {
            GripReply::SearchResult { entries, .. } => assert!(entries.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_without_authenticator_fails_closed() {
        let mut gris = host_gris();
        let replies = gris.handle_request(
            1,
            GripRequest::Bind {
                id: 1,
                subject: "/CN=anyone".into(),
                token: vec![],
            },
            t(0),
        );
        assert!(matches!(
            replies[0],
            GripReply::BindResult { ok: false, .. }
        ));
        assert_eq!(gris.stats().binds_failed, 1);
    }

    #[test]
    fn periodic_subscription_delivers_on_schedule() {
        let mut gris = host_gris();
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        let replies = gris.handle_request(
            5,
            GripRequest::Subscribe {
                id: 77,
                spec,
                mode: SubscriptionMode::Periodic(secs(10)),
            },
            t(0),
        );
        assert!(
            matches!(replies[0], GripReply::Update { .. }),
            "initial snapshot"
        );
        assert_eq!(gris.subscription_count(), 1);

        assert!(gris.tick(t(5)).updates.is_empty(), "not due yet");
        let out = gris.tick(t(10));
        assert_eq!(out.updates.len(), 1);
        assert_eq!(out.updates[0].0, 5);

        // Unsubscribe stops delivery.
        gris.handle_request(5, GripRequest::Unsubscribe { id: 77 }, t(11));
        assert!(gris.tick(t(20)).updates.is_empty());
        assert_eq!(gris.subscription_count(), 0);
    }

    #[test]
    fn on_change_subscription_suppresses_unchanged() {
        let mut gris = host_gris();
        // Static host data never changes: after the initial snapshot, no
        // further updates arrive.
        let spec = SearchSpec::lookup(Dn::parse("hn=hostX").unwrap());
        gris.handle_request(
            6,
            GripRequest::Subscribe {
                id: 1,
                spec,
                mode: SubscriptionMode::OnChange,
            },
            t(0),
        );
        assert!(gris.tick(t(100)).updates.is_empty());
        assert!(gris.tick(t(5000)).updates.is_empty());

        // Dynamic data does change (cache TTL 30s, load period 10s).
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        gris.handle_request(
            6,
            GripRequest::Subscribe {
                id: 2,
                spec,
                mode: SubscriptionMode::OnChange,
            },
            t(5000),
        );
        let out = gris.tick(t(5040));
        assert_eq!(out.updates.len(), 1, "load changed after TTL expiry");
    }

    #[test]
    fn tick_emits_registrations() {
        let mut gris = host_gris();
        gris.agent.add_target(LdapUrl::server("giis.vo-a"));
        let out = gris.tick(t(0));
        assert_eq!(out.registrations.len(), 1);
        let (dir, msg) = &out.registrations[0];
        assert_eq!(dir, &LdapUrl::server("giis.vo-a"));
        assert_eq!(msg.service_url, LdapUrl::server("gris.hostX"));
        // Not due again immediately.
        assert!(gris.tick(t(1)).registrations.is_empty());
        assert_eq!(gris.tick(t(30)).registrations.len(), 1);
    }

    #[test]
    fn invitation_adds_target() {
        let mut gris = host_gris();
        let invite = GrrpMessage::invite(
            LdapUrl::server("gris.hostX"),
            LdapUrl::server("giis.vo-b"),
            t(0),
            secs(60),
        );
        assert!(gris.handle_grrp(&invite));
        let out = gris.tick(t(0));
        assert_eq!(out.registrations.len(), 1);
        assert_eq!(out.registrations[0].0, LdapUrl::server("giis.vo-b"));
    }

    #[test]
    fn schema_validation_drops_invalid_entries() {
        use gis_ldap::{ObjectClassDef, Schema, Strictness};
        // A provider that emits one valid and one invalid entry.
        struct SloppyProvider {
            ns: Dn,
        }
        impl crate::provider::InfoProvider for SloppyProvider {
            fn name(&self) -> &str {
                "sloppy"
            }
            fn namespace(&self) -> &Dn {
                &self.ns
            }
            fn cache_ttl(&self) -> SimDuration {
                SimDuration::ZERO
            }
            fn fetch(
                &mut self,
                _spec: &SearchSpec,
                _now: SimTime,
            ) -> Result<Vec<Entry>, crate::provider::ProviderError> {
                Ok(vec![
                    Entry::new(self.ns.clone())
                        .with_class("widget")
                        .with("serial", "123"),
                    Entry::new(self.ns.child(gis_ldap::Rdn::new("w", "bad"))).with_class("widget"), // missing required "serial"
                ])
            }
        }

        let ns = Dn::parse("hn=w").unwrap();
        let mut schema = Schema::new();
        schema.define(ObjectClassDef::new("widget").requires("serial"));
        let mut config = GrisConfig::open(LdapUrl::server("gris.w"), ns.clone());
        config.schema = Some((schema, Strictness::Lenient));
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(SloppyProvider { ns: ns.clone() }));

        let (code, entries) = gris.search(
            &SearchSpec::subtree(ns, Filter::always()),
            &gis_gsi::Requester::anonymous(),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1, "invalid entry dropped");
        assert_eq!(gris.stats().schema_violations, 1);
    }

    #[test]
    fn drop_client_clears_state() {
        let mut gris = host_gris();
        gris.handle_request(
            3,
            GripRequest::Subscribe {
                id: 1,
                spec: SearchSpec::lookup(Dn::parse("hn=hostX").unwrap()),
                mode: SubscriptionMode::Periodic(secs(5)),
            },
            t(0),
        );
        assert_eq!(gris.subscription_count(), 1);
        gris.drop_client(3);
        assert_eq!(gris.subscription_count(), 0);
        assert!(gris.tick(t(10)).updates.is_empty());
    }
}
