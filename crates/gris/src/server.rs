//! The GRIS server engine (§10.3).
//!
//! "GRIS authenticates and parses each incoming GRIP request and then
//! dispatches those requests to one or more 'local' information
//! providers, depending on the type of information named in the request.
//! Results are then merged back to the client. To efficiently prune
//! search processing, a specific provider's results are only considered
//! if the provider's namespace intersects the query scope."
//!
//! The engine is sans-IO: `handle_request` consumes a request and yields
//! replies; `tick` advances timers (registration refreshes, subscription
//! deliveries). Runtimes in `gis-core` move the messages.
//!
//! # Concurrent read path
//!
//! Queries are the hot path ("numerous concurrent enquiries", §5), so
//! [`Gris::search`] takes `&self` and every piece of state it touches is
//! safe to share across threads:
//!
//! * hot counters are atomics ([`gis_proto::Counter`], `Relaxed` — they
//!   carry no synchronization);
//! * each provider slot guards its provider behind its own mutex and its
//!   result cache behind its own reader-writer lock (striped by
//!   provider), so cache hits on different providers never contend and a
//!   hit never waits on a fetch in flight;
//! * bind sessions live behind a reader-writer lock.
//!
//! [`Gris::query_path`] packages this shared state into a cloneable
//! [`GrisQueryPath`] handle the live runtime hands to its query worker
//! threads, while mutation (registration refresh, subscriptions, GRRP)
//! stays with the engine's owner.

use crate::provider::{namespace_intersects, InfoProvider, ProviderError};
use gis_gsi::{PolicyMap, Requester, SecurityPolicy, ServiceConfig};
use gis_ldap::{Dn, Entry, LdapUrl, Rdn, Schema, Scope, Strictness};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::metrics::{self, Histogram, MetricsRegistry, PackedPair};
use gis_proto::trace::{SpanRecord, TraceContext, TraceSink};
use gis_proto::{
    result_digest, Counter, GripReply, GripRequest, GrrpMessage, RegistrationAgent, RequestId,
    ResultCode, SearchSpec, SubscriptionMode, SubscriptionTable,
};
use gis_store::{
    GroupSnap, Journal, JournalOptions, RecoveryReport, SnapshotContent, Storage, WalOp,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Identifies a client connection to this server (assigned by the
/// runtime: a sim node id, a channel index, ...).
pub type ClientId = u64;

/// Operational counters (experiments report these). This is the plain
/// snapshot type returned by [`Gris::stats`]; the live counters are
/// atomics updated through shared references.
///
/// Snapshot semantics (see `gis_proto::stats`): each field is loaded
/// atomically, but the snapshot as a whole is not one consistent cut —
/// except `cache_hits`/`cache_misses`, which live in a single packed
/// word so their sum (total slot resolutions) never tears, even under
/// live concurrent load. Full cross-field identities (e.g.
/// `provider_invocations + stale_served + provider_failures ==
/// cache_misses`) hold after the workload quiesces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrisStats {
    /// Search/lookup requests served.
    pub queries: u64,
    /// Searches answered out of the `Mds-Vo-name=monitoring` namespace
    /// (self-description; also counted in `queries`).
    pub monitoring_queries: u64,
    /// Provider `fetch` calls actually made.
    pub provider_invocations: u64,
    /// Queries (per provider touched) answered from the result cache.
    /// Read coherently with `cache_misses` (one packed word).
    pub cache_hits: u64,
    /// Cache misses (fetch required). Read coherently with `cache_hits`.
    pub cache_misses: u64,
    /// Entries returned to clients.
    pub entries_returned: u64,
    /// Successful binds.
    pub binds_ok: u64,
    /// Failed binds.
    pub binds_failed: u64,
    /// Subscription updates pushed.
    pub updates_sent: u64,
    /// Provider entries dropped for violating the configured schema.
    pub schema_violations: u64,
    /// Provider failures answered from the last-known-good cache
    /// (serve-stale degraded mode).
    pub stale_served: u64,
    /// Provider failures with no cache to fall back on (entries omitted,
    /// answer partial).
    pub provider_failures: u64,
}

/// The atomic counterpart of [`GrisStats`], shared between the owner and
/// query workers.
#[derive(Debug, Default)]
struct GrisStatsAtomic {
    queries: Counter,
    monitoring_queries: Counter,
    provider_invocations: Counter,
    /// Cache hits (first) and misses (second) in one word: their sum is
    /// the slot-resolution total, an invariant readers check live.
    cache: PackedPair,
    entries_returned: Counter,
    binds_ok: Counter,
    binds_failed: Counter,
    updates_sent: Counter,
    schema_violations: Counter,
    stale_served: Counter,
    provider_failures: Counter,
}

impl GrisStatsAtomic {
    fn snapshot(&self) -> GrisStats {
        // Read the per-miss *outcome* counters before the packed cache
        // word: every miss is counted in the packed word before its
        // outcome is recorded, so this order keeps
        // `provider_invocations + stale_served + provider_failures <=
        // cache_misses` true on every live read (exact equality after
        // quiescing).
        let provider_invocations = self.provider_invocations.get();
        let stale_served = self.stale_served.get();
        let provider_failures = self.provider_failures.get();
        let (cache_hits, cache_misses) = self.cache.get();
        GrisStats {
            queries: self.queries.get(),
            monitoring_queries: self.monitoring_queries.get(),
            provider_invocations,
            cache_hits,
            cache_misses,
            entries_returned: self.entries_returned.get(),
            binds_ok: self.binds_ok.get(),
            binds_failed: self.binds_failed.get(),
            updates_sent: self.updates_sent.get(),
            schema_violations: self.schema_violations.get(),
            stale_served,
            provider_failures,
        }
    }
}

/// One configured provider and its private cache. The provider sits
/// behind its own mutex (taken only to fetch) and the cache behind its
/// own reader-writer lock, so the locking is striped per provider:
/// concurrent cache hits share read locks, and a fetch for one provider
/// never blocks hits on another.
struct Slot {
    /// Copied from the provider at registration so the read path can
    /// prune and probe caches without locking the provider.
    name: String,
    namespace: Dn,
    cacheable: bool,
    cache_ttl: SimDuration,
    provider: Mutex<Box<dyn InfoProvider>>,
    /// Last successful fetch. Kept past its TTL to back the serve-stale
    /// degraded mode.
    cached: RwLock<Option<(SimTime, Arc<Vec<Entry>>)>>,
    /// Wall-clock latency of this provider's `fetch` calls (registry
    /// handle, resolved once at registration).
    fetch_us: Arc<Histogram>,
}

/// Observability state shared by the owner and every query handle:
/// whether instrumentation is on, the engine's metrics registry, the
/// pre-resolved hot-path histograms, and the optional trace sink.
#[derive(Clone)]
struct Obs {
    enabled: bool,
    registry: Arc<MetricsRegistry>,
    search_us: Arc<Histogram>,
    sink: Option<Arc<TraceSink>>,
}

impl Obs {
    fn new(enabled: bool) -> Obs {
        let registry = Arc::new(MetricsRegistry::new());
        let search_us = registry.histogram("search-us");
        Obs {
            enabled,
            registry,
            search_us,
            sink: None,
        }
    }
}

/// The monitoring-namespace snapshot: entries under
/// `service=<url>, Mds-Vo-name=monitoring` plus the sim time they were
/// built at. Rebuilt when older than the monitoring refresh interval
/// (soft-state), by whichever path — owner tick or query worker —
/// notices first.
type MonitorState = RwLock<Option<(SimTime, Arc<Vec<Entry>>)>>;
type MonitorCell = Arc<MonitorState>;

/// GRIS configuration.
///
/// The shared service knobs (endpoint URL, [`SecurityPolicy`],
/// observability) live in the embedded [`ServiceConfig`]; `GrisConfig`
/// derefs to it, so `config.url` / `config.security` /
/// `config.observability` read and write naturally.
pub struct GrisConfig {
    /// The knobs every GIS service shares, including where security
    /// lives: the policy map, bind-token trust, and signing credential
    /// are all in `service.security`.
    pub service: ServiceConfig,
    /// The DN suffix this server serves (e.g. `hn=hostX`).
    pub suffix: Dn,
    /// When present, provider output is validated against this schema
    /// (§8's type authorities: "it can be desirable to be able to enforce
    /// standard formats for entity descriptions"). Invalid entries are
    /// dropped and counted, never served. `None` skips validation — the
    /// paper's "support but not force" stance.
    pub schema: Option<(Schema, Strictness)>,
    /// Serve-stale window: when a provider reports `Unavailable` and its
    /// last successful fetch is at most this old, the cached entries are
    /// served anyway — stamped `stale: TRUE` with their age — instead of
    /// silently vanishing from the answer (the fault-tolerant-BDII
    /// last-known-good idiom; the paper's "as much partial or even
    /// inconsistent information as is available", §2.2). `None` disables
    /// the degraded mode: failures omit the provider's entries.
    pub stale_ttl: Option<SimDuration>,
    /// When true, a multi-provider search resolves its cache misses on
    /// scoped threads instead of invoking providers sequentially, so one
    /// slow provider does not add its latency to every other's. Results
    /// are still merged in provider registration order, keeping output
    /// identical to the sequential path. Off by default (the simulated
    /// runtime keeps the deterministic sequential path).
    pub parallel_fetch: bool,
}

impl std::ops::Deref for GrisConfig {
    type Target = ServiceConfig;
    fn deref(&self) -> &ServiceConfig {
        &self.service
    }
}

impl std::ops::DerefMut for GrisConfig {
    fn deref_mut(&mut self) -> &mut ServiceConfig {
        &mut self.service
    }
}

impl GrisConfig {
    /// An open (no-security) GRIS at `url` serving `suffix`.
    pub fn open(url: LdapUrl, suffix: Dn) -> GrisConfig {
        GrisConfig {
            service: ServiceConfig::open(url),
            suffix,
            schema: None,
            stale_ttl: None,
            parallel_fetch: false,
        }
    }

    /// Replace the security posture (builder style).
    pub fn with_security(mut self, security: SecurityPolicy) -> GrisConfig {
        self.service.security = security;
        self
    }
}

/// A Grid Resource Information Service instance.
pub struct Gris {
    /// Configuration (public for inspection). Frozen once a
    /// [`GrisQueryPath`] has been created: the handle captures the
    /// query-relevant parts at creation time.
    pub config: GrisConfig,
    slots: Arc<Vec<Slot>>,
    /// The GRRP refresh agent; add directory targets to join VOs.
    pub agent: RegistrationAgent,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    subs: SubscriptionTable<ClientId>,
    sub_requester: BTreeMap<(ClientId, RequestId), Requester>,
    sub_next_due: BTreeMap<(ClientId, RequestId), SimTime>,
    stats: Arc<GrisStatsAtomic>,
    obs: Obs,
    monitor: MonitorCell,
    /// Write-ahead journal: present once [`Gris::set_persistence`] ran.
    persist: Option<Journal>,
    /// Fingerprint (per-slot fetch stamps + target count) of the last
    /// snapshot written, to skip no-change snapshots on tick.
    persist_mark: Option<(Vec<Option<SimTime>>, usize)>,
}

/// What a `tick` produced: messages for the runtime to transmit.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// GRRP registrations to send, as `(directory, message)`.
    pub registrations: Vec<(LdapUrl, GrrpMessage)>,
    /// Subscription updates to deliver, as `(client, reply)`.
    pub updates: Vec<(ClientId, GripReply)>,
}

/// What one provider slot contributed to a search.
enum SlotData {
    /// Fresh entries, shared with the slot cache (no copy).
    Fresh(Arc<Vec<Entry>>),
    /// Last-known-good entries stamped `stale`/`staleage` (degraded).
    Stale(Vec<Entry>),
    /// Provider unavailable with nothing to fall back on (partial).
    Failed,
    /// Provider refused the scope.
    TooWide,
}

/// Borrowed view of everything the query path needs. [`Gris::search`]
/// builds it from `&self`; [`GrisQueryPath::search`] from its captured
/// clones — both run the same code.
struct ReadPathRef<'a> {
    url: &'a LdapUrl,
    suffix: &'a Dn,
    policy: &'a PolicyMap,
    schema: Option<&'a (Schema, Strictness)>,
    stale_ttl: Option<SimDuration>,
    parallel_fetch: bool,
    slots: &'a [Slot],
    stats: &'a GrisStatsAtomic,
    obs: &'a Obs,
    monitor: &'a MonitorState,
    monitoring_refresh: SimDuration,
}

impl ReadPathRef<'_> {
    /// Probe a slot's cache without touching the provider. `Some` is a
    /// countable cache hit.
    fn probe_cache(&self, slot: &Slot, now: SimTime) -> Option<Arc<Vec<Entry>>> {
        if !slot.cacheable {
            return None;
        }
        let guard = slot.cached.read();
        let (at, entries) = guard.as_ref()?;
        (now.since(*at) < slot.cache_ttl).then(|| Arc::clone(entries))
    }

    /// Record a provider-level span on the shared trace sink, if this
    /// search is traced.
    fn note_provider_span(
        &self,
        slot: &Slot,
        trace: Option<TraceContext>,
        now: SimTime,
        started: Instant,
        outcome: &str,
    ) {
        let (Some(sink), Some(ctx)) = (self.obs.sink.as_deref(), trace) else {
            return;
        };
        let elapsed = SimDuration::from_micros(started.elapsed().as_micros() as u64);
        sink.record(SpanRecord {
            trace: ctx.trace,
            span: sink.next_span(),
            parent: Some(ctx.parent),
            service: self.url.to_string(),
            name: format!("provider:{}", slot.name),
            start: now,
            end: now + elapsed,
            outcome: outcome.to_string(),
        });
    }

    /// Produce a slot's contribution, consulting cache, provider, and the
    /// serve-stale fallback. `trace`, when present, is the context of the
    /// enclosing `gris.search` span: each provider resolution records a
    /// child span with its outcome.
    fn resolve_slot(
        &self,
        slot: &Slot,
        spec: &SearchSpec,
        now: SimTime,
        trace: Option<TraceContext>,
    ) -> SlotData {
        let started = Instant::now();
        if let Some(entries) = self.probe_cache(slot, now) {
            self.stats.cache.bump_first();
            self.note_provider_span(slot, trace, now, started, "cache-hit");
            return SlotData::Fresh(entries);
        }
        let mut provider = slot.provider.lock();
        // Double-check under the provider lock: a concurrent worker may
        // have completed the same fetch while we waited. (Single-threaded
        // callers never hit this branch, keeping their counters exactly
        // as before.)
        if let Some(entries) = self.probe_cache(slot, now) {
            self.stats.cache.bump_first();
            self.note_provider_span(slot, trace, now, started, "cache-hit");
            return SlotData::Fresh(entries);
        }
        self.stats.cache.bump_second();
        let fetch_started = Instant::now();
        let fetched = provider.fetch(spec, now);
        if self.obs.enabled {
            slot.fetch_us
                .record(fetch_started.elapsed().as_micros() as u64);
        }
        match fetched {
            Ok(entries) => {
                self.stats.provider_invocations.bump();
                self.note_provider_span(slot, trace, now, started, "fresh");
                let entries = Arc::new(entries);
                if slot.cacheable {
                    *slot.cached.write() = Some((now, Arc::clone(&entries)));
                }
                SlotData::Fresh(entries)
            }
            Err(ProviderError::Unavailable(_)) => {
                // Degraded serve-stale mode: fall back to the
                // last-known-good fetch when it is still inside the stale
                // window, stamping each entry so consumers can see (and
                // filter on) its age.
                let stale = self.stale_ttl.and_then(|window| {
                    let guard = slot.cached.read();
                    guard
                        .as_ref()
                        .filter(|(at, _)| now.since(*at) <= window)
                        .map(|(at, entries)| (*at, Arc::clone(entries)))
                });
                match stale {
                    Some((at, entries)) => {
                        self.stats.stale_served.bump();
                        self.note_provider_span(slot, trace, now, started, "stale");
                        let age_secs = now.since(at).micros() / 1_000_000;
                        SlotData::Stale(
                            entries
                                .iter()
                                .map(|e| {
                                    let mut e = e.clone();
                                    e.add("stale", "TRUE");
                                    e.add("staleage", age_secs);
                                    e
                                })
                                .collect(),
                        )
                    }
                    None => {
                        self.stats.provider_failures.bump();
                        self.note_provider_span(slot, trace, now, started, "failed");
                        SlotData::Failed
                    }
                }
            }
            Err(ProviderError::TooWide(_)) => {
                self.note_provider_span(slot, trace, now, started, "too-wide");
                SlotData::TooWide
            }
        }
    }

    /// The core search path: prune providers by namespace, consult
    /// caches, merge, redact, filter, project. When `trace` is present
    /// (and a sink is installed) the search records a `gris.search` span
    /// with one child span per provider resolution.
    fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
        trace: Option<TraceContext>,
    ) -> (ResultCode, Vec<Entry>) {
        let started = Instant::now();
        // Open this hop's span up front so provider resolutions can
        // parent onto it.
        let own = match (self.obs.sink.as_deref(), trace) {
            (Some(sink), Some(ctx)) => Some((sink, ctx, sink.next_span())),
            _ => None,
        };
        let child_ctx = own.map(|(_, ctx, span)| TraceContext {
            trace: ctx.trace,
            parent: span,
        });
        let (code, results) = self.search_body(spec, requester, now, child_ctx);
        if self.obs.enabled {
            self.obs
                .search_us
                .record(started.elapsed().as_micros() as u64);
        }
        if let Some((sink, ctx, span)) = own {
            sink.record(SpanRecord {
                trace: ctx.trace,
                span,
                parent: Some(ctx.parent),
                service: self.url.to_string(),
                name: "gris.search".into(),
                start: now,
                end: now + SimDuration::from_micros(started.elapsed().as_micros() as u64),
                outcome: code.label().into(),
            });
        }
        (code, results)
    }

    fn search_body(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
        trace: Option<TraceContext>,
    ) -> (ResultCode, Vec<Entry>) {
        self.stats.queries.bump();

        // The monitoring namespace is served ahead of the suffix check:
        // self-description lives under `Mds-Vo-name=monitoring`
        // regardless of the suffix this server answers for.
        if metrics::is_monitoring_dn(&spec.base) {
            if !self.obs.enabled {
                return (ResultCode::NoSuchObject, Vec::new());
            }
            self.stats.monitoring_queries.bump();
            let entries = self.monitoring_entries(now);
            let merged: BTreeMap<String, Entry> = entries
                .iter()
                .map(|e| (e.dn().to_string(), e.clone()))
                .collect();
            return self.finish(merged, spec, requester, false, false, false);
        }

        // A search rooted entirely outside this server's namespace names
        // nothing we serve.
        if !namespace_intersects(self.suffix, &spec.base) && !self.suffix.is_root() {
            return (ResultCode::NoSuchObject, Vec::new());
        }

        let eligible: Vec<&Slot> = self
            .slots
            .iter()
            .filter(|s| namespace_intersects(&s.namespace, &spec.base))
            .collect();

        // Resolve every eligible slot. Cache hits are answered inline;
        // with `parallel_fetch`, two or more outstanding provider calls
        // fan out across scoped threads instead of queueing behind each
        // other. Contributions are merged in slot order either way, so
        // both paths produce identical output.
        let mut data: Vec<Option<SlotData>> = Vec::with_capacity(eligible.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, slot) in eligible.iter().enumerate() {
            match self.probe_cache(slot, now) {
                Some(entries) => {
                    self.stats.cache.bump_first();
                    self.note_provider_span(slot, trace, now, Instant::now(), "cache-hit");
                    data.push(Some(SlotData::Fresh(entries)));
                }
                None => {
                    data.push(None);
                    missing.push(i);
                }
            }
        }
        if self.parallel_fetch && missing.len() >= 2 {
            let resolved = std::thread::scope(|sc| {
                let handles: Vec<_> = missing
                    .iter()
                    .map(|&i| {
                        let slot = eligible[i];
                        sc.spawn(move || self.resolve_slot(slot, spec, now, trace))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("provider fetch thread"))
                    .collect::<Vec<_>>()
            });
            for (&i, d) in missing.iter().zip(resolved) {
                data[i] = Some(d);
            }
        } else {
            for &i in &missing {
                data[i] = Some(self.resolve_slot(eligible[i], spec, now, trace));
            }
        }

        let mut partial = false;
        let mut degraded = false;
        let mut too_wide = false;
        let mut merged: BTreeMap<String, Entry> = BTreeMap::new();
        let mut merge_entry = |e: &Entry| {
            if let Some((schema, strictness)) = self.schema {
                if schema.validate(e, *strictness).is_err() {
                    self.stats.schema_violations.bump();
                    return;
                }
            }
            match merged.get_mut(&e.dn().to_string()) {
                Some(existing) => existing.merge_from(e),
                None => {
                    merged.insert(e.dn().to_string(), e.clone());
                }
            }
        };
        for d in data.into_iter().flatten() {
            match d {
                SlotData::Fresh(entries) => entries.iter().for_each(&mut merge_entry),
                SlotData::Stale(entries) => {
                    degraded = true;
                    entries.iter().for_each(&mut merge_entry);
                }
                SlotData::Failed => partial = true,
                SlotData::TooWide => too_wide = true,
            }
        }
        self.finish(merged, spec, requester, partial, degraded, too_wide)
    }

    /// Serve the monitoring snapshot, rebuilding it when it has aged past
    /// the refresh interval (soft-state semantics).
    fn monitoring_entries(&self, now: SimTime) -> Arc<Vec<Entry>> {
        if let Some((at, entries)) = self.monitor.read().as_ref() {
            if now.since(*at) < self.monitoring_refresh {
                return Arc::clone(entries);
            }
        }
        let built = Arc::new(self.build_monitoring());
        *self.monitor.write() = Some((now, Arc::clone(&built)));
        built
    }

    /// Build this server's self-description: one `mds-service` entry,
    /// one `mds-provider` entry per slot, and one `mds-metric` entry per
    /// registry instrument, all under
    /// `service=<url>, Mds-Vo-name=monitoring`.
    fn build_monitoring(&self) -> Vec<Entry> {
        let base = metrics::monitoring_base().child(Rdn::new("service", self.url.to_string()));
        let s = self.stats.snapshot();
        let resolutions = s.cache_hits + s.cache_misses;
        let ratio = if resolutions == 0 {
            0.0
        } else {
            s.cache_hits as f64 / resolutions as f64
        };
        let mut entries = vec![Entry::new(base.clone())
            .with_class("mds-service")
            .with("service-type", "gris")
            .with("suffix", self.suffix.to_string())
            .with("queries", s.queries)
            .with("monitoring-queries", s.monitoring_queries)
            .with("cache-hits", s.cache_hits)
            .with("cache-misses", s.cache_misses)
            .with("cache-hit-ratio", format!("{ratio:.3}"))
            .with("provider-invocations", s.provider_invocations)
            .with("stale-served", s.stale_served)
            .with("provider-failures", s.provider_failures)
            .with("entries-returned", s.entries_returned)
            .with("updates-sent", s.updates_sent)
            .with("providers", self.slots.len() as u64)];
        for slot in self.slots {
            let f = slot.fetch_us.snapshot();
            entries.push(
                Entry::new(base.child(Rdn::new("provider", slot.name.clone())))
                    .with_class("mds-provider")
                    .with("namespace", slot.namespace.to_string())
                    .with("cacheable", if slot.cacheable { "TRUE" } else { "FALSE" })
                    .with("fetch-count", f.count)
                    .with("fetch-p50-us", f.quantile(0.50))
                    .with("fetch-p95-us", f.quantile(0.95))
                    .with("fetch-p99-us", f.quantile(0.99))
                    .with("fetch-max-us", f.max),
            );
        }
        entries.extend(self.obs.registry.export_entries(&base));
        entries
    }

    /// The mandatory tail of every search: scope, redact, filter,
    /// project, pick the result code.
    fn finish(
        &self,
        merged: BTreeMap<String, Entry>,
        spec: &SearchSpec,
        requester: &Requester,
        partial: bool,
        degraded: bool,
        too_wide: bool,
    ) -> (ResultCode, Vec<Entry>) {
        // Mandatory final filtering (§10.3): scope and filter semantics
        // are enforced here, not in providers — and ACL redaction happens
        // *before* filter evaluation so filters cannot probe hidden
        // attributes.
        let mut results = Vec::new();
        let mut truncated = false;
        for entry in merged.into_values() {
            let dn = entry.dn();
            let in_scope = match spec.scope {
                Scope::Base => dn == &spec.base,
                Scope::One => dn.is_child_of(&spec.base),
                Scope::Sub => dn.is_under(&spec.base),
            };
            if !in_scope {
                continue;
            }
            let Some(redacted) = self.policy.redact(&entry, requester) else {
                continue;
            };
            if !spec.filter.matches(&redacted) {
                continue;
            }
            results.push(redacted.project(&spec.attrs));
            if spec.size_limit != 0 && results.len() >= spec.size_limit as usize {
                truncated = true;
                break;
            }
        }

        let code = if truncated {
            ResultCode::SizeLimitExceeded
        } else if too_wide && results.is_empty() {
            ResultCode::UnwillingToPerform
        } else if partial {
            // Entries are genuinely missing (a failed provider had no
            // usable last-known-good data). Dominates StaleResults.
            ResultCode::PartialResults
        } else if degraded {
            ResultCode::StaleResults
        } else {
            ResultCode::Success
        };
        (code, results)
    }
}

/// A cloneable handle over a GRIS's concurrent query state: everything a
/// worker thread needs to answer `Search` requests without the engine's
/// owner. Created by [`Gris::query_path`]; the configuration slice it
/// captures (suffix, policy, schema, stale window) is frozen at creation.
#[derive(Clone)]
pub struct GrisQueryPath {
    url: LdapUrl,
    suffix: Dn,
    policy: PolicyMap,
    schema: Option<(Schema, Strictness)>,
    stale_ttl: Option<SimDuration>,
    parallel_fetch: bool,
    monitoring_refresh: SimDuration,
    slots: Arc<Vec<Slot>>,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    stats: Arc<GrisStatsAtomic>,
    obs: Obs,
    monitor: MonitorCell,
}

impl GrisQueryPath {
    fn read_path(&self) -> ReadPathRef<'_> {
        ReadPathRef {
            url: &self.url,
            suffix: &self.suffix,
            policy: &self.policy,
            schema: self.schema.as_ref(),
            stale_ttl: self.stale_ttl,
            parallel_fetch: self.parallel_fetch,
            slots: &self.slots,
            stats: &self.stats,
            obs: &self.obs,
            monitor: &self.monitor,
            monitoring_refresh: self.monitoring_refresh,
        }
    }

    /// Run a search against the shared read path.
    pub fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (ResultCode, Vec<Entry>) {
        self.read_path().search(spec, requester, now, None)
    }

    /// Install an authenticated session identity for `client`. The
    /// transport layer calls this when a connection completes the §7
    /// mutual-auth handshake, so every query the connection later issues
    /// is evaluated against the handshake-proven requester (the wire
    /// analog of a successful in-band `Bind`).
    pub fn authenticate_session(&self, client: ClientId, requester: Requester) {
        self.sessions.write().insert(client, requester);
    }

    /// Forget `client`'s session (its connection closed). Soft-state
    /// hygiene: a reused client id must start anonymous.
    pub fn drop_session(&self, client: ClientId) {
        self.sessions.write().remove(&client);
    }

    /// Snapshot of the shared operational counters (for assertions and
    /// monitoring after the engine has moved into a runtime).
    pub fn stats(&self) -> GrisStats {
        self.stats.snapshot()
    }

    /// Handle a request if it is query-path work (`Search`); every other
    /// request is returned to the caller for the engine's owner
    /// (mutations: bind, subscriptions).
    // Err carries the request back unboxed: the worker forwards it to
    // the owner channel by value, so boxing would be an extra
    // allocation on a path taken for every non-Search message.
    #[allow(clippy::result_large_err)]
    pub fn handle_query(
        &self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Result<Vec<GripReply>, GripRequest> {
        self.handle_query_traced(client, req, None, now)
    }

    /// [`handle_query`](Self::handle_query) with a trace context: a
    /// traced `Search` records a `gris.search` span (with per-provider
    /// children) parented on `trace.parent`.
    #[allow(clippy::result_large_err)]
    pub fn handle_query_traced(
        &self,
        client: ClientId,
        req: GripRequest,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Result<Vec<GripReply>, GripRequest> {
        match req {
            GripRequest::Search { id, spec } => {
                let requester = self
                    .sessions
                    .read()
                    .get(&client)
                    .cloned()
                    .unwrap_or_else(Requester::anonymous);
                let (code, entries) = self.read_path().search(&spec, &requester, now, trace);
                self.stats.entries_returned.add(entries.len() as u64);
                Ok(vec![GripReply::SearchResult {
                    id,
                    code,
                    entries,
                    referrals: Vec::new(),
                }])
            }
            other => Err(other),
        }
    }
}

impl Gris {
    /// Create a GRIS with the given registration cadence. The TTL attached
    /// to registrations should exceed the interval (typically 3×) so
    /// isolated message loss does not expire the soft state (§4.3).
    pub fn new(config: GrisConfig, reg_interval: SimDuration, reg_ttl: SimDuration) -> Gris {
        let agent = RegistrationAgent::new(
            config.url.clone(),
            config.suffix.clone(),
            reg_interval,
            reg_ttl,
        );
        let obs = Obs::new(config.observability);
        Gris {
            config,
            slots: Arc::new(Vec::new()),
            agent,
            sessions: Arc::new(RwLock::new(BTreeMap::new())),
            subs: SubscriptionTable::new(),
            sub_requester: BTreeMap::new(),
            sub_next_due: BTreeMap::new(),
            stats: Arc::new(GrisStatsAtomic::default()),
            obs,
            monitor: Arc::new(RwLock::new(None)),
            persist: None,
            persist_mark: None,
        }
    }

    /// Attach durable storage: warm every provider slot's cache from the
    /// newest snapshot (a restarted GRIS serves its last-known-good
    /// rows immediately instead of stampeding its providers), restore
    /// registration targets, and journal target changes + slot caches
    /// from here on.
    ///
    /// Call after [`Gris::add_provider`] (slots are matched by provider
    /// name) and before serving. Recovery never fails: damaged state
    /// degrades toward cold caches, with warnings in the report.
    pub fn set_persistence(
        &mut self,
        storage: Arc<dyn Storage>,
        opts: JournalOptions,
        now: SimTime,
    ) -> RecoveryReport {
        let (journal, state, report) = Journal::open(storage, opts, now);
        let mut restored = 0usize;
        for slot in self.slots.iter() {
            let Some(g) = state.groups.get(&slot.name) else {
                continue;
            };
            let Some(at) = g.at else {
                continue;
            };
            if g.entries.is_empty() {
                continue;
            }
            restored += g.entries.len();
            *slot.cached.write() = Some((at, Arc::new(g.entries.clone())));
        }
        for t in state.targets {
            self.agent.add_target(t);
        }
        let r = &self.obs.registry;
        r.gauge("persist-recovered-entries").set(restored as u64);
        r.gauge("persist-wal-replayed")
            .set(report.wal_records as u64);
        r.gauge("persist-warnings")
            .set(report.warnings.len() as u64);
        self.persist = Some(journal);
        report
    }

    /// Journal one mutation; I/O trouble degrades to a counted error,
    /// never a panic (slot caches can always be refetched).
    fn wal_log(&mut self, op: &WalOp) {
        if let Some(journal) = self.persist.as_mut() {
            if journal.log(op).is_err() {
                self.obs.registry.counter("persist-errors").bump();
            }
        }
    }

    /// Current persistence fingerprint: which slot fetched when, plus
    /// how many directory targets are configured.
    fn persist_fingerprint(&self) -> (Vec<Option<SimTime>>, usize) {
        let stamps = self
            .slots
            .iter()
            .map(|s| s.cached.read().as_ref().map(|(at, _)| *at))
            .collect();
        (stamps, self.agent.targets().len())
    }

    /// Snapshot the slot caches + targets and compact the WAL. Skipped
    /// when nothing changed since the last snapshot.
    fn snapshot_persist(&mut self) {
        let mark = self.persist_fingerprint();
        if self.persist_mark.as_ref() == Some(&mark) {
            return;
        }
        let Some(journal) = self.persist.as_mut() else {
            return;
        };
        let groups: Vec<GroupSnap> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let guard = slot.cached.read();
                let (at, entries) = guard.as_ref()?;
                Some(GroupSnap {
                    name: slot.name.clone(),
                    at: Some(*at),
                    dns: Vec::new(),
                    entries: (**entries).clone(),
                })
            })
            .collect();
        let mut entries = std::iter::empty::<&Entry>();
        let content = SnapshotContent {
            regs: Vec::new(),
            groups,
            targets: self.agent.targets().to_vec(),
            entries: &mut entries,
        };
        if journal.snapshot(content).is_err() {
            self.obs.registry.counter("persist-errors").bump();
            return;
        }
        self.persist_mark = Some(mark);
    }

    /// Install a shared trace sink: spans for traced requests are
    /// recorded here. Configure before creating query handles (like
    /// providers — handles capture the sink at creation).
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.obs.sink = Some(sink);
    }

    /// This engine's metrics registry (exported under the monitoring
    /// namespace; the live runtime adds its worker-pool instruments
    /// here).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.obs.registry)
    }

    /// Plug in an information provider. Providers are configured before
    /// the engine starts serving; this panics if a [`GrisQueryPath`]
    /// handle already exists.
    pub fn add_provider(&mut self, provider: Box<dyn InfoProvider>) {
        let fetch_us = self
            .obs
            .registry
            .labeled_histogram("provider-fetch-us", Some(provider.name()));
        let slot = Slot {
            name: provider.name().to_owned(),
            namespace: provider.namespace().clone(),
            cacheable: provider.cacheable(),
            cache_ttl: provider.cache_ttl(),
            provider: Mutex::new(provider),
            cached: RwLock::new(None),
            fetch_us,
        };
        Arc::get_mut(&mut self.slots)
            .expect("providers are configured before query handles are created")
            .push(slot);
    }

    /// Number of configured providers.
    pub fn provider_count(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot of the operational counters.
    pub fn stats(&self) -> GrisStats {
        self.stats.snapshot()
    }

    /// A cloneable concurrent-query handle sharing this engine's slots,
    /// sessions and counters. The config slice it captures is frozen at
    /// this point.
    pub fn query_path(&self) -> GrisQueryPath {
        GrisQueryPath {
            url: self.config.url.clone(),
            suffix: self.config.suffix.clone(),
            policy: self.config.security.policy_map.clone(),
            schema: self.config.schema.clone(),
            stale_ttl: self.config.stale_ttl,
            parallel_fetch: self.config.parallel_fetch,
            monitoring_refresh: self.config.monitoring_refresh,
            slots: Arc::clone(&self.slots),
            sessions: Arc::clone(&self.sessions),
            stats: Arc::clone(&self.stats),
            obs: self.obs.clone(),
            monitor: Arc::clone(&self.monitor),
        }
    }

    /// Mutable access to a provider by name, downcast to its concrete
    /// type (experiments use this for failure injection and counter
    /// reads). `None` once query handles exist.
    pub fn provider_mut<T: InfoProvider>(&mut self, name: &str) -> Option<&mut T> {
        let slots = Arc::get_mut(&mut self.slots)?;
        slots.iter_mut().find(|s| s.name == name).and_then(|s| {
            let any: &mut dyn std::any::Any = s.provider.get_mut().as_mut();
            any.downcast_mut::<T>()
        })
    }

    /// Shared access to a provider by name, downcast to its concrete
    /// type. Takes `&mut self` because the provider sits behind the
    /// slot's lock, which is bypassed through exclusive access.
    pub fn provider<T: InfoProvider>(&mut self, name: &str) -> Option<&T> {
        self.provider_mut::<T>(name).map(|p| &*p)
    }

    /// The requester identity associated with a client (anonymous until a
    /// successful bind).
    pub fn requester_of(&self, client: ClientId) -> Requester {
        self.sessions
            .read()
            .get(&client)
            .cloned()
            .unwrap_or_else(Requester::anonymous)
    }

    /// Handle one GRIP request from `client`, returning the replies to
    /// send back to that client.
    pub fn handle_request(
        &mut self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Vec<GripReply> {
        self.handle_request_traced(client, req, None, now)
    }

    /// [`handle_request`](Self::handle_request) with a trace context
    /// (from a [`ProtocolMessage::Traced`](gis_proto::ProtocolMessage)
    /// envelope): a traced `Search` records its span tree.
    pub fn handle_request_traced(
        &mut self,
        client: ClientId,
        req: GripRequest,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Vec<GripReply> {
        match req {
            GripRequest::Bind {
                id,
                subject: _,
                token,
            } => {
                let outcome = self
                    .config
                    .security
                    .authenticator(self.config.url.to_string())
                    .and_then(|auth| auth.authenticate(&token));
                match outcome {
                    Some(subject) => {
                        self.stats.binds_ok.bump();
                        self.sessions
                            .write()
                            .insert(client, Requester::subject(subject.clone()));
                        vec![GripReply::BindResult {
                            id,
                            ok: true,
                            subject: Some(subject),
                        }]
                    }
                    None => {
                        self.stats.binds_failed.bump();
                        vec![GripReply::BindResult {
                            id,
                            ok: false,
                            subject: None,
                        }]
                    }
                }
            }
            GripRequest::Search { id, spec } => {
                let requester = self.requester_of(client);
                let (code, entries) = self.search_traced(&spec, &requester, now, trace);
                self.stats.entries_returned.add(entries.len() as u64);
                vec![GripReply::SearchResult {
                    id,
                    code,
                    entries,
                    referrals: Vec::new(),
                }]
            }
            GripRequest::Subscribe { id, spec, mode } => {
                let requester = self.requester_of(client);
                self.subs.subscribe(client, id, spec.clone(), mode);
                self.sub_requester.insert((client, id), requester.clone());
                if let SubscriptionMode::Periodic(period) = mode {
                    self.sub_next_due.insert((client, id), now + period);
                }
                // Initial snapshot is delivered immediately.
                let (_, entries) = self.search(&spec, &requester, now);
                self.note_delivery(client, id, &entries);
                self.stats.updates_sent.bump();
                vec![GripReply::Update { id, entries }]
            }
            GripRequest::Unsubscribe { id } => {
                let existed = self.subs.unsubscribe(client, id);
                self.sub_requester.remove(&(client, id));
                self.sub_next_due.remove(&(client, id));
                vec![GripReply::SubscriptionDone {
                    id,
                    code: if existed {
                        ResultCode::Success
                    } else {
                        ResultCode::NoSuchObject
                    },
                }]
            }
            // Bulk delta sync is a directory-to-directory protocol; a
            // provider's whole tree is already one harvest query wide,
            // so a GIIS pulls it via plain Search instead.
            GripRequest::SyncPull { id, .. } => vec![GripReply::SubscriptionDone {
                id,
                code: ResultCode::UnwillingToPerform,
            }],
        }
    }

    /// Handle an incoming GRRP message (a GRIS receives invitations).
    /// Returns true if the invitation added a new registration target.
    pub fn handle_grrp(&mut self, msg: &GrrpMessage) -> bool {
        let added = self.agent.accept_invite(msg);
        if added {
            if let Some(directory) = msg.reply_to.clone() {
                self.wal_log(&WalOp::Target { directory });
            }
        }
        added
    }

    /// Forget all session/subscription state for a disconnected client.
    pub fn drop_client(&mut self, client: ClientId) {
        self.sessions.write().remove(&client);
        self.subs.drop_subscriber(client);
        self.sub_requester.retain(|(c, _), _| *c != client);
        self.sub_next_due.retain(|(c, _), _| *c != client);
    }

    /// Advance timers: emit due GRRP registrations and subscription
    /// deliveries, and keep the monitoring-namespace snapshot warm.
    pub fn tick(&mut self, now: SimTime) -> TickOutput {
        if self.obs.enabled {
            let due = match self.monitor.read().as_ref() {
                Some((at, _)) => now.since(*at) >= self.config.monitoring_refresh,
                None => true,
            };
            if due {
                let built = Arc::new(self.read_path().build_monitoring());
                *self.monitor.write() = Some((now, built));
            }
        }
        let mut registrations = self.agent.due_messages(now);
        if let Some(cred) = &self.config.security.credential {
            for (_, msg) in &mut registrations {
                msg.subject = Some(cred.subject().to_owned());
                let blob = gis_gsi::sign_registration(cred, &msg.signable_bytes());
                msg.signature = Some(blob);
            }
        }
        let mut out = TickOutput {
            registrations,
            updates: Vec::new(),
        };
        // Evaluate subscriptions. Collect due work first to avoid holding
        // a borrow of `subs` across the search.
        let mut due: Vec<(
            ClientId,
            RequestId,
            SearchSpec,
            SubscriptionMode,
            Option<u64>,
        )> = Vec::new();
        for (client, id, sub) in self.subs.iter_mut() {
            match sub.mode {
                SubscriptionMode::Periodic(_) => {
                    due.push((client, id, sub.spec.clone(), sub.mode, sub.last_digest))
                }
                SubscriptionMode::OnChange => {
                    due.push((client, id, sub.spec.clone(), sub.mode, sub.last_digest))
                }
            }
        }
        for (client, id, spec, mode, last_digest) in due {
            match mode {
                SubscriptionMode::Periodic(period) => {
                    let due_at = self.sub_next_due.get(&(client, id)).copied().unwrap_or(now);
                    if now < due_at {
                        continue;
                    }
                    let requester = self
                        .sub_requester
                        .get(&(client, id))
                        .cloned()
                        .unwrap_or_else(Requester::anonymous);
                    let (_, entries) = self.search(&spec, &requester, now);
                    self.note_delivery(client, id, &entries);
                    self.sub_next_due.insert((client, id), due_at + period);
                    self.stats.updates_sent.bump();
                    out.updates
                        .push((client, GripReply::Update { id, entries }));
                }
                SubscriptionMode::OnChange => {
                    let requester = self
                        .sub_requester
                        .get(&(client, id))
                        .cloned()
                        .unwrap_or_else(Requester::anonymous);
                    let (_, entries) = self.search(&spec, &requester, now);
                    let digest = result_digest(&entries);
                    if last_digest == Some(digest) {
                        continue;
                    }
                    self.note_delivery(client, id, &entries);
                    self.stats.updates_sent.bump();
                    out.updates
                        .push((client, GripReply::Update { id, entries }));
                }
            }
        }
        // Checkpoint the slot caches when they changed since the last
        // snapshot (fetch stamps or targets moved) — GRIS state is
        // snapshot-shaped, so the WAL stays nearly empty and each
        // checkpoint compacts it.
        if self.persist.is_some() {
            self.snapshot_persist();
        }
        out
    }

    fn note_delivery(&mut self, client: ClientId, id: RequestId, entries: &[Entry]) {
        let digest = result_digest(entries);
        for (c, i, sub) in self.subs.iter_mut() {
            if c == client && i == id {
                sub.last_digest = Some(digest);
            }
        }
    }

    fn read_path(&self) -> ReadPathRef<'_> {
        ReadPathRef {
            url: &self.config.url,
            suffix: &self.config.suffix,
            policy: &self.config.security.policy_map,
            schema: self.config.schema.as_ref(),
            stale_ttl: self.config.stale_ttl,
            parallel_fetch: self.config.parallel_fetch,
            slots: &self.slots,
            stats: &self.stats,
            obs: &self.obs,
            monitor: &self.monitor,
            monitoring_refresh: self.config.monitoring_refresh,
        }
    }

    /// The core search path: prune providers by namespace, consult caches,
    /// merge, redact, filter, project. Takes `&self` — searches never
    /// require exclusive access and run concurrently from worker threads.
    pub fn search(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (ResultCode, Vec<Entry>) {
        self.read_path().search(spec, requester, now, None)
    }

    /// [`search`](Self::search) under a trace context: records a
    /// `gris.search` span (with per-provider children) parented on
    /// `trace.parent` when a sink is installed.
    pub fn search_traced(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
        trace: Option<TraceContext>,
    ) -> (ResultCode, Vec<Entry>) {
        self.read_path().search(spec, requester, now, trace)
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::{
        DynamicHostProvider, FilesystemProvider, HostSpec, QueueProvider, StaticHostProvider,
    };
    use gis_gsi::{Acl, CertAuthority, Grant, Principal, TrustStore};
    use gis_ldap::Filter;
    use gis_netsim::secs;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    /// A GRIS for Figure 3's hostX with all four standard providers.
    fn host_gris() -> Gris {
        let host = HostSpec::irix("hostX", 8);
        let config = GrisConfig::open(LdapUrl::server("gris.hostX"), host.dn());
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
        gris.add_provider(Box::new(DynamicHostProvider::new(
            &host,
            42,
            1.5,
            secs(10),
            secs(30),
        )));
        gris.add_provider(Box::new(FilesystemProvider::new(
            &host,
            "scratch",
            "/disks/scratch1",
            40_000,
            7,
            secs(60),
        )));
        gris.add_provider(Box::new(QueueProvider::new(
            &host,
            "default",
            4.0,
            9,
            secs(30),
        )));
        gris
    }

    fn search(gris: &mut Gris, spec: SearchSpec, now: SimTime) -> (ResultCode, Vec<Entry>) {
        let replies = gris.handle_request(1, GripRequest::Search { id: 1, spec }, now);
        match replies.into_iter().next().unwrap() {
            GripReply::SearchResult { code, entries, .. } => (code, entries),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn subtree_search_merges_all_providers() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        // host + perf + store + queue entries.
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn lookup_returns_single_entry() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("queue=default, hn=hostX").unwrap()),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].has_class("queue"));
    }

    #[test]
    fn filter_selects_by_attributes() {
        let mut gris = host_gris();
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(
                Dn::parse("hn=hostX").unwrap(),
                Filter::parse("(objectclass=computer)").unwrap(),
            ),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get_str("system"), Some("mips irix"));
    }

    #[test]
    fn namespace_pruning_skips_unrelated_providers() {
        let mut gris = host_gris();
        // A lookup under the store subtree prunes the dynamic-host and
        // queue providers (disjoint subtrees). The static host provider's
        // namespace *contains* the base, so it cannot be pruned.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("store=scratch, hn=hostX").unwrap()),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(
            gris.stats().provider_invocations,
            2,
            "fs + static-host run; perf and queue are pruned"
        );
    }

    #[test]
    fn cache_prevents_repeated_invocations() {
        let mut gris = host_gris();
        // The lookup touches the dynamic provider (TTL 30s) and the
        // static host provider whose namespace contains the base
        // (TTL 1h).
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        search(&mut gris, spec.clone(), t(0));
        assert_eq!(gris.stats().provider_invocations, 2);
        search(&mut gris, spec.clone(), t(5)); // both within TTL
        assert_eq!(gris.stats().provider_invocations, 2);
        assert_eq!(gris.stats().cache_hits, 2);
        search(&mut gris, spec, t(31)); // dynamic TTL expired, static cached
        assert_eq!(gris.stats().provider_invocations, 3);
        assert_eq!(gris.stats().cache_hits, 3);
    }

    #[test]
    fn provider_failure_yields_partial_results() {
        let mut gris = host_gris();
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        assert_eq!(code, ResultCode::PartialResults);
        assert_eq!(entries.len(), 3, "other providers still answer");
    }

    #[test]
    fn serve_stale_within_window_marks_entries_and_code() {
        let mut gris = host_gris();
        gris.config.stale_ttl = Some(secs(300));
        // Populate the dynamic provider's cache, then fail it.
        search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        // t=40: past the 30s cache TTL, inside the 300s stale window.
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(40),
        );
        assert_eq!(code, ResultCode::StaleResults);
        assert_eq!(entries.len(), 4, "failed provider's entries retained");
        let perf = entries
            .iter()
            .find(|e| e.dn().to_string().starts_with("perf="))
            .expect("stale perf entry present");
        assert_eq!(perf.get_str("stale"), Some("TRUE"));
        assert_eq!(perf.get_str("staleage"), Some("40"));
        assert_eq!(gris.stats().stale_served, 1);

        // Recovery: once the provider heals, answers are fresh again.
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = false;
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(80),
        );
        assert_eq!(code, ResultCode::Success);
        assert!(entries.iter().all(|e| !e.has("stale")));
    }

    #[test]
    fn serve_stale_window_expiry_degrades_to_partial() {
        let mut gris = host_gris();
        gris.config.stale_ttl = Some(secs(300));
        search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(0),
        );
        gris.provider_mut::<DynamicHostProvider>("dynamic-host:hostX")
            .unwrap()
            .fail = true;
        // t=400: even the stale window has lapsed — the data is gone.
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            t(400),
        );
        assert_eq!(code, ResultCode::PartialResults);
        assert_eq!(entries.len(), 3);
        assert_eq!(gris.stats().provider_failures, 1);
    }

    #[test]
    fn search_outside_suffix_is_no_such_object() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("hn=hostY").unwrap()),
            t(0),
        );
        assert_eq!(code, ResultCode::NoSuchObject);
        assert!(entries.is_empty());
    }

    #[test]
    fn size_limit_enforced() {
        let mut gris = host_gris();
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()).limit(2),
            t(0),
        );
        assert_eq!(code, ResultCode::SizeLimitExceeded);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn attribute_projection() {
        let mut gris = host_gris();
        let (_, entries) = search(
            &mut gris,
            SearchSpec::lookup(Dn::parse("hn=hostX").unwrap()).select(&["system"]),
            t(0),
        );
        assert!(entries[0].has("system"));
        assert!(!entries[0].has("cpucount"));
    }

    #[test]
    fn acl_restricts_attributes_and_filter_cannot_probe() {
        let host = HostSpec::linux("h", 4);
        let mut config = GrisConfig::open(LdapUrl::server("gris.h"), host.dn());
        // Anonymous users may see the system type but not load averages.
        config.security.policy_map.set(
            host.dn(),
            Acl::default()
                .with_rule(
                    Principal::Anonymous,
                    Grant::Attrs(vec!["system".into(), "objectclass".into()]),
                )
                .with_rule(Principal::Authenticated, Grant::All),
        );
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
        gris.add_provider(Box::new(DynamicHostProvider::new(
            &host,
            1,
            1.0,
            secs(10),
            secs(30),
        )));

        // Anonymous: load5 invisible, and a filter on load5 matches nothing.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::parse("(load5=*)").unwrap()),
            t(0),
        );
        assert!(entries.is_empty(), "filter must not see hidden attributes");
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::parse("(system=*)").unwrap()),
            t(0),
        );
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].has("cpucount"), "cpucount not granted");
    }

    #[test]
    fn bind_flow_with_authenticator() {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 11);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let url = LdapUrl::server("gris.h");
        let host = HostSpec::linux("h", 2);
        let mut config = GrisConfig::open(url.clone(), host.dn());
        config.security = SecurityPolicy::authenticated(ca.issue("/O=Grid/CN=gris.svc"), trust)
            .with_policy_map(PolicyMap::with_default(Acl::authenticated_only()));
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));

        // Anonymous search is denied everything.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::always()),
            t(0),
        );
        assert!(entries.is_empty());

        // Bind as alice, then the search succeeds.
        let alice = ca.issue("/O=Grid/CN=alice");
        let token = gis_gsi::BindToken::create(&alice, &url.to_string()).to_bytes();
        let replies = gris.handle_request(
            1,
            GripRequest::Bind {
                id: 9,
                subject: "/O=Grid/CN=alice".into(),
                token,
            },
            t(1),
        );
        assert!(matches!(replies[0], GripReply::BindResult { ok: true, .. }));
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(host.dn(), Filter::always()),
            t(2),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(gris.stats().binds_ok, 1);

        // A different client is still anonymous.
        let replies = gris.handle_request(
            2,
            GripRequest::Search {
                id: 1,
                spec: SearchSpec::subtree(host.dn(), Filter::always()),
            },
            t(3),
        );
        match &replies[0] {
            GripReply::SearchResult { entries, .. } => assert!(entries.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_without_authenticator_fails_closed() {
        let mut gris = host_gris();
        let replies = gris.handle_request(
            1,
            GripRequest::Bind {
                id: 1,
                subject: "/CN=anyone".into(),
                token: vec![],
            },
            t(0),
        );
        assert!(matches!(
            replies[0],
            GripReply::BindResult { ok: false, .. }
        ));
        assert_eq!(gris.stats().binds_failed, 1);
    }

    #[test]
    fn periodic_subscription_delivers_on_schedule() {
        let mut gris = host_gris();
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        let replies = gris.handle_request(
            5,
            GripRequest::Subscribe {
                id: 77,
                spec,
                mode: SubscriptionMode::Periodic(secs(10)),
            },
            t(0),
        );
        assert!(
            matches!(replies[0], GripReply::Update { .. }),
            "initial snapshot"
        );
        assert_eq!(gris.subscription_count(), 1);

        assert!(gris.tick(t(5)).updates.is_empty(), "not due yet");
        let out = gris.tick(t(10));
        assert_eq!(out.updates.len(), 1);
        assert_eq!(out.updates[0].0, 5);

        // Unsubscribe stops delivery.
        gris.handle_request(5, GripRequest::Unsubscribe { id: 77 }, t(11));
        assert!(gris.tick(t(20)).updates.is_empty());
        assert_eq!(gris.subscription_count(), 0);
    }

    #[test]
    fn on_change_subscription_suppresses_unchanged() {
        let mut gris = host_gris();
        // Static host data never changes: after the initial snapshot, no
        // further updates arrive.
        let spec = SearchSpec::lookup(Dn::parse("hn=hostX").unwrap());
        gris.handle_request(
            6,
            GripRequest::Subscribe {
                id: 1,
                spec,
                mode: SubscriptionMode::OnChange,
            },
            t(0),
        );
        assert!(gris.tick(t(100)).updates.is_empty());
        assert!(gris.tick(t(5000)).updates.is_empty());

        // Dynamic data does change (cache TTL 30s, load period 10s).
        let spec = SearchSpec::lookup(Dn::parse("perf=load, hn=hostX").unwrap());
        gris.handle_request(
            6,
            GripRequest::Subscribe {
                id: 2,
                spec,
                mode: SubscriptionMode::OnChange,
            },
            t(5000),
        );
        let out = gris.tick(t(5040));
        assert_eq!(out.updates.len(), 1, "load changed after TTL expiry");
    }

    #[test]
    fn tick_emits_registrations() {
        let mut gris = host_gris();
        gris.agent.add_target(LdapUrl::server("giis.vo-a"));
        let out = gris.tick(t(0));
        assert_eq!(out.registrations.len(), 1);
        let (dir, msg) = &out.registrations[0];
        assert_eq!(dir, &LdapUrl::server("giis.vo-a"));
        assert_eq!(msg.service_url, LdapUrl::server("gris.hostX"));
        // Not due again immediately.
        assert!(gris.tick(t(1)).registrations.is_empty());
        assert_eq!(gris.tick(t(30)).registrations.len(), 1);
    }

    #[test]
    fn invitation_adds_target() {
        let mut gris = host_gris();
        let invite = GrrpMessage::invite(
            LdapUrl::server("gris.hostX"),
            LdapUrl::server("giis.vo-b"),
            t(0),
            secs(60),
        );
        assert!(gris.handle_grrp(&invite));
        let out = gris.tick(t(0));
        assert_eq!(out.registrations.len(), 1);
        assert_eq!(out.registrations[0].0, LdapUrl::server("giis.vo-b"));
    }

    #[test]
    fn schema_validation_drops_invalid_entries() {
        use gis_ldap::{ObjectClassDef, Schema, Strictness};
        // A provider that emits one valid and one invalid entry.
        struct SloppyProvider {
            ns: Dn,
        }
        impl crate::provider::InfoProvider for SloppyProvider {
            fn name(&self) -> &str {
                "sloppy"
            }
            fn namespace(&self) -> &Dn {
                &self.ns
            }
            fn cache_ttl(&self) -> SimDuration {
                SimDuration::ZERO
            }
            fn fetch(
                &mut self,
                _spec: &SearchSpec,
                _now: SimTime,
            ) -> Result<Vec<Entry>, crate::provider::ProviderError> {
                Ok(vec![
                    Entry::new(self.ns.clone())
                        .with_class("widget")
                        .with("serial", "123"),
                    Entry::new(self.ns.child(gis_ldap::Rdn::new("w", "bad"))).with_class("widget"), // missing required "serial"
                ])
            }
        }

        let ns = Dn::parse("hn=w").unwrap();
        let mut schema = Schema::new();
        schema.define(ObjectClassDef::new("widget").requires("serial"));
        let mut config = GrisConfig::open(LdapUrl::server("gris.w"), ns.clone());
        config.schema = Some((schema, Strictness::Lenient));
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(SloppyProvider { ns: ns.clone() }));

        let (code, entries) = gris.search(
            &SearchSpec::subtree(ns, Filter::always()),
            &gis_gsi::Requester::anonymous(),
            t(0),
        );
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 1, "invalid entry dropped");
        assert_eq!(gris.stats().schema_violations, 1);
    }

    #[test]
    fn monitoring_namespace_search() {
        let mut gris = host_gris();
        // Generate some traffic so the self-description has data.
        let spec = SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always());
        search(&mut gris, spec.clone(), t(0));
        search(&mut gris, spec, t(5));

        // A plain GRIP search of the monitoring namespace answers with
        // the service entry, per-provider entries, and metric entries.
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(
                Dn::parse("Mds-Vo-name=monitoring").unwrap(),
                Filter::always(),
            ),
            t(10),
        );
        assert_eq!(code, ResultCode::Success);
        let svc = entries
            .iter()
            .find(|e| e.has_class("mds-service"))
            .expect("service entry");
        assert_eq!(svc.get_str("service-type"), Some("gris"));
        // 2 data queries plus the monitoring query itself (counted
        // before the snapshot was built).
        assert_eq!(svc.get_str("queries"), Some("3"));
        assert_eq!(svc.get_str("providers"), Some("4"));
        // 8 resolutions: 4 misses at t=0, 4 hits at t=5.
        assert_eq!(svc.get_str("cache-hits"), Some("4"));
        assert_eq!(svc.get_str("cache-misses"), Some("4"));
        assert_eq!(svc.get_str("cache-hit-ratio"), Some("0.500"));
        assert_eq!(
            entries
                .iter()
                .filter(|e| e.has_class("mds-provider"))
                .count(),
            4
        );
        // Histograms export live percentiles.
        let hist = entries
            .iter()
            .find(|e| e.get_str("metric-kind") == Some("histogram") && e.has("p50-us"))
            .expect("histogram metric entry");
        assert!(hist.get_str("p95-us").is_some());
        assert!(hist.get_str("p99-us").is_some());

        // Ordinary filters work against the namespace.
        let (_, filtered) = search(
            &mut gris,
            SearchSpec::subtree(
                Dn::parse("Mds-Vo-name=monitoring").unwrap(),
                Filter::parse("(objectclass=mds-provider)").unwrap(),
            ),
            t(11),
        );
        assert_eq!(filtered.len(), 4);
        assert_eq!(gris.stats().monitoring_queries, 2);
    }

    #[test]
    fn monitoring_snapshot_refreshes_on_soft_state_timer() {
        let mut gris = host_gris();
        let mon = SearchSpec::subtree(
            Dn::parse("Mds-Vo-name=monitoring").unwrap(),
            Filter::parse("(objectclass=mds-service)").unwrap(),
        );
        // The first monitoring query builds the snapshot (and is itself
        // already counted).
        let (_, before) = search(&mut gris, mon.clone(), t(0));
        assert_eq!(before[0].get_str("queries"), Some("1"));
        // Traffic arrives; within the refresh window the snapshot is
        // unchanged, after it the new counters appear.
        let spec = SearchSpec::lookup(Dn::parse("hn=hostX").unwrap());
        search(&mut gris, spec, t(1));
        let (_, during) = search(&mut gris, mon.clone(), t(2));
        assert_eq!(during[0].get_str("queries"), Some("1"), "within TTL");
        let (_, after) = search(&mut gris, mon, t(10));
        let q: i64 = after[0].get_str("queries").unwrap().parse().unwrap();
        assert!(q >= 2, "snapshot rebuilt after refresh interval");
    }

    #[test]
    fn observability_off_hides_monitoring_namespace() {
        let host = HostSpec::linux("h", 2);
        let mut config = GrisConfig::open(LdapUrl::server("gris.h"), host.dn());
        config.observability = false;
        let mut gris = Gris::new(config, secs(30), secs(90));
        gris.add_provider(Box::new(StaticHostProvider::new(host)));
        let (code, entries) = search(
            &mut gris,
            SearchSpec::subtree(
                Dn::parse("Mds-Vo-name=monitoring").unwrap(),
                Filter::always(),
            ),
            t(0),
        );
        assert_eq!(code, ResultCode::NoSuchObject);
        assert!(entries.is_empty());
    }

    #[test]
    fn traced_search_records_span_tree() {
        use gis_proto::trace::{TraceContext, TraceId, TraceSink};
        let mut gris = host_gris();
        let sink = Arc::new(TraceSink::new());
        gris.set_trace_sink(Arc::clone(&sink));
        let trace = TraceId(sink.next_span());
        let ctx = TraceContext {
            trace,
            parent: trace.0,
        };
        let replies = gris.handle_request_traced(
            1,
            GripRequest::Search {
                id: 1,
                spec: SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            },
            Some(ctx),
            t(0),
        );
        assert!(matches!(
            replies[0],
            GripReply::SearchResult {
                code: ResultCode::Success,
                ..
            }
        ));
        let spans = sink.spans(trace);
        let search_span = spans
            .iter()
            .find(|s| s.name == "gris.search")
            .expect("search span");
        assert_eq!(search_span.parent, Some(trace.0));
        assert_eq!(search_span.outcome, "success");
        // All four providers fetched, each a child of the search span.
        let provider_spans: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("provider:"))
            .collect();
        assert_eq!(provider_spans.len(), 4);
        assert!(provider_spans
            .iter()
            .all(|s| s.parent == Some(search_span.span) && s.outcome == "fresh"));
        // A repeat query's provider spans are cache hits.
        gris.handle_request_traced(
            1,
            GripRequest::Search {
                id: 2,
                spec: SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always()),
            },
            Some(ctx),
            t(1),
        );
        assert!(sink.spans(trace).iter().any(|s| s.outcome == "cache-hit"));
        // Untraced searches record nothing new.
        let before = sink.len();
        gris.search(
            &SearchSpec::lookup(Dn::parse("hn=hostX").unwrap()),
            &Requester::anonymous(),
            t(2),
        );
        assert_eq!(sink.len(), before);
    }

    #[test]
    fn stats_snapshot_holds_invariants_under_concurrent_hammer() {
        let gris = {
            let mut g = host_gris();
            g.config.stale_ttl = Some(secs(300));
            g
        };
        let path = gris.query_path();
        let spec = SearchSpec::subtree(Dn::parse("hn=hostX").unwrap(), Filter::always());
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            // Reader thread: every live snapshot must satisfy the
            // documented invariants — the packed cache word never tears,
            // and per-miss outcomes never exceed counted misses.
            let stats = &path;
            let done = &done;
            s.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = stats.stats();
                    assert!(
                        s.provider_invocations + s.stale_served + s.provider_failures
                            <= s.cache_misses,
                        "outcomes exceed misses: {s:?}"
                    );
                    std::hint::spin_loop();
                }
            });
            let searchers: Vec<_> = (0..4)
                .map(|w| {
                    let path = path.clone();
                    let spec = spec.clone();
                    s.spawn(move || {
                        for i in 0..300u64 {
                            // Advancing sim time expires cache TTLs,
                            // mixing hits and misses.
                            let now = SimTime::ZERO + secs(i * 7 + w);
                            let _ = path.handle_query(
                                w,
                                GripRequest::Search {
                                    id: i,
                                    spec: spec.clone(),
                                },
                                now,
                            );
                        }
                    })
                })
                .collect();
            for h in searchers {
                h.join().unwrap();
            }
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // Quiesced: the identities are exact. Every search resolves all
        // four slots (all cacheable, all eligible).
        let s = path.stats();
        assert_eq!(s.queries, 4 * 300);
        assert_eq!(s.cache_hits + s.cache_misses, 4 * 300 * 4);
        assert_eq!(
            s.provider_invocations + s.stale_served + s.provider_failures,
            s.cache_misses
        );
    }

    #[test]
    fn drop_client_clears_state() {
        let mut gris = host_gris();
        gris.handle_request(
            3,
            GripRequest::Subscribe {
                id: 1,
                spec: SearchSpec::lookup(Dn::parse("hn=hostX").unwrap()),
                mode: SubscriptionMode::Periodic(secs(5)),
            },
            t(0),
        );
        assert_eq!(gris.subscription_count(), 1);
        gris.drop_client(3);
        assert_eq!(gris.subscription_count(), 0);
        assert!(gris.tick(t(10)).updates.is_empty());
    }

    #[test]
    fn persistence_warms_slot_caches_across_restart() {
        let storage: Arc<dyn gis_store::Storage> = Arc::new(gis_store::MemStorage::new());
        let mut gris = host_gris();
        gris.set_persistence(storage.clone(), JournalOptions::default(), t(0));
        // Invitation target must also survive the restart.
        assert!(gris.handle_grrp(&GrrpMessage::invite(
            LdapUrl::server("gris.hostX"),
            LdapUrl::server("giis.vo"),
            t(0),
            secs(90),
        )));
        // Populate every slot cache, then tick to checkpoint it.
        let (_, entries) = search(
            &mut gris,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=*)").unwrap()),
            t(0),
        );
        assert!(!entries.is_empty());
        let fetched = gris.stats().provider_invocations;
        assert_eq!(fetched, 4, "all four providers fetched cold");
        gris.tick(t(1));
        drop(gris);

        // Restart within every provider's cache TTL: the first search is
        // answered entirely from the recovered caches.
        let mut gris = host_gris();
        let report = gris.set_persistence(storage, JournalOptions::default(), t(5));
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert!(report.snapshot.is_some(), "tick wrote a checkpoint");
        let (_, warm) = search(
            &mut gris,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=*)").unwrap()),
            t(5),
        );
        assert_eq!(warm.len(), entries.len());
        assert_eq!(
            gris.stats().provider_invocations,
            0,
            "served from warm cache"
        );
        assert_eq!(
            gris.agent.targets(),
            &[LdapUrl::server("giis.vo")],
            "invitation target recovered"
        );
    }

    #[test]
    fn persistence_skips_unchanged_snapshots() {
        let storage: Arc<dyn gis_store::Storage> = Arc::new(gis_store::MemStorage::new());
        let mut gris = host_gris();
        gris.set_persistence(storage.clone(), JournalOptions::default(), t(0));
        search(
            &mut gris,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=*)").unwrap()),
            t(0),
        );
        gris.tick(t(1));
        let after_first = storage.list().unwrap();
        // Nothing re-fetched between ticks → no new snapshot files.
        gris.tick(t(2));
        gris.tick(t(3));
        assert_eq!(storage.list().unwrap(), after_first);
    }
}
