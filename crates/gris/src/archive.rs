//! Archival information provider — the §6 GRIP *extension* example.
//!
//! "The retrieval of archival information can require the support of
//! more powerful database query interfaces, to reduce search costs over
//! a continuously growing mountain of data. ... Resources may offer
//! additional information delivery capabilities beyond those provided by
//! GRIP. For example, an information provider that interfaces to a large
//! archive might implement protocol extensions to support richer
//! relational queries."
//!
//! This provider serves a host's load-average *history* under
//! `archive=load, <host>`: one entry per sampling period, named
//! `t=<micros>`. The history is unbounded, so plain subtree searches are
//! refused; the extension is that queries must carry **time-range
//! constraints** (`(t>=..)(t<=..)` terms in the filter), which the
//! provider interprets *before* generating entries — a query-shaped
//! interface rather than an enumerable tree, with results generated
//! lazily from the deterministic measurement series.

use crate::provider::{InfoProvider, ProviderError};
use crate::providers::DynamicHostProvider;
use gis_ldap::{Dn, Entry, Filter, Rdn};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::SearchSpec;

/// Maximum samples returned for one query; wider ranges are refused
/// (the "reduce search costs" discipline).
pub const MAX_SAMPLES: u64 = 1000;

/// Time-range bounds extracted from a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// Inclusive lower bound, microseconds.
    pub from: u64,
    /// Inclusive upper bound, microseconds.
    pub to: u64,
}

/// Scan a filter for top-level `t>=`/`t<=` constraints (inside the
/// outermost `And`s). Returns `None` when either bound is missing.
pub fn extract_time_range(filter: &Filter) -> Option<TimeRange> {
    fn walk(f: &Filter, lo: &mut Option<u64>, hi: &mut Option<u64>) {
        match f {
            Filter::And(fs) => {
                for sub in fs {
                    walk(sub, lo, hi);
                }
            }
            Filter::Ge(attr, v) if attr == "t" => {
                if let Ok(x) = v.trim().parse::<u64>() {
                    *lo = Some(lo.map_or(x, |cur: u64| cur.max(x)));
                }
            }
            Filter::Le(attr, v) if attr == "t" => {
                if let Ok(x) = v.trim().parse::<u64>() {
                    *hi = Some(hi.map_or(x, |cur: u64| cur.min(x)));
                }
            }
            _ => {}
        }
    }
    let mut lo = None;
    let mut hi = None;
    walk(filter, &mut lo, &mut hi);
    match (lo, hi) {
        (Some(from), Some(to)) if from <= to => Some(TimeRange { from, to }),
        _ => None,
    }
}

/// A load-history archive for one host.
pub struct ArchiveProvider {
    namespace: Dn,
    name: String,
    /// The measurement source whose deterministic series is archived.
    source: DynamicHostProvider,
    /// Sampling period of the archive.
    pub period: SimDuration,
    /// Range queries answered.
    pub queries_answered: u64,
    /// Samples generated in total.
    pub samples_served: u64,
}

impl ArchiveProvider {
    /// Archive the given dynamic-host source at its own change period.
    pub fn new(source: DynamicHostProvider) -> ArchiveProvider {
        let host_dn = source.host_dn().clone();
        let namespace = host_dn.child(Rdn::new("archive", "load"));
        let name = format!("archive:{}", host_dn);
        let period = source.period;
        ArchiveProvider {
            namespace,
            name,
            source,
            period,
            queries_answered: 0,
            samples_served: 0,
        }
    }
}

impl InfoProvider for ArchiveProvider {
    fn name(&self) -> &str {
        &self.name
    }
    fn namespace(&self) -> &Dn {
        &self.namespace
    }
    fn cache_ttl(&self) -> SimDuration {
        SimDuration::ZERO // every range query is answered fresh
    }
    fn cacheable(&self) -> bool {
        false
    }
    fn fetch(&mut self, spec: &SearchSpec, now: SimTime) -> Result<Vec<Entry>, ProviderError> {
        let Some(range) = extract_time_range(&spec.filter) else {
            return Err(ProviderError::TooWide(format!(
                "archive {} requires (t>=..)(t<=..) range constraints",
                self.namespace
            )));
        };
        let to = range.to.min(now.micros());
        if range.from > to {
            return Ok(Vec::new());
        }
        let period = self.period.micros().max(1);
        let first_step = range.from.div_ceil(period);
        let last_step = to / period;
        if last_step.saturating_sub(first_step) + 1 > MAX_SAMPLES {
            return Err(ProviderError::TooWide(format!(
                "range spans {} samples; limit is {MAX_SAMPLES}",
                last_step - first_step + 1
            )));
        }
        let mut out = Vec::new();
        for step in first_step..=last_step {
            let t = step * period;
            let load = self.source.true_load(SimTime(t));
            out.push(
                Entry::new(self.namespace.child(Rdn::new("t", t.to_string())))
                    .with_class("perfarchive")
                    .with("t", t)
                    .with("load5", load),
            );
        }
        self.queries_answered += 1;
        self.samples_served += out.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::HostSpec;
    use gis_netsim::secs;

    fn provider() -> ArchiveProvider {
        let host = HostSpec::linux("h", 2);
        ArchiveProvider::new(DynamicHostProvider::new(&host, 5, 1.0, secs(10), secs(30)))
    }

    fn range_spec(from_s: u64, to_s: u64) -> SearchSpec {
        let f = Filter::parse(&format!(
            "(&(objectclass=perfarchive)(t>={})(t<={}))",
            from_s * 1_000_000,
            to_s * 1_000_000
        ))
        .unwrap();
        SearchSpec::subtree(Dn::parse("archive=load, hn=h").unwrap(), f)
    }

    #[test]
    fn range_query_returns_one_sample_per_period() {
        let mut p = provider();
        let entries = p
            .fetch(&range_spec(100, 200), SimTime::ZERO + secs(1000))
            .unwrap();
        assert_eq!(entries.len(), 11, "t=100..=200 step 10");
        assert!(entries.iter().all(|e| e.has_class("perfarchive")));
        let t0 = entries[0].get_i64("t").unwrap();
        assert_eq!(t0, 100_000_000);
        assert_eq!(p.samples_served, 11);
    }

    #[test]
    fn history_is_reproducible() {
        let mut p1 = provider();
        let mut p2 = provider();
        let now = SimTime::ZERO + secs(1000);
        assert_eq!(
            p1.fetch(&range_spec(0, 500), now).unwrap(),
            p2.fetch(&range_spec(0, 500), now).unwrap()
        );
    }

    #[test]
    fn unbounded_queries_refused() {
        let mut p = provider();
        let now = SimTime::ZERO + secs(100);
        for f in ["(objectclass=*)", "(t>=0)", "(t<=1000)"] {
            let spec = SearchSpec::subtree(
                Dn::parse("archive=load, hn=h").unwrap(),
                Filter::parse(f).unwrap(),
            );
            assert!(
                matches!(p.fetch(&spec, now), Err(ProviderError::TooWide(_))),
                "{f} must be refused"
            );
        }
    }

    #[test]
    fn oversized_range_refused() {
        let mut p = provider();
        // 20000 s / 10 s period = 2000 samples > 1000 cap.
        let err = p
            .fetch(&range_spec(0, 20_000), SimTime::ZERO + secs(30_000))
            .unwrap_err();
        assert!(matches!(err, ProviderError::TooWide(_)));
    }

    #[test]
    fn future_samples_not_fabricated() {
        let mut p = provider();
        // Ask for t in [100 s, 200 s] when now = 150 s: only the past half.
        let entries = p
            .fetch(&range_spec(100, 200), SimTime::ZERO + secs(150))
            .unwrap();
        assert_eq!(entries.len(), 6, "t=100..=150");
    }

    #[test]
    fn empty_range_is_empty() {
        let mut p = provider();
        // from > now entirely.
        let entries = p
            .fetch(&range_spec(500, 600), SimTime::ZERO + secs(100))
            .unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn extract_range_combines_bounds() {
        let f = Filter::parse("(&(a=1)(t>=100)(&(t<=900)(t<=500))(t>=200))").unwrap();
        assert_eq!(
            extract_time_range(&f),
            Some(TimeRange { from: 200, to: 500 }),
            "tightest bounds win"
        );
        assert_eq!(extract_time_range(&Filter::parse("(t>=5)").unwrap()), None);
        assert_eq!(
            extract_time_range(&Filter::parse("(&(t>=10)(t<=5))").unwrap()),
            None,
            "inverted range rejected"
        );
        // Bounds under Or are not safe to use.
        assert_eq!(
            extract_time_range(&Filter::parse("(|(t>=1)(t<=2))").unwrap()),
            None
        );
    }

    #[test]
    fn archived_values_match_live_source() {
        let host = HostSpec::linux("h", 2);
        let live = DynamicHostProvider::new(&host, 5, 1.0, secs(10), secs(30));
        let mut p = provider();
        let entries = p
            .fetch(&range_spec(100, 100), SimTime::ZERO + secs(1000))
            .unwrap();
        let archived = entries[0].get_f64("load5").unwrap();
        assert_eq!(archived, live.true_load(SimTime::ZERO + secs(100)));
    }
}
