//! GRIP and GRRP: the two base protocols of the Grid information service
//! architecture (§4 of the paper).
//!
//! "Interactions between higher-level services (or users) and providers
//! are defined in terms of two basic protocols: a soft-state registration
//! protocol for identifying entities participating in the information
//! service, and an enquiry protocol for retrieval of information about
//! those entities, whether via query or subscription."
//!
//! * [`grip`] — the enquiry protocol: search, lookup, subscription;
//! * [`grrp`] — the registration protocol: soft-state registry, refresh
//!   agent, failure detector;
//! * [`wire`] — binary encodings and the top-level [`ProtocolMessage`]
//!   frame moved by the runtimes;
//! * [`frame`] — length-prefixed framing of [`ProtocolMessage`] for byte
//!   streams (the TCP transport's wire format).
//!
//! Everything here is sans-IO: state machines take messages and clock
//! readings in and yield messages out, so the same code runs over the
//! deterministic simulator and the live threaded runtime.

#![warn(missing_docs)]

pub mod frame;
pub mod grip;
pub mod grrp;
pub mod metrics;
pub mod stats;
pub mod trace;
pub mod wire;

pub use frame::{
    encode_frame, encode_frame_limited, encode_mux_frame_limited, frame_bytes, Frame, FrameDecoder,
    FRAME_HEADER, MAX_FRAME, MUX_TAG,
};
pub use grip::{
    result_digest, GripReply, GripRequest, RequestId, ResultCode, SearchSpec, Subscription,
    SubscriptionMode, SubscriptionTable, SyncCookie,
};
pub use grrp::{
    FailureDetector, GrrpMessage, Notification, Registration, RegistrationAgent, SoftStateRegistry,
};
pub use metrics::{Gauge, Histogram, MetricsRegistry, PackedPair};
pub use stats::Counter;
pub use trace::{SpanRecord, TraceContext, TraceId, TraceSink};
pub use wire::{Handshake, ProtocolMessage};
