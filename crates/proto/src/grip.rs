//! GRIP — the GRid Information Protocol (§4.1).
//!
//! GRIP is the enquiry protocol: LDAP's data model, query language and
//! query/reply exchange. It supports three access modes:
//!
//! * **search** (discovery): scoped, filtered retrieval;
//! * **lookup** (enquiry): direct retrieval by name (a base-scope search);
//! * **subscription** (monitoring): a persistent search whose results are
//!   delivered asynchronously as updates ("push mode", §6).
//!
//! Messages are transport-agnostic values; `gis-gris`/`gis-giis` implement
//! the server sides, and the runtimes in `gis-core` move them over the
//! simulated or threaded network.

use gis_ldap::{Dn, Entry, Filter, LdapUrl, Scope};
use gis_netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Correlates a reply with its request within one client connection.
pub type RequestId = u64;

/// Result status of a GRIP operation (a pragmatic subset of LDAP result
/// codes, plus `PartialResults` for the paper's partition semantics:
/// "users should have as much partial or even inconsistent information as
/// is available", §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultCode {
    /// Operation completed.
    Success,
    /// The base object of the search does not exist.
    NoSuchObject,
    /// More entries matched than the size limit allowed.
    SizeLimitExceeded,
    /// The requester's credentials do not grant access.
    InsufficientAccess,
    /// The server cannot serve the request (e.g. provider down).
    Unavailable,
    /// Some information sources could not be reached; the entries
    /// returned are a partial view.
    PartialResults,
    /// A search against a non-enumerable namespace was too broad
    /// ("information providers that support queries on nonenumerable
    /// namespaces might signal an error ... for searches that use too wide
    /// a scope", §4.1).
    UnwillingToPerform,
    /// Every information source was consulted, but some entries were
    /// served from a last-known-good cache because their provider is
    /// currently unavailable (degraded serve-stale mode). Stale entries
    /// carry a `stale: TRUE` attribute. Weaker than `Success`, stronger
    /// than `PartialResults`: nothing is *missing*, but some of it is old.
    StaleResults,
    /// The peer's credentials failed verification: a handshake token or
    /// a GRRP registration signature did not chain to the receiver's
    /// trust store (§7: "ensure that registration messages are
    /// authentic"). Distinct from `InsufficientAccess` (authenticated
    /// but not authorized) and `UnwillingToPerform` (the receiver
    /// cannot authenticate at all).
    AuthRejected,
}

impl ResultCode {
    /// Short lowercase label for span outcomes, metrics labels and logs.
    pub fn label(self) -> &'static str {
        match self {
            ResultCode::Success => "success",
            ResultCode::NoSuchObject => "no-such-object",
            ResultCode::SizeLimitExceeded => "size-limit",
            ResultCode::InsufficientAccess => "insufficient-access",
            ResultCode::Unavailable => "unavailable",
            ResultCode::PartialResults => "partial",
            ResultCode::UnwillingToPerform => "unwilling",
            ResultCode::StaleResults => "stale",
            ResultCode::AuthRejected => "auth-rejected",
        }
    }
}

/// How subscription updates are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubscriptionMode {
    /// Deliver a fresh result every `period` ("push frequent updates").
    Periodic(SimDuration),
    /// Deliver only when the result set changes.
    OnChange,
}

/// The parameters shared by search, lookup and subscribe operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpec {
    /// Base DN the operation is rooted at.
    pub base: Dn,
    /// Search scope.
    pub scope: Scope,
    /// Filter each candidate must satisfy.
    pub filter: Filter,
    /// Attributes to return; empty means all ("reducing the amount of
    /// information that must be transmitted", §4.1).
    pub attrs: Vec<String>,
    /// Maximum entries to return; 0 means unlimited.
    pub size_limit: u32,
}

impl SearchSpec {
    /// A subtree search under `base` with the given filter.
    pub fn subtree(base: Dn, filter: Filter) -> SearchSpec {
        SearchSpec {
            base,
            scope: Scope::Sub,
            filter,
            attrs: Vec::new(),
            size_limit: 0,
        }
    }

    /// A direct lookup (base-scope, match-anything) of one entry.
    pub fn lookup(dn: Dn) -> SearchSpec {
        SearchSpec {
            base: dn,
            scope: Scope::Base,
            filter: Filter::always(),
            attrs: Vec::new(),
            size_limit: 0,
        }
    }

    /// Restrict the returned attributes (builder style).
    pub fn select(mut self, attrs: &[&str]) -> SearchSpec {
        self.attrs = attrs.iter().map(|a| a.to_ascii_lowercase()).collect();
        self
    }

    /// Set a size limit (builder style).
    pub fn limit(mut self, n: u32) -> SearchSpec {
        self.size_limit = n;
        self
    }
}

/// Client-to-server GRIP requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GripRequest {
    /// Authenticate the connection (GSI mutual authentication, §7). The
    /// token is produced and checked by `gis-gsi`.
    Bind {
        /// Request id.
        id: RequestId,
        /// Claimed subject name.
        subject: String,
        /// Opaque credential proof.
        token: Vec<u8>,
    },
    /// One-shot search/lookup.
    Search {
        /// Request id.
        id: RequestId,
        /// What to search.
        spec: SearchSpec,
    },
    /// Persistent search: deliver updates until unsubscribed.
    Subscribe {
        /// Request id (also names the subscription).
        id: RequestId,
        /// What to watch.
        spec: SearchSpec,
        /// Delivery mode.
        mode: SubscriptionMode,
    },
    /// Cancel a subscription.
    Unsubscribe {
        /// The subscription's request id.
        id: RequestId,
    },
    /// Federation bulk pull (directory-to-directory): ask a child GIIS
    /// for everything that changed since `cookie`, restricted to
    /// `subtrees` (empty = the child's whole index). A `None` cookie —
    /// or one from another epoch, or one the child no longer covers —
    /// is answered with a full sync. Answered by
    /// [`GripReply::SyncDelta`].
    SyncPull {
        /// Request id.
        id: RequestId,
        /// Where the puller already is in the child's lineage, if
        /// anywhere.
        cookie: Option<SyncCookie>,
        /// Shard scope: only entries under these DNs are wanted.
        subtrees: Vec<Dn>,
    },
}

/// Where a federation puller stands in one child's snapshot lineage.
/// Versions are only meaningful within an epoch (one incarnation of the
/// child's lineage); a restarted child mints a fresh epoch, and a
/// mismatched epoch always forces a full sync — without it, a version
/// from the previous incarnation could collide with a numerically equal
/// new one and the puller would silently keep divergent rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncCookie {
    /// The child lineage incarnation this cookie was minted in.
    pub epoch: u64,
    /// Last lineage version the puller has applied.
    pub version: u64,
}

impl GripRequest {
    /// The request id of any variant.
    pub fn id(&self) -> RequestId {
        match self {
            GripRequest::Bind { id, .. }
            | GripRequest::Search { id, .. }
            | GripRequest::Subscribe { id, .. }
            | GripRequest::Unsubscribe { id }
            | GripRequest::SyncPull { id, .. } => *id,
        }
    }

    /// Rewrite the request id in place. Multiplexed transports renumber
    /// requests into a per-connection correlation space before framing
    /// (and restore the original on the matching reply), so independent
    /// engines sharing one connection cannot collide.
    pub fn set_id(&mut self, new: RequestId) {
        match self {
            GripRequest::Bind { id, .. }
            | GripRequest::Search { id, .. }
            | GripRequest::Subscribe { id, .. }
            | GripRequest::Unsubscribe { id }
            | GripRequest::SyncPull { id, .. } => *id = new,
        }
    }
}

/// Server-to-client GRIP replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GripReply {
    /// Outcome of a bind.
    BindResult {
        /// Request id.
        id: RequestId,
        /// Whether authentication succeeded.
        ok: bool,
        /// The authenticated subject as seen by the server.
        subject: Option<String>,
    },
    /// Result of a one-shot search: matching entries plus any referrals
    /// ("we can return the name of the information provider directly to
    /// the client in the form of a LDAP URL", §10.4).
    SearchResult {
        /// Request id.
        id: RequestId,
        /// Result status.
        code: ResultCode,
        /// Matching entries.
        entries: Vec<Entry>,
        /// Referrals to consult directly.
        referrals: Vec<LdapUrl>,
    },
    /// An asynchronous subscription update.
    Update {
        /// The subscription's request id.
        id: RequestId,
        /// Current matching entries.
        entries: Vec<Entry>,
    },
    /// Subscription terminated (by unsubscribe or server shutdown).
    SubscriptionDone {
        /// The subscription's request id.
        id: RequestId,
        /// Final status.
        code: ResultCode,
    },
    /// Answer to a [`GripRequest::SyncPull`]: the child's changes since
    /// the presented cookie (`full = false`), or its entire sharded
    /// index (`full = true`, after which the puller must discard what it
    /// held for this child). Entries carry the lineage freshness stamps
    /// (`mds-fresh-at`, `mds-sync-version`); `epoch`/`version` form the
    /// cookie for the next pull and `at` is the child's "as of" clock.
    SyncDelta {
        /// Request id.
        id: RequestId,
        /// True when this is a full sync, not an increment.
        full: bool,
        /// The child lineage incarnation the versions belong to.
        epoch: u64,
        /// Lineage version this delta brings the puller up to.
        version: u64,
        /// The child's observation clock at serve time.
        at: SimTime,
        /// Created/modified entries (full sync: every entry).
        entries: Vec<Entry>,
        /// DNs deleted since the cookie (always empty on a full sync).
        deletes: Vec<Dn>,
    },
    /// Outcome of a GRRP registration the receiver chose to answer —
    /// today only the rejection path: a registration whose signature
    /// could not be verified is bounced back to its sender with
    /// [`ResultCode::AuthRejected`] so a mis-trusting provider learns it
    /// is being dropped instead of watching its soft state silently
    /// evaporate. (Accepted registrations stay unacknowledged; the
    /// soft-state model makes success observable by the entry's
    /// presence.)
    GrrpResult {
        /// Correlation id (0 when the registration carried none).
        id: RequestId,
        /// Why the registration was refused.
        code: ResultCode,
    },
}

impl GripReply {
    /// The request id of any variant.
    pub fn id(&self) -> RequestId {
        match self {
            GripReply::BindResult { id, .. }
            | GripReply::SearchResult { id, .. }
            | GripReply::Update { id, .. }
            | GripReply::SubscriptionDone { id, .. }
            | GripReply::SyncDelta { id, .. }
            | GripReply::GrrpResult { id, .. } => *id,
        }
    }

    /// Rewrite the reply id in place (the inverse of
    /// [`GripRequest::set_id`] on the reply path).
    pub fn set_id(&mut self, new: RequestId) {
        match self {
            GripReply::BindResult { id, .. }
            | GripReply::SearchResult { id, .. }
            | GripReply::Update { id, .. }
            | GripReply::SubscriptionDone { id, .. }
            | GripReply::SyncDelta { id, .. }
            | GripReply::GrrpResult { id, .. } => *id = new,
        }
    }
}

/// Server-side subscription bookkeeping, shared by GRIS and GIIS.
///
/// Generic over the subscriber address type `A` (a sim `NodeId`, a thread
/// channel id, ...).
#[derive(Debug, Clone)]
pub struct SubscriptionTable<A> {
    subs: BTreeMap<(A, RequestId), Subscription>,
}

/// One active subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// What the subscriber watches.
    pub spec: SearchSpec,
    /// Delivery mode.
    pub mode: SubscriptionMode,
    /// Fingerprint of the last delivered result set (for `OnChange`).
    pub last_digest: Option<u64>,
}

impl<A: Ord + Copy> SubscriptionTable<A> {
    /// Empty table.
    pub fn new() -> SubscriptionTable<A> {
        SubscriptionTable {
            subs: BTreeMap::new(),
        }
    }

    /// Register a subscription.
    pub fn subscribe(&mut self, who: A, id: RequestId, spec: SearchSpec, mode: SubscriptionMode) {
        self.subs.insert(
            (who, id),
            Subscription {
                spec,
                mode,
                last_digest: None,
            },
        );
    }

    /// Remove a subscription; returns true if it existed.
    pub fn unsubscribe(&mut self, who: A, id: RequestId) -> bool {
        self.subs.remove(&(who, id)).is_some()
    }

    /// Remove every subscription held by `who` (connection closed).
    pub fn drop_subscriber(&mut self, who: A) -> usize {
        let doomed: Vec<(A, RequestId)> = self
            .subs
            .keys()
            .filter(|(a, _)| *a == who)
            .copied()
            .collect();
        let n = doomed.len();
        for k in doomed {
            self.subs.remove(&k);
        }
        n
    }

    /// Iterate `(subscriber, id, subscription)` mutably — the evaluation
    /// loop uses this to compute and record deliveries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (A, RequestId, &mut Subscription)> {
        self.subs.iter_mut().map(|(&(a, id), s)| (a, id, s))
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when no subscriptions are active.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

impl<A: Ord + Copy> Default for SubscriptionTable<A> {
    fn default() -> Self {
        SubscriptionTable::new()
    }
}

/// Order-independent digest of a result set, used to suppress unchanged
/// `OnChange` deliveries. FNV-1a over each entry's canonical LDIF line
/// set, combined commutatively.
pub fn result_digest(entries: &[Entry]) -> u64 {
    let mut acc: u64 = 0;
    for e in entries {
        let mut h: u64 = 0xcbf29ce484222325;
        let text = gis_ldap::entry_to_ldif(e);
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        acc = acc.wrapping_add(h);
    }
    acc ^ (entries.len() as u64).wrapping_mul(0x9e3779b97f4a7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ldap::Entry;
    use gis_netsim::secs;

    #[test]
    fn spec_builders() {
        let s = SearchSpec::subtree(Dn::parse("o=O1").unwrap(), Filter::always())
            .select(&["System", "load5"])
            .limit(10);
        assert_eq!(s.scope, Scope::Sub);
        assert_eq!(s.attrs, vec!["system".to_string(), "load5".into()]);
        assert_eq!(s.size_limit, 10);

        let l = SearchSpec::lookup(Dn::parse("hn=hostX").unwrap());
        assert_eq!(l.scope, Scope::Base);
    }

    #[test]
    fn request_and_reply_ids() {
        let r = GripRequest::Search {
            id: 7,
            spec: SearchSpec::lookup(Dn::root()),
        };
        assert_eq!(r.id(), 7);
        let rep = GripReply::SearchResult {
            id: 7,
            code: ResultCode::Success,
            entries: vec![],
            referrals: vec![],
        };
        assert_eq!(rep.id(), 7);
    }

    #[test]
    fn subscription_table_lifecycle() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        let spec = SearchSpec::subtree(Dn::root(), Filter::always());
        table.subscribe(1, 100, spec.clone(), SubscriptionMode::OnChange);
        table.subscribe(1, 101, spec.clone(), SubscriptionMode::Periodic(secs(5)));
        table.subscribe(2, 100, spec, SubscriptionMode::OnChange);
        assert_eq!(table.len(), 3);
        assert!(table.unsubscribe(1, 100));
        assert!(!table.unsubscribe(1, 100));
        assert_eq!(table.drop_subscriber(1), 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn digest_detects_change_and_ignores_order() {
        let a = Entry::at("hn=a").unwrap().with("x", "1");
        let b = Entry::at("hn=b").unwrap().with("x", "2");
        let d1 = result_digest(&[a.clone(), b.clone()]);
        let d2 = result_digest(&[b.clone(), a.clone()]);
        assert_eq!(d1, d2, "order-independent");
        let mut a2 = a.clone();
        a2.add("x", "3");
        let d3 = result_digest(&[a2, b]);
        assert_ne!(d1, d3, "content change detected");
        assert_ne!(result_digest(&[]), d1);
    }

    #[test]
    fn digest_distinguishes_multiplicity() {
        let a = Entry::at("hn=a").unwrap().with("x", "1");
        assert_ne!(
            result_digest(std::slice::from_ref(&a)),
            result_digest(&[a.clone(), a])
        );
    }
}
