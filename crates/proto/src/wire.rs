//! Wire encodings for GRIP and GRRP messages.
//!
//! MDS-2.1 mapped GRRP onto LDAP add operations "for pragmatic reasons"
//! (§10.1); analogously, we reuse the LDAP substrate's codec primitives so
//! both protocols share one frame format. [`ProtocolMessage`] is the
//! top-level frame carried by the runtimes.

use crate::grip::{GripReply, GripRequest, ResultCode, SearchSpec, SubscriptionMode, SyncCookie};
use crate::grrp::{GrrpMessage, Notification};
use crate::trace::{TraceContext, TraceId};
use bytes::{BufMut, BytesMut};
use gis_ldap::codec::{put_str, put_varint, Wire, WireReader};
use gis_ldap::{Dn, Entry, Filter, LdapError, LdapUrl, Result, Scope};
use gis_netsim::{SimDuration, SimTime};

/// Top-level protocol frame: everything that travels between information
/// service components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolMessage {
    /// A GRIP request (client to server).
    Request(GripRequest),
    /// A GRIP reply (server to client).
    Reply(GripReply),
    /// A GRRP notification (provider to directory, or directory inviting).
    Grrp(GrrpMessage),
    /// A traced frame: any other frame wrapped with the request-scoped
    /// trace context it travels under. Receivers unwrap the envelope,
    /// open a span parented on `ctx.parent`, and propagate the context on
    /// any frames the request fans out into.
    Traced {
        /// The trace context accompanying the inner frame.
        ctx: TraceContext,
        /// The wrapped frame.
        inner: Box<ProtocolMessage>,
    },
    /// Connection-scoped mutual-auth handshake (§7). Exchanged before
    /// any GRIP/GRRP traffic on a connection; never mux-enveloped and
    /// never traced (it authenticates the *connection*, not a request).
    /// Usage is policy-gated like the mux envelope is version-gated:
    /// anonymous clients send no `Hello`, and a server never sends a
    /// handshake frame unsolicited, so an all-anonymous deployment sees
    /// no handshake bytes at all.
    Handshake(Handshake),
}

/// The mutual-auth handshake frames (§7: "GSI public-key security
/// mechanisms are used to verify credentials and to achieve mutual
/// authentication between information consumers and information
/// providers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handshake {
    /// Client → server, first frame on the connection: the client's
    /// bind token (`gis-gsi` `BindToken` bytes: cert chain +
    /// proof-of-possession targeting the service's URL).
    Hello {
        /// Serialized bind token.
        token: Vec<u8>,
    },
    /// Server → client on a verified `Hello`: the subject the server
    /// authenticated, plus the server's own bind token targeting that
    /// subject (mutual auth — the client verifies the service identity
    /// it dialed is the one that answered). Empty when the server holds
    /// no credential.
    Welcome {
        /// The client subject as the server verified it.
        subject: String,
        /// The server's bind token proving its own identity to the
        /// client; empty when the server has no credential.
        token: Vec<u8>,
    },
    /// Server → client: the handshake failed; the connection is closed
    /// after this frame. `AuthRejected` means the token did not verify;
    /// `UnwillingToPerform` means the server has no authenticator and
    /// cannot satisfy a client that demands mutual auth.
    Reject {
        /// Why the handshake failed.
        code: ResultCode,
    },
}

impl ProtocolMessage {
    /// Wrap `self` in a traced envelope (flattening is intentional: a
    /// re-wrap replaces the context rather than nesting).
    pub fn traced(self, ctx: TraceContext) -> ProtocolMessage {
        match self {
            ProtocolMessage::Traced { inner, .. } => ProtocolMessage::Traced { ctx, inner },
            other => ProtocolMessage::Traced {
                ctx,
                inner: Box::new(other),
            },
        }
    }

    /// Split a frame into its optional trace context and inner message.
    pub fn untraced(self) -> (Option<TraceContext>, ProtocolMessage) {
        match self {
            ProtocolMessage::Traced { ctx, inner } => (Some(ctx), *inner),
            other => (None, other),
        }
    }
}

// `SimTime`/`SimDuration` are foreign to both this crate and the codec
// trait's crate, so they get helper functions rather than `Wire` impls.

fn put_time(buf: &mut BytesMut, t: SimTime) {
    put_varint(buf, t.micros());
}

fn read_time(r: &mut WireReader<'_>) -> Result<SimTime> {
    Ok(SimTime(r.read_varint()?))
}

fn put_duration(buf: &mut BytesMut, d: SimDuration) {
    put_varint(buf, d.micros());
}

fn read_duration(r: &mut WireReader<'_>) -> Result<SimDuration> {
    Ok(SimDuration(r.read_varint()?))
}

impl Wire for Notification {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Notification::Register => 0,
            Notification::Invite => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Notification> {
        match r.read_u8()? {
            0 => Ok(Notification::Register),
            1 => Ok(Notification::Invite),
            b => Err(LdapError::Codec(format!("bad notification tag {b}"))),
        }
    }
}

impl Wire for GrrpMessage {
    fn encode(&self, buf: &mut BytesMut) {
        self.notification.encode(buf);
        self.service_url.encode(buf);
        self.namespace.encode(buf);
        put_time(buf, self.valid_from);
        put_time(buf, self.valid_until);
        self.reply_to.encode(buf);
        self.subject.encode(buf);
        match &self.signature {
            None => buf.put_u8(0),
            Some(sig) => {
                buf.put_u8(1);
                gis_ldap::codec::put_bytes(buf, sig);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<GrrpMessage> {
        Ok(GrrpMessage {
            notification: Notification::decode(r)?,
            service_url: LdapUrl::decode(r)?,
            namespace: Dn::decode(r)?,
            valid_from: read_time(r)?,
            valid_until: read_time(r)?,
            reply_to: Option::<LdapUrl>::decode(r)?,
            subject: Option::<String>::decode(r)?,
            signature: match r.read_u8()? {
                0 => None,
                1 => Some(r.read_bytes()?.to_vec()),
                b => return Err(LdapError::Codec(format!("bad signature tag {b}"))),
            },
        })
    }
}

impl Wire for ResultCode {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            ResultCode::Success => 0,
            ResultCode::NoSuchObject => 1,
            ResultCode::SizeLimitExceeded => 2,
            ResultCode::InsufficientAccess => 3,
            ResultCode::Unavailable => 4,
            ResultCode::PartialResults => 5,
            ResultCode::UnwillingToPerform => 6,
            ResultCode::StaleResults => 7,
            ResultCode::AuthRejected => 8,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<ResultCode> {
        Ok(match r.read_u8()? {
            0 => ResultCode::Success,
            1 => ResultCode::NoSuchObject,
            2 => ResultCode::SizeLimitExceeded,
            3 => ResultCode::InsufficientAccess,
            4 => ResultCode::Unavailable,
            5 => ResultCode::PartialResults,
            6 => ResultCode::UnwillingToPerform,
            7 => ResultCode::StaleResults,
            8 => ResultCode::AuthRejected,
            b => return Err(LdapError::Codec(format!("bad result code {b}"))),
        })
    }
}

impl Wire for SubscriptionMode {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SubscriptionMode::Periodic(d) => {
                buf.put_u8(0);
                put_duration(buf, *d);
            }
            SubscriptionMode::OnChange => buf.put_u8(1),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<SubscriptionMode> {
        match r.read_u8()? {
            0 => Ok(SubscriptionMode::Periodic(read_duration(r)?)),
            1 => Ok(SubscriptionMode::OnChange),
            b => Err(LdapError::Codec(format!("bad subscription mode {b}"))),
        }
    }
}

impl Wire for SearchSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.base.encode(buf);
        self.scope.encode(buf);
        self.filter.encode(buf);
        self.attrs.encode(buf);
        put_varint(buf, u64::from(self.size_limit));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<SearchSpec> {
        Ok(SearchSpec {
            base: Dn::decode(r)?,
            scope: Scope::decode(r)?,
            filter: Filter::decode(r)?,
            attrs: Vec::<String>::decode(r)?,
            size_limit: u32::try_from(r.read_varint()?)
                .map_err(|_| LdapError::Codec("size limit overflow".into()))?,
        })
    }
}

impl Wire for GripRequest {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GripRequest::Bind { id, subject, token } => {
                buf.put_u8(0);
                put_varint(buf, *id);
                put_str(buf, subject);
                gis_ldap::codec::put_bytes(buf, token);
            }
            GripRequest::Search { id, spec } => {
                buf.put_u8(1);
                put_varint(buf, *id);
                spec.encode(buf);
            }
            GripRequest::Subscribe { id, spec, mode } => {
                buf.put_u8(2);
                put_varint(buf, *id);
                spec.encode(buf);
                mode.encode(buf);
            }
            GripRequest::Unsubscribe { id } => {
                buf.put_u8(3);
                put_varint(buf, *id);
            }
            GripRequest::SyncPull {
                id,
                cookie,
                subtrees,
            } => {
                buf.put_u8(4);
                put_varint(buf, *id);
                match cookie {
                    None => buf.put_u8(0),
                    Some(c) => {
                        buf.put_u8(1);
                        put_varint(buf, c.epoch);
                        put_varint(buf, c.version);
                    }
                }
                subtrees.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<GripRequest> {
        match r.read_u8()? {
            0 => Ok(GripRequest::Bind {
                id: r.read_varint()?,
                subject: r.read_str()?,
                token: r.read_bytes()?.to_vec(),
            }),
            1 => Ok(GripRequest::Search {
                id: r.read_varint()?,
                spec: SearchSpec::decode(r)?,
            }),
            2 => Ok(GripRequest::Subscribe {
                id: r.read_varint()?,
                spec: SearchSpec::decode(r)?,
                mode: SubscriptionMode::decode(r)?,
            }),
            3 => Ok(GripRequest::Unsubscribe {
                id: r.read_varint()?,
            }),
            4 => Ok(GripRequest::SyncPull {
                id: r.read_varint()?,
                cookie: match r.read_u8()? {
                    0 => None,
                    1 => Some(SyncCookie {
                        epoch: r.read_varint()?,
                        version: r.read_varint()?,
                    }),
                    b => return Err(LdapError::Codec(format!("bad cookie tag {b}"))),
                },
                subtrees: Vec::<Dn>::decode(r)?,
            }),
            b => Err(LdapError::Codec(format!("bad request tag {b}"))),
        }
    }
}

impl Wire for GripReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GripReply::BindResult { id, ok, subject } => {
                buf.put_u8(0);
                put_varint(buf, *id);
                ok.encode(buf);
                subject.encode(buf);
            }
            GripReply::SearchResult {
                id,
                code,
                entries,
                referrals,
            } => {
                buf.put_u8(1);
                put_varint(buf, *id);
                code.encode(buf);
                entries.encode(buf);
                referrals.encode(buf);
            }
            GripReply::Update { id, entries } => {
                buf.put_u8(2);
                put_varint(buf, *id);
                entries.encode(buf);
            }
            GripReply::SubscriptionDone { id, code } => {
                buf.put_u8(3);
                put_varint(buf, *id);
                code.encode(buf);
            }
            GripReply::SyncDelta {
                id,
                full,
                epoch,
                version,
                at,
                entries,
                deletes,
            } => {
                buf.put_u8(4);
                put_varint(buf, *id);
                full.encode(buf);
                put_varint(buf, *epoch);
                put_varint(buf, *version);
                put_time(buf, *at);
                entries.encode(buf);
                deletes.encode(buf);
            }
            GripReply::GrrpResult { id, code } => {
                buf.put_u8(5);
                put_varint(buf, *id);
                code.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<GripReply> {
        match r.read_u8()? {
            0 => Ok(GripReply::BindResult {
                id: r.read_varint()?,
                ok: bool::decode(r)?,
                subject: Option::<String>::decode(r)?,
            }),
            1 => Ok(GripReply::SearchResult {
                id: r.read_varint()?,
                code: ResultCode::decode(r)?,
                entries: Vec::<Entry>::decode(r)?,
                referrals: Vec::<LdapUrl>::decode(r)?,
            }),
            2 => Ok(GripReply::Update {
                id: r.read_varint()?,
                entries: Vec::<Entry>::decode(r)?,
            }),
            3 => Ok(GripReply::SubscriptionDone {
                id: r.read_varint()?,
                code: ResultCode::decode(r)?,
            }),
            4 => Ok(GripReply::SyncDelta {
                id: r.read_varint()?,
                full: bool::decode(r)?,
                epoch: r.read_varint()?,
                version: r.read_varint()?,
                at: read_time(r)?,
                entries: Vec::<Entry>::decode(r)?,
                deletes: Vec::<Dn>::decode(r)?,
            }),
            5 => Ok(GripReply::GrrpResult {
                id: r.read_varint()?,
                code: ResultCode::decode(r)?,
            }),
            b => Err(LdapError::Codec(format!("bad reply tag {b}"))),
        }
    }
}

impl Wire for TraceContext {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.trace.0);
        put_varint(buf, self.parent);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<TraceContext> {
        Ok(TraceContext {
            trace: TraceId(r.read_varint()?),
            parent: r.read_varint()?,
        })
    }
}

impl Wire for ProtocolMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProtocolMessage::Request(m) => {
                buf.put_u8(0);
                m.encode(buf);
            }
            ProtocolMessage::Reply(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
            ProtocolMessage::Grrp(m) => {
                buf.put_u8(2);
                m.encode(buf);
            }
            ProtocolMessage::Traced { ctx, inner } => {
                buf.put_u8(3);
                ctx.encode(buf);
                inner.encode(buf);
            }
            // Tag 4 is reserved: at frame-body position 0 it is the mux
            // envelope marker (`frame::MUX_TAG`), so no plain message may
            // ever encode to it.
            ProtocolMessage::Handshake(h) => {
                buf.put_u8(5);
                h.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<ProtocolMessage> {
        match r.read_u8()? {
            0 => Ok(ProtocolMessage::Request(GripRequest::decode(r)?)),
            1 => Ok(ProtocolMessage::Reply(GripReply::decode(r)?)),
            2 => Ok(ProtocolMessage::Grrp(GrrpMessage::decode(r)?)),
            3 => {
                let ctx = TraceContext::decode(r)?;
                let inner = ProtocolMessage::decode(r)?;
                if matches!(inner, ProtocolMessage::Traced { .. }) {
                    return Err(LdapError::Codec("nested traced frame".into()));
                }
                if matches!(inner, ProtocolMessage::Handshake(_)) {
                    return Err(LdapError::Codec("traced handshake frame".into()));
                }
                Ok(ProtocolMessage::Traced {
                    ctx,
                    inner: Box::new(inner),
                })
            }
            5 => Ok(ProtocolMessage::Handshake(Handshake::decode(r)?)),
            b => Err(LdapError::Codec(format!("bad frame tag {b}"))),
        }
    }
}

impl Wire for Handshake {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Handshake::Hello { token } => {
                buf.put_u8(0);
                gis_ldap::codec::put_bytes(buf, token);
            }
            Handshake::Welcome { subject, token } => {
                buf.put_u8(1);
                put_str(buf, subject);
                gis_ldap::codec::put_bytes(buf, token);
            }
            Handshake::Reject { code } => {
                buf.put_u8(2);
                code.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Handshake> {
        match r.read_u8()? {
            0 => Ok(Handshake::Hello {
                token: r.read_bytes()?.to_vec(),
            }),
            1 => Ok(Handshake::Welcome {
                subject: r.read_str()?,
                token: r.read_bytes()?.to_vec(),
            }),
            2 => Ok(Handshake::Reject {
                code: ResultCode::decode(r)?,
            }),
            b => Err(LdapError::Codec(format!("bad handshake tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v);
    }

    #[test]
    fn grrp_roundtrip() {
        roundtrip(GrrpMessage::register(
            LdapUrl::server("gris.a"),
            Dn::parse("hn=hostX").unwrap(),
            SimTime::ZERO + secs(5),
            secs(30),
        ));
        roundtrip(
            GrrpMessage::invite(
                LdapUrl::server("gris.a"),
                LdapUrl::server("giis.vo"),
                SimTime::ZERO,
                secs(60),
            )
            .with_subject("/O=Grid/CN=giis"),
        );
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(GripRequest::Bind {
            id: 1,
            subject: "/O=Grid/CN=alice".into(),
            token: vec![1, 2, 3],
        });
        roundtrip(GripRequest::Search {
            id: 2,
            spec: SearchSpec::subtree(
                Dn::parse("o=O1").unwrap(),
                Filter::parse("(&(objectclass=computer)(load5<=1.0))").unwrap(),
            )
            .select(&["load5"])
            .limit(50),
        });
        roundtrip(GripRequest::Subscribe {
            id: 3,
            spec: SearchSpec::lookup(Dn::parse("perf=load5, hn=h").unwrap()),
            mode: SubscriptionMode::Periodic(secs(10)),
        });
        roundtrip(GripRequest::Subscribe {
            id: 4,
            spec: SearchSpec::lookup(Dn::root()),
            mode: SubscriptionMode::OnChange,
        });
        roundtrip(GripRequest::Unsubscribe { id: 5 });
        roundtrip(GripRequest::SyncPull {
            id: 6,
            cookie: None,
            subtrees: vec![],
        });
        roundtrip(GripRequest::SyncPull {
            id: 7,
            cookie: Some(SyncCookie {
                epoch: 1_000_000,
                version: 41,
            }),
            subtrees: vec![Dn::parse("o=O1").unwrap(), Dn::parse("vo=alpha").unwrap()],
        });
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip(GripReply::BindResult {
            id: 1,
            ok: true,
            subject: Some("/O=Grid/CN=alice".into()),
        });
        roundtrip(GripReply::SearchResult {
            id: 2,
            code: ResultCode::PartialResults,
            entries: vec![Entry::at("hn=h").unwrap().with("load5", 0.5f64)],
            referrals: vec![LdapUrl::server("gris.b")],
        });
        roundtrip(GripReply::Update {
            id: 3,
            entries: vec![],
        });
        roundtrip(GripReply::SubscriptionDone {
            id: 4,
            code: ResultCode::Unavailable,
        });
        roundtrip(GripReply::SyncDelta {
            id: 5,
            full: true,
            epoch: 7,
            version: 12,
            at: SimTime::ZERO + secs(3),
            entries: vec![Entry::at("hn=h").unwrap().with("mds-sync-version", 12i64)],
            deletes: vec![],
        });
        roundtrip(GripReply::SyncDelta {
            id: 6,
            full: false,
            epoch: 7,
            version: 13,
            at: SimTime::ZERO + secs(4),
            entries: vec![],
            deletes: vec![Dn::parse("hn=gone, o=O1").unwrap()],
        });
    }

    #[test]
    fn sync_frames_reject_truncation_and_bad_tags() {
        let msg = ProtocolMessage::Request(GripRequest::SyncPull {
            id: 3,
            cookie: Some(SyncCookie {
                epoch: 5,
                version: 9,
            }),
            subtrees: vec![Dn::parse("o=O1").unwrap()],
        });
        let bytes = msg.to_wire();
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
        let reply = ProtocolMessage::Reply(GripReply::SyncDelta {
            id: 4,
            full: false,
            epoch: 5,
            version: 2,
            at: SimTime(77),
            entries: vec![Entry::at("hn=h").unwrap().with("x", "1")],
            deletes: vec![Dn::parse("hn=d").unwrap()],
        });
        let bytes = reply.to_wire();
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
        // A bad cookie-presence tag must not decode.
        let mut bad = BytesMut::new();
        bad.put_u8(0); // Request
        bad.put_u8(4); // SyncPull
        put_varint(&mut bad, 1); // id
        bad.put_u8(7); // bogus cookie tag
        assert!(ProtocolMessage::from_wire(&bad).is_err());
    }

    #[test]
    fn frame_roundtrips() {
        roundtrip(ProtocolMessage::Request(GripRequest::Unsubscribe { id: 9 }));
        roundtrip(ProtocolMessage::Reply(GripReply::Update {
            id: 9,
            entries: vec![],
        }));
        roundtrip(ProtocolMessage::Grrp(GrrpMessage::register(
            LdapUrl::server("g"),
            Dn::root(),
            SimTime::ZERO,
            secs(1),
        )));
    }

    #[test]
    fn all_result_codes_roundtrip() {
        for code in [
            ResultCode::Success,
            ResultCode::NoSuchObject,
            ResultCode::SizeLimitExceeded,
            ResultCode::InsufficientAccess,
            ResultCode::Unavailable,
            ResultCode::PartialResults,
            ResultCode::UnwillingToPerform,
            ResultCode::StaleResults,
            ResultCode::AuthRejected,
        ] {
            roundtrip(code);
        }
    }

    #[test]
    fn handshake_frames_roundtrip() {
        for h in [
            Handshake::Hello {
                token: vec![9, 8, 7, 6],
            },
            Handshake::Hello { token: vec![] },
            Handshake::Welcome {
                subject: "/O=Grid/CN=alice".into(),
                token: vec![1, 2, 3],
            },
            Handshake::Welcome {
                subject: "/O=Grid/CN=bob".into(),
                token: vec![],
            },
            Handshake::Reject {
                code: ResultCode::AuthRejected,
            },
            Handshake::Reject {
                code: ResultCode::UnwillingToPerform,
            },
        ] {
            roundtrip(ProtocolMessage::Handshake(h));
        }
        // Truncations at every prefix are rejected.
        let bytes = ProtocolMessage::Handshake(Handshake::Welcome {
            subject: "/O=Grid/CN=alice".into(),
            token: vec![1, 2, 3, 4, 5],
        })
        .to_wire();
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
        // Bad inner tag rejected.
        let mut bad = BytesMut::new();
        bad.put_u8(5);
        bad.put_u8(9);
        assert!(ProtocolMessage::from_wire(&bad).is_err());
    }

    #[test]
    fn traced_handshake_rejected_on_decode() {
        let ctx = TraceContext {
            trace: TraceId(4),
            parent: 2,
        };
        let mut bytes = BytesMut::new();
        bytes.put_u8(3); // Traced
        ctx.encode(&mut bytes);
        ProtocolMessage::Handshake(Handshake::Hello { token: vec![1] }).encode(&mut bytes);
        assert!(ProtocolMessage::from_wire(&bytes).is_err());
    }

    #[test]
    fn grrp_result_roundtrips() {
        roundtrip(GripReply::GrrpResult {
            id: 0,
            code: ResultCode::AuthRejected,
        });
        let mut r = GripReply::GrrpResult {
            id: 3,
            code: ResultCode::AuthRejected,
        };
        assert_eq!(r.id(), 3);
        r.set_id(11);
        assert_eq!(r.id(), 11);
        let bytes = ProtocolMessage::Reply(GripReply::GrrpResult {
            id: 1,
            code: ResultCode::AuthRejected,
        })
        .to_wire();
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn traced_frame_roundtrips() {
        let ctx = TraceContext {
            trace: TraceId(0xdead_beef),
            parent: 17,
        };
        let inner = ProtocolMessage::Request(GripRequest::Search {
            id: 7,
            spec: SearchSpec::lookup(Dn::parse("hn=h").unwrap()),
        });
        let traced = inner.clone().traced(ctx);
        roundtrip(traced.clone());
        // untraced splits back out
        let (got_ctx, got_inner) = traced.clone().untraced();
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(got_inner, inner);
        // re-wrapping replaces rather than nests
        let ctx2 = TraceContext {
            trace: TraceId(1),
            parent: 2,
        };
        match traced.traced(ctx2) {
            ProtocolMessage::Traced { ctx, inner } => {
                assert_eq!(ctx, ctx2);
                assert!(!matches!(*inner, ProtocolMessage::Traced { .. }));
            }
            other => panic!("expected traced frame, got {other:?}"),
        }
        // truncations of the traced frame are rejected
        let bytes = ProtocolMessage::Reply(GripReply::Update {
            id: 1,
            entries: vec![],
        })
        .traced(ctx)
        .to_wire();
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
        // nested traced frames rejected on decode
        let mut nested = BytesMut::new();
        nested.put_u8(3);
        ctx.encode(&mut nested);
        nested.put_slice(&bytes); // bytes is itself a tag-3 frame
        assert!(ProtocolMessage::from_wire(&nested).is_err());
    }

    #[test]
    fn corrupted_frames_rejected() {
        let msg = ProtocolMessage::Request(GripRequest::Search {
            id: 1,
            spec: SearchSpec::lookup(Dn::parse("hn=h").unwrap()),
        });
        let bytes = msg.to_wire();
        // Bad top-level tag.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(ProtocolMessage::from_wire(&bad).is_err());
        // Truncations at every prefix length.
        for cut in 0..bytes.len() {
            assert!(ProtocolMessage::from_wire(&bytes[..cut]).is_err());
        }
    }
}
