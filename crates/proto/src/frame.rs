//! Length-prefixed framing for [`ProtocolMessage`] on byte streams.
//!
//! The simulator and the in-process live router move `ProtocolMessage`
//! *values*; a real transport moves *bytes*. This module defines the one
//! frame format both ends of a socket agree on:
//!
//! ```text
//! +----------------+----------------------------------------+
//! | len: u32 (BE)  | body: ProtocolMessage (Wire encoding)  |
//! +----------------+----------------------------------------+
//!      4 bytes            exactly `len` bytes
//! ```
//!
//! The body reuses the existing [`Wire`] codec from [`crate::wire`], so a
//! frame's payload is byte-identical to what the codec tests already
//! cover; framing adds only the delimiter. Design points:
//!
//! * **Max frame.** A peer that announces a length above the decoder's
//!   limit is rejected *before* any buffering of the body — a 4-byte
//!   header cannot make the receiver allocate gigabytes. Encoding checks
//!   the same limit so a local oversized message fails fast.
//! * **Partial reads.** [`FrameDecoder`] is incremental: feed it whatever
//!   byte windows the socket yields (`feed`), pull zero or more complete
//!   frames (`next`). Frames split at arbitrary boundaries — including
//!   mid-header — reassemble exactly.
//! * **Trailing bytes.** A body that decodes short of its declared
//!   length is a protocol error, not silently ignored: the encoder and
//!   decoder must agree on every byte.

use crate::wire::ProtocolMessage;
use bytes::{BufMut, BytesMut};
use gis_ldap::codec::Wire;
use gis_ldap::{LdapError, Result};

/// Default ceiling on one frame's body length. Generous for directory
/// result sets (tens of thousands of entries) while bounding what a
/// malicious or corrupted peer can make the receiver buffer.
pub const MAX_FRAME: usize = 8 << 20; // 8 MiB

/// Length of the frame header.
pub const FRAME_HEADER: usize = 4;

/// Encode `msg` as one length-prefixed frame, appending to `buf`.
/// Fails (rather than emitting an undecodable frame) if the body would
/// exceed `max_frame`.
pub fn encode_frame_limited(
    msg: &ProtocolMessage,
    buf: &mut BytesMut,
    max_frame: usize,
) -> Result<()> {
    let start = buf.len();
    buf.put_u32(0); // patched below
    msg.encode(buf);
    let body = buf.len() - start - FRAME_HEADER;
    if body > max_frame {
        buf.truncate(start);
        return Err(LdapError::Codec(format!(
            "frame body {body} bytes exceeds max frame {max_frame}"
        )));
    }
    let len = (body as u32).to_be_bytes();
    buf[start..start + FRAME_HEADER].copy_from_slice(&len);
    Ok(())
}

/// [`encode_frame_limited`] with the default [`MAX_FRAME`] ceiling.
pub fn encode_frame(msg: &ProtocolMessage, buf: &mut BytesMut) -> Result<()> {
    encode_frame_limited(msg, buf, MAX_FRAME)
}

/// Encode `msg` as one framed byte vector (default ceiling).
pub fn frame_bytes(msg: &ProtocolMessage) -> Result<Vec<u8>> {
    let mut buf = BytesMut::new();
    encode_frame(msg, &mut buf)?;
    Ok(buf.to_vec())
}

/// Incremental frame reassembler for one byte stream.
///
/// Feed raw socket reads in with [`feed`](FrameDecoder::feed); drain
/// complete messages with [`next`](FrameDecoder::next). Any error is
/// terminal for the stream: framing has lost sync, so the connection
/// should be dropped.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Body length parsed from the current header, once 4 bytes arrived.
    pending: Option<usize>,
    max_frame: usize,
    poisoned: bool,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// Decoder with the default [`MAX_FRAME`] ceiling.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_max_frame(MAX_FRAME)
    }

    /// Decoder with an explicit per-frame body ceiling.
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pending: None,
            max_frame,
            poisoned: false,
        }
    }

    /// Append raw bytes read from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when a partial frame (header or body) sits in the buffer —
    /// the peer owes us bytes. Used by read-deadline logic: an idle
    /// connection between frames is fine, a stalled half-frame is not.
    pub fn mid_frame(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Buffered bytes not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed. An `Err` poisons the decoder: the stream can no
    /// longer be trusted to be frame-aligned, and every later call
    /// returns an error too.
    ///
    /// Not `Iterator::next`: `Ok(None)` means "feed me more", not "done".
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ProtocolMessage>> {
        if self.poisoned {
            return Err(LdapError::Codec("frame stream poisoned".into()));
        }
        // Parse the header once 4 bytes are available.
        if self.pending.is_none() {
            if self.buf.len() < FRAME_HEADER {
                return Ok(None);
            }
            let len =
                u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len > self.max_frame {
                self.poisoned = true;
                return Err(LdapError::Codec(format!(
                    "frame body {len} bytes exceeds max frame {}",
                    self.max_frame
                )));
            }
            self.buf.drain(..FRAME_HEADER);
            self.pending = Some(len);
        }
        let len = self.pending.unwrap_or(0);
        if self.buf.len() < len {
            return Ok(None);
        }
        let msg = (|| {
            let mut r = gis_ldap::codec::WireReader::new(&self.buf[..len]);
            let msg = ProtocolMessage::decode(&mut r)?;
            if !r.is_done() {
                return Err(LdapError::Codec(format!(
                    "frame body has {} trailing bytes",
                    r.remaining()
                )));
            }
            Ok(msg)
        })();
        match msg {
            Ok(msg) => {
                self.buf.drain(..len);
                self.pending = None;
                Ok(Some(msg))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grip::{GripReply, GripRequest, ResultCode, SearchSpec};
    use crate::grrp::GrrpMessage;
    use crate::trace::{TraceContext, TraceId};
    use gis_ldap::{Dn, Entry, LdapUrl};
    use gis_netsim::{secs, SimTime};

    fn sample() -> Vec<ProtocolMessage> {
        vec![
            ProtocolMessage::Request(GripRequest::Search {
                id: 7,
                spec: SearchSpec::lookup(Dn::parse("hn=h").unwrap()),
            }),
            ProtocolMessage::Reply(GripReply::SearchResult {
                id: 7,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=h").unwrap().with("load5", 0.25f64)],
                referrals: vec![LdapUrl::tcp("127.0.0.1", 5389)],
            }),
            ProtocolMessage::Grrp(GrrpMessage::register(
                LdapUrl::tcp("10.1.2.3", 2135),
                Dn::parse("hn=h, o=O1").unwrap(),
                SimTime::ZERO,
                secs(30),
            )),
            ProtocolMessage::Request(GripRequest::Unsubscribe { id: 1 }).traced(TraceContext {
                trace: TraceId(99),
                parent: 98,
            }),
        ]
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = BytesMut::new();
        for m in sample() {
            encode_frame(&m, &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        for want in sample() {
            assert_eq!(dec.next().unwrap().unwrap(), want);
        }
        assert!(dec.next().unwrap().is_none());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn frames_roundtrip_byte_at_a_time() {
        let mut buf = BytesMut::new();
        for m in sample() {
            encode_frame(&m, &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in buf.iter() {
            dec.feed(std::slice::from_ref(b));
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, sample());
    }

    #[test]
    fn mid_frame_reports_partial_state() {
        let bytes = frame_bytes(&sample()[0]).unwrap();
        let mut dec = FrameDecoder::new();
        assert!(!dec.mid_frame());
        dec.feed(&bytes[..2]); // half a header is still a partial frame
        assert!(dec.next().unwrap().is_none());
        assert!(dec.mid_frame());
        dec.feed(&bytes[2..bytes.len() - 1]);
        assert!(dec.next().unwrap().is_none());
        assert!(dec.mid_frame());
        dec.feed(&bytes[bytes.len() - 1..]);
        assert!(dec.next().unwrap().is_some());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_header_rejected_before_buffering() {
        let mut dec = FrameDecoder::with_max_frame(1024);
        dec.feed(&(2048u32).to_be_bytes());
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("max frame"), "{err}");
        // Poisoned: even valid bytes afterwards are refused.
        dec.feed(&frame_bytes(&sample()[0]).unwrap());
        assert!(dec.next().is_err());
    }

    #[test]
    fn encode_refuses_oversized_body() {
        let big = ProtocolMessage::Reply(GripReply::SearchResult {
            id: 1,
            code: ResultCode::Success,
            entries: vec![Entry::at("hn=h").unwrap().with("blob", "x".repeat(4096))],
            referrals: vec![],
        });
        let mut buf = BytesMut::new();
        assert!(encode_frame_limited(&big, &mut buf, 256).is_err());
        assert!(buf.is_empty(), "failed encode leaves no partial frame");
        assert!(encode_frame_limited(&big, &mut buf, MAX_FRAME).is_ok());
    }

    #[test]
    fn max_size_frame_roundtrips_and_one_over_fails() {
        // Find the exact body size of a message, then frame it with a
        // ceiling exactly at and one byte below that size.
        let msg = ProtocolMessage::Reply(GripReply::SearchResult {
            id: 1,
            code: ResultCode::Success,
            entries: vec![Entry::at("hn=h").unwrap().with("blob", "y".repeat(1000))],
            referrals: vec![],
        });
        let body = msg.to_wire().len();
        let mut buf = BytesMut::new();
        encode_frame_limited(&msg, &mut buf, body).unwrap();
        let mut dec = FrameDecoder::with_max_frame(body);
        dec.feed(&buf);
        assert_eq!(dec.next().unwrap().unwrap(), msg);

        let mut buf = BytesMut::new();
        assert!(encode_frame_limited(&msg, &mut buf, body - 1).is_err());
        let mut dec = FrameDecoder::with_max_frame(body - 1);
        let mut framed = BytesMut::new();
        encode_frame(&msg, &mut framed).unwrap();
        dec.feed(&framed);
        assert!(dec.next().is_err());
    }

    #[test]
    fn trailing_bytes_in_body_rejected() {
        let bytes = frame_bytes(&sample()[0]).unwrap();
        // Lie about the length: declare one extra byte and pad it.
        let mut bad = Vec::new();
        let body = (bytes.len() - FRAME_HEADER + 1) as u32;
        bad.extend_from_slice(&body.to_be_bytes());
        bad.extend_from_slice(&bytes[FRAME_HEADER..]);
        bad.push(0xAA);
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn nested_traced_frame_rejected() {
        // Hand-build tag-3(ctx, tag-3(ctx, request)) — the codec refuses
        // it, and the frame decoder surfaces that as a stream error.
        let ctx = TraceContext {
            trace: TraceId(1),
            parent: 2,
        };
        let inner = ProtocolMessage::Request(GripRequest::Unsubscribe { id: 1 }).traced(ctx);
        let mut body = BytesMut::new();
        body.put_u8(3);
        gis_ldap::codec::put_varint(&mut body, ctx.trace.0);
        gis_ldap::codec::put_varint(&mut body, ctx.parent);
        inner.encode(&mut body);
        let mut framed = BytesMut::new();
        framed.put_u32(body.len() as u32);
        framed.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("nested traced"), "{err}");
    }
}
