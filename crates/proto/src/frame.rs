//! Length-prefixed framing for [`ProtocolMessage`] on byte streams.
//!
//! The simulator and the in-process live router move `ProtocolMessage`
//! *values*; a real transport moves *bytes*. This module defines the one
//! frame format both ends of a socket agree on:
//!
//! ```text
//! +----------------+----------------------------------------+
//! | len: u32 (BE)  | body: ProtocolMessage (Wire encoding)  |
//! +----------------+----------------------------------------+
//!      4 bytes            exactly `len` bytes
//! ```
//!
//! The body reuses the existing [`Wire`] codec from [`crate::wire`], so a
//! frame's payload is byte-identical to what the codec tests already
//! cover; framing adds only the delimiter. Design points:
//!
//! * **Max frame.** A peer that announces a length above the decoder's
//!   limit is rejected *before* any buffering of the body — a 4-byte
//!   header cannot make the receiver allocate gigabytes. Encoding checks
//!   the same limit so a local oversized message fails fast.
//! * **Partial reads.** [`FrameDecoder`] is incremental: feed it whatever
//!   byte windows the socket yields (`feed`), pull zero or more complete
//!   frames (`next_frame`). Frames split at arbitrary boundaries —
//!   including mid-header — reassemble exactly.
//! * **No-copy completion.** The decoder buffers into a [`BytesMut`] and
//!   *splits off* each completed body ([`BytesMut::split_to`]): the body
//!   bytes are handed out as a refcounted slice of the receive buffer,
//!   never copied into a fresh allocation and never memmoved past.
//! * **Trailing bytes.** A body that decodes short of its declared
//!   length is a protocol error, not silently ignored: the encoder and
//!   decoder must agree on every byte.
//!
//! # Multiplexing envelope (body tag 4)
//!
//! A pipelined transport carries many in-flight exchanges on one
//! connection and needs each frame tagged with the request id it answers.
//! Body tag `4` is that envelope:
//!
//! ```text
//! body = 4 | corr: varint | inner ProtocolMessage (tags 0..=3)
//! ```
//!
//! `ProtocolMessage` tag 5 (the §7 handshake) is deliberately *not*
//! carried in envelopes: a handshake authenticates the connection, not a
//! request, so an enveloped handshake body is a decode error.
//!
//! The envelope is **version-gated by construction**: tags 0..=3 are the
//! pre-multiplexing frame bodies, still encoded and decoded byte-for-byte
//! identically, so a new decoder reads an old peer's frames and an old
//! peer never receives tag 4 unless it first spoke it (transports mark a
//! connection mux-speaking only after *receiving* an enveloped frame, and
//! clients that open with the envelope accept un-enveloped replies from
//! old servers). A tag-4 body nested inside another tag-4 body is
//! undecodable (`ProtocolMessage` knows only tags 0..=3), so the envelope
//! cannot recurse.

use crate::wire::ProtocolMessage;
use bytes::{BufMut, Bytes, BytesMut};
use gis_ldap::codec::{put_varint, Wire, WireReader};
use gis_ldap::{LdapError, Result};

/// Default ceiling on one frame's body length. Generous for directory
/// result sets (tens of thousands of entries) while bounding what a
/// malicious or corrupted peer can make the receiver buffer.
pub const MAX_FRAME: usize = 8 << 20; // 8 MiB

/// Length of the frame header.
pub const FRAME_HEADER: usize = 4;

/// Body tag of the multiplexing envelope (`corr` + inner message).
/// Tags 0..=3 are the plain [`ProtocolMessage`] wire tags.
pub const MUX_TAG: u8 = 4;

/// One decoded frame: the message, the correlation id when the frame
/// travelled in a [`MUX_TAG`] envelope, and the raw body slice (split
/// off the decoder's receive buffer without copying).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlation id from the multiplexing envelope; `None` for plain
    /// (pre-multiplexing) frames.
    pub corr: Option<u64>,
    /// The decoded message.
    pub msg: ProtocolMessage,
    /// The frame body exactly as received — a refcounted slice of the
    /// decoder's buffer, not a copy.
    pub body: Bytes,
}

/// Encode `msg` as one length-prefixed frame, appending to `buf`.
/// Fails (rather than emitting an undecodable frame) if the body would
/// exceed `max_frame`.
pub fn encode_frame_limited(
    msg: &ProtocolMessage,
    buf: &mut BytesMut,
    max_frame: usize,
) -> Result<()> {
    let start = buf.len();
    buf.put_u32(0); // patched below
    msg.encode(buf);
    finish_frame(buf, start, max_frame)
}

/// Encode `msg` inside a [`MUX_TAG`] envelope carrying `corr`, as one
/// length-prefixed frame appended to `buf`. Same ceiling behavior as
/// [`encode_frame_limited`].
pub fn encode_mux_frame_limited(
    corr: u64,
    msg: &ProtocolMessage,
    buf: &mut BytesMut,
    max_frame: usize,
) -> Result<()> {
    let start = buf.len();
    buf.put_u32(0); // patched below
    buf.put_u8(MUX_TAG);
    put_varint(buf, corr);
    msg.encode(buf);
    finish_frame(buf, start, max_frame)
}

/// Patch the length header at `start`, enforcing the body ceiling.
fn finish_frame(buf: &mut BytesMut, start: usize, max_frame: usize) -> Result<()> {
    let body = buf.len() - start - FRAME_HEADER;
    if body > max_frame {
        buf.truncate(start);
        return Err(LdapError::Codec(format!(
            "frame body {body} bytes exceeds max frame {max_frame}"
        )));
    }
    let len = (body as u32).to_be_bytes();
    buf[start..start + FRAME_HEADER].copy_from_slice(&len);
    Ok(())
}

/// [`encode_frame_limited`] with the default [`MAX_FRAME`] ceiling.
pub fn encode_frame(msg: &ProtocolMessage, buf: &mut BytesMut) -> Result<()> {
    encode_frame_limited(msg, buf, MAX_FRAME)
}

/// Encode `msg` as one framed byte vector (default ceiling).
pub fn frame_bytes(msg: &ProtocolMessage) -> Result<Vec<u8>> {
    let mut buf = BytesMut::new();
    encode_frame(msg, &mut buf)?;
    Ok(buf.to_vec())
}

/// Incremental frame reassembler for one byte stream.
///
/// Feed raw socket reads in with [`feed`](FrameDecoder::feed); drain
/// complete frames with [`next_frame`](FrameDecoder::next_frame). Any
/// error is terminal for the stream: framing has lost sync, so the
/// connection should be dropped, never resynchronized.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    /// Body length parsed from the current header, once 4 bytes arrived.
    pending: Option<usize>,
    max_frame: usize,
    poisoned: bool,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// Decoder with the default [`MAX_FRAME`] ceiling.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_max_frame(MAX_FRAME)
    }

    /// Decoder with an explicit per-frame body ceiling.
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: BytesMut::new(),
            pending: None,
            max_frame,
            poisoned: false,
        }
    }

    /// Append raw bytes read from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when a partial frame (header or body) sits in the buffer —
    /// the peer owes us bytes. Used by read-deadline logic: an idle
    /// connection between frames is fine, a stalled half-frame is not.
    pub fn mid_frame(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Buffered bytes not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed. An `Err` poisons the decoder: the stream can no
    /// longer be trusted to be frame-aligned, and every later call
    /// returns an error too.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.poisoned {
            return Err(LdapError::Codec("frame stream poisoned".into()));
        }
        // Parse the header once 4 bytes are available.
        if self.pending.is_none() {
            if self.buf.len() < FRAME_HEADER {
                return Ok(None);
            }
            let len =
                u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len > self.max_frame {
                self.poisoned = true;
                return Err(LdapError::Codec(format!(
                    "frame body {len} bytes exceeds max frame {}",
                    self.max_frame
                )));
            }
            self.buf.advance(FRAME_HEADER);
            self.pending = Some(len);
        }
        let len = self.pending.unwrap_or(0);
        if self.buf.len() < len {
            return Ok(None);
        }
        // Split the body off the receive buffer: the frame's bytes are
        // shared out, not copied, and the remainder is not moved.
        let body = self.buf.split_to(len).freeze();
        self.pending = None;
        match decode_body(&body) {
            Ok((corr, msg)) => Ok(Some(Frame { corr, msg, body })),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// [`next_frame`](Self::next_frame), discarding the envelope: just
    /// the message. Call sites that predate multiplexing (and tests of
    /// the plain framing) keep working unchanged.
    ///
    /// Not `Iterator::next`: `Ok(None)` means "feed me more", not "done".
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ProtocolMessage>> {
        Ok(self.next_frame()?.map(|f| f.msg))
    }
}

/// Decode one frame body: an optional [`MUX_TAG`] envelope, then the
/// inner message, which must consume the body exactly.
fn decode_body(body: &[u8]) -> Result<(Option<u64>, ProtocolMessage)> {
    let mut r = WireReader::new(body);
    let corr = if body.first() == Some(&MUX_TAG) {
        r.read_u8()?;
        Some(r.read_varint()?)
    } else {
        None
    };
    let msg = ProtocolMessage::decode(&mut r)?;
    if !r.is_done() {
        return Err(LdapError::Codec(format!(
            "frame body has {} trailing bytes",
            r.remaining()
        )));
    }
    // The handshake authenticates the connection, not a request: it has
    // no correlation id, and letting it ride the envelope would let a
    // peer smuggle auth frames past transports that route enveloped
    // frames purely by corr.
    if corr.is_some() && matches!(msg, ProtocolMessage::Handshake(_)) {
        return Err(LdapError::Codec("mux-enveloped handshake frame".into()));
    }
    Ok((corr, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grip::{GripReply, GripRequest, ResultCode, SearchSpec};
    use crate::grrp::GrrpMessage;
    use crate::trace::{TraceContext, TraceId};
    use gis_ldap::{Dn, Entry, LdapUrl};
    use gis_netsim::{secs, SimTime};

    fn sample() -> Vec<ProtocolMessage> {
        vec![
            ProtocolMessage::Request(GripRequest::Search {
                id: 7,
                spec: SearchSpec::lookup(Dn::parse("hn=h").unwrap()),
            }),
            ProtocolMessage::Reply(GripReply::SearchResult {
                id: 7,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=h").unwrap().with("load5", 0.25f64)],
                referrals: vec![LdapUrl::tcp("127.0.0.1", 5389)],
            }),
            ProtocolMessage::Grrp(GrrpMessage::register(
                LdapUrl::tcp("10.1.2.3", 2135),
                Dn::parse("hn=h, o=O1").unwrap(),
                SimTime::ZERO,
                secs(30),
            )),
            ProtocolMessage::Request(GripRequest::Unsubscribe { id: 1 }).traced(TraceContext {
                trace: TraceId(99),
                parent: 98,
            }),
        ]
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = BytesMut::new();
        for m in sample() {
            encode_frame(&m, &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        for want in sample() {
            assert_eq!(dec.next().unwrap().unwrap(), want);
        }
        assert!(dec.next().unwrap().is_none());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn frames_roundtrip_byte_at_a_time() {
        let mut buf = BytesMut::new();
        for m in sample() {
            encode_frame(&m, &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in buf.iter() {
            dec.feed(std::slice::from_ref(b));
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, sample());
    }

    #[test]
    fn mux_envelope_roundtrips_with_corr() {
        let mut buf = BytesMut::new();
        for (i, m) in sample().into_iter().enumerate() {
            encode_mux_frame_limited(0xABC0 + i as u64, &m, &mut buf, MAX_FRAME).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        for (i, want) in sample().into_iter().enumerate() {
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(frame.corr, Some(0xABC0 + i as u64));
            assert_eq!(frame.msg, want);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn plain_and_mux_frames_interleave_on_one_stream() {
        // Version gating: a decoder serves old (plain) and new
        // (enveloped) senders on the same connection.
        let msgs = sample();
        let mut buf = BytesMut::new();
        encode_frame(&msgs[0], &mut buf).unwrap();
        encode_mux_frame_limited(42, &msgs[1], &mut buf, MAX_FRAME).unwrap();
        encode_frame(&msgs[2], &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        let f0 = dec.next_frame().unwrap().unwrap();
        assert_eq!((f0.corr, f0.msg), (None, msgs[0].clone()));
        let f1 = dec.next_frame().unwrap().unwrap();
        assert_eq!((f1.corr, f1.msg), (Some(42), msgs[1].clone()));
        let f2 = dec.next_frame().unwrap().unwrap();
        assert_eq!((f2.corr, f2.msg), (None, msgs[2].clone()));
    }

    #[test]
    fn handshake_frames_plain_only() {
        // A plain handshake frame decodes fine...
        let hello = ProtocolMessage::Handshake(crate::wire::Handshake::Hello {
            token: vec![1, 2, 3],
        });
        let mut buf = BytesMut::new();
        encode_frame(&hello, &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!((f.corr, f.msg), (None, hello.clone()));
        // ...but a mux-enveloped one poisons the stream.
        let mut buf = BytesMut::new();
        encode_mux_frame_limited(5, &hello, &mut buf, MAX_FRAME).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert!(dec.next_frame().is_err());
        assert!(dec.next_frame().is_err(), "poisoned");
    }

    #[test]
    fn nested_mux_envelope_rejected() {
        // tag-4(corr, tag-4(corr, ...)) cannot decode: the inner message
        // must be a plain tag 0..=3. The stream poisons.
        let mut inner = BytesMut::new();
        inner.put_u8(MUX_TAG);
        put_varint(&mut inner, 7);
        sample()[0].encode(&mut inner);
        let mut body = BytesMut::new();
        body.put_u8(MUX_TAG);
        put_varint(&mut body, 8);
        body.extend_from_slice(&inner);
        let mut framed = BytesMut::new();
        framed.put_u32(body.len() as u32);
        framed.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        assert!(dec.next_frame().is_err());
        assert!(dec.next_frame().is_err(), "poisoned after nested envelope");
    }

    #[test]
    fn split_bodies_share_the_receive_buffer() {
        // No-copy completion: when all bytes are fed at once, every
        // decoded body is a sub-slice of the same buffer, so consecutive
        // bodies are contiguous (separated only by the next header).
        let mut buf = BytesMut::new();
        for m in sample() {
            encode_frame(&m, &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        let mut bodies = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            bodies.push(f.body);
        }
        assert_eq!(bodies.len(), sample().len());
        for pair in bodies.windows(2) {
            let end = pair[0].as_ptr() as usize + pair[0].len();
            assert_eq!(
                end + FRAME_HEADER,
                pair[1].as_ptr() as usize,
                "bodies split off one allocation, not copied out"
            );
        }
    }

    #[test]
    fn mid_frame_reports_partial_state() {
        let bytes = frame_bytes(&sample()[0]).unwrap();
        let mut dec = FrameDecoder::new();
        assert!(!dec.mid_frame());
        dec.feed(&bytes[..2]); // half a header is still a partial frame
        assert!(dec.next().unwrap().is_none());
        assert!(dec.mid_frame());
        dec.feed(&bytes[2..bytes.len() - 1]);
        assert!(dec.next().unwrap().is_none());
        assert!(dec.mid_frame());
        dec.feed(&bytes[bytes.len() - 1..]);
        assert!(dec.next().unwrap().is_some());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_header_rejected_before_buffering() {
        let mut dec = FrameDecoder::with_max_frame(1024);
        dec.feed(&(2048u32).to_be_bytes());
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("max frame"), "{err}");
        // Poisoned: even valid bytes afterwards are refused.
        dec.feed(&frame_bytes(&sample()[0]).unwrap());
        assert!(dec.next().is_err());
    }

    #[test]
    fn encode_refuses_oversized_body() {
        let big = ProtocolMessage::Reply(GripReply::SearchResult {
            id: 1,
            code: ResultCode::Success,
            entries: vec![Entry::at("hn=h").unwrap().with("blob", "x".repeat(4096))],
            referrals: vec![],
        });
        let mut buf = BytesMut::new();
        assert!(encode_frame_limited(&big, &mut buf, 256).is_err());
        assert!(buf.is_empty(), "failed encode leaves no partial frame");
        assert!(encode_mux_frame_limited(9, &big, &mut buf, 256).is_err());
        assert!(buf.is_empty(), "failed mux encode leaves no partial frame");
        assert!(encode_frame_limited(&big, &mut buf, MAX_FRAME).is_ok());
    }

    #[test]
    fn max_size_frame_roundtrips_and_one_over_fails() {
        // Find the exact body size of a message, then frame it with a
        // ceiling exactly at and one byte below that size.
        let msg = ProtocolMessage::Reply(GripReply::SearchResult {
            id: 1,
            code: ResultCode::Success,
            entries: vec![Entry::at("hn=h").unwrap().with("blob", "y".repeat(1000))],
            referrals: vec![],
        });
        let body = msg.to_wire().len();
        let mut buf = BytesMut::new();
        encode_frame_limited(&msg, &mut buf, body).unwrap();
        let mut dec = FrameDecoder::with_max_frame(body);
        dec.feed(&buf);
        assert_eq!(dec.next().unwrap().unwrap(), msg);

        let mut buf = BytesMut::new();
        assert!(encode_frame_limited(&msg, &mut buf, body - 1).is_err());
        let mut dec = FrameDecoder::with_max_frame(body - 1);
        let mut framed = BytesMut::new();
        encode_frame(&msg, &mut framed).unwrap();
        dec.feed(&framed);
        assert!(dec.next().is_err());
    }

    #[test]
    fn trailing_bytes_in_body_rejected() {
        let bytes = frame_bytes(&sample()[0]).unwrap();
        // Lie about the length: declare one extra byte and pad it.
        let mut bad = Vec::new();
        let body = (bytes.len() - FRAME_HEADER + 1) as u32;
        bad.extend_from_slice(&body.to_be_bytes());
        bad.extend_from_slice(&bytes[FRAME_HEADER..]);
        bad.push(0xAA);
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn nested_traced_frame_rejected() {
        // Hand-build tag-3(ctx, tag-3(ctx, request)) — the codec refuses
        // it, and the frame decoder surfaces that as a stream error.
        let ctx = TraceContext {
            trace: TraceId(1),
            parent: 2,
        };
        let inner = ProtocolMessage::Request(GripRequest::Unsubscribe { id: 1 }).traced(ctx);
        let mut body = BytesMut::new();
        body.put_u8(3);
        gis_ldap::codec::put_varint(&mut body, ctx.trace.0);
        gis_ldap::codec::put_varint(&mut body, ctx.parent);
        inner.encode(&mut body);
        let mut framed = BytesMut::new();
        framed.put_u32(body.len() as u32);
        framed.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        let err = dec.next().unwrap_err();
        assert!(err.to_string().contains("nested traced"), "{err}");
    }
}
