//! Lock-free operational counters shared by the server engines.
//!
//! The GRIS/GIIS read paths run concurrently on live-runtime worker
//! threads, so their hot counters are atomics rather than fields behind
//! `&mut self`. All operations use `Relaxed` ordering: the counters are
//! monotonic event counts with no synchronizing role — readers that want
//! a consistent *cross-counter* view take a snapshot after quiescing the
//! workload (which every test and experiment does).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically-increasing operational counter, updatable through a
/// shared reference.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let c = Counter::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                    c.add(10);
                });
            }
        });
        assert_eq!(c.get(), 4 * 1010);
    }
}
