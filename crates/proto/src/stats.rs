//! Lock-free operational counters shared by the server engines.
//!
//! The GRIS/GIIS read paths run concurrently on live-runtime worker
//! threads, so their hot counters are atomics rather than fields behind
//! `&mut self`. All operations use `Relaxed` ordering: the counters are
//! monotonic event counts with no synchronizing role.
//!
//! # Snapshot semantics
//!
//! A `stats()` snapshot loads each counter independently, so a snapshot
//! taken *while workers are running* is a consistent cut only per
//! counter, not across counters: a reader can land between a writer's
//! two bumps and see, say, `cache_hits` incremented but a companion
//! counter not yet — derived totals computed across independently-loaded
//! counters can tear by the number of in-flight operations.
//!
//! Two disciplines keep snapshots meaningful:
//!
//! * **Packed pairs** — counters coupled by an invariant the reader may
//!   check live (e.g. GRIS `cache_hits`/`cache_misses`, GIIS
//!   `searches`/`local_answers`) are packed into one
//!   [`PackedPair`](crate::metrics::PackedPair) word, so one load yields
//!   a coherent pair and the invariant holds on *every* read.
//! * **Quiescence** — for full cross-counter identities (e.g.
//!   `provider_invocations + stale_served + provider_failures ==
//!   cache_misses`), take the snapshot after the workload quiesces,
//!   which every test and experiment does.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically-increasing operational counter, updatable through a
/// shared reference.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let c = Counter::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                    c.add(10);
                });
            }
        });
        assert_eq!(c.get(), 4 * 1010);
    }
}
