//! Request-scoped trace propagation.
//!
//! A query entering the system is stamped with a [`TraceId`]; every hop
//! (client send, GIIS fan-out, chained child, GRIS provider fetch)
//! records a [`SpanRecord`] into a shared [`TraceSink`] and forwards the
//! context on the wire envelope ([`ProtocolMessage::Traced`]
//! (crate::wire::ProtocolMessage)). After the fact, the sink's records
//! for one trace assemble into a causal [`TraceTree`] — the full
//! client → GIIS → children → GRIS → provider fan-out of a single query.
//!
//! Span timestamps are [`SimTime`] values, so the same machinery works
//! under the deterministic simulator and the live runtime (which maps
//! wall-clock onto `SimTime` from its epoch). Recording is cheap — one
//! atomic for span-id allocation and a short mutex push per span — and
//! entirely skipped when no sink is installed.

use gis_netsim::SimTime;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally-unique identifier of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// The trace context carried on the wire with a request: which trace the
/// request belongs to, and the span id of the sender's hop (the parent
/// of whatever span the receiver opens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace.
    pub trace: TraceId,
    /// Span id of the sending hop.
    pub parent: u64,
}

/// One completed hop of a traced request.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (unique within the sink).
    pub span: u64,
    /// Parent span id, `None` for the root (client) span.
    pub parent: Option<u64>,
    /// Service that executed the hop (a URL, or `client:<id>`).
    pub service: String,
    /// Operation name, e.g. `gris.search` or `provider:cpu-load`.
    pub name: String,
    /// When the hop started.
    pub start: SimTime,
    /// When the hop finished.
    pub end: SimTime,
    /// Outcome label, e.g. `success`, `partial`, `timeout`, `cache-hit`.
    pub outcome: String,
}

/// A shared collector of span records plus the span-id allocator.
///
/// One sink is shared across every service of a deployment (and its
/// clients), so span ids are globally unique and a whole cross-service
/// trace can be assembled from one place.
#[derive(Debug, Default)]
pub struct TraceSink {
    next: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceSink {
    /// Create an empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Create an empty sink whose span ids start above `base`.
    ///
    /// Span ids are only unique *within* one sink; when traces cross OS
    /// processes (the TCP transport), each process allocates from its
    /// own sink, so the processes must carve out disjoint id spaces for
    /// a stitched-together trace tree to link correctly. A client
    /// process typically uses `with_base(id << 32)` for some small
    /// process-unique `id`, leaving the server's sink at base 0.
    pub fn with_base(base: u64) -> TraceSink {
        TraceSink {
            next: AtomicU64::new(base),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Allocate a fresh span id (also used to mint trace ids: the root
    /// span's id doubles as the trace id).
    pub fn next_span(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record a completed span.
    pub fn record(&self, span: SpanRecord) {
        self.spans.lock().push(span);
    }

    /// Copy out every span recorded for `trace`.
    pub fn spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Total spans recorded (all traces).
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Assemble the causal tree for `trace`. Spans whose parent is
    /// missing from the sink are attached to the root level, so partial
    /// traces still render.
    pub fn tree(&self, trace: TraceId) -> TraceTree {
        TraceTree::build(self.spans(trace))
    }
}

/// A causal tree of spans for one trace.
#[derive(Debug)]
pub struct TraceTree {
    /// Top-level spans (roots, plus orphans whose parent was not seen).
    pub roots: Vec<TraceNode>,
}

/// One span plus its causal children.
#[derive(Debug)]
pub struct TraceNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Spans whose parent is this span, ordered by start time.
    pub children: Vec<TraceNode>,
}

impl TraceTree {
    fn build(mut spans: Vec<SpanRecord>) -> TraceTree {
        spans.sort_by_key(|s| (s.start, s.span));
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
        // children[parent] = spans listing that parent
        let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        let mut roots = Vec::new();
        for s in spans {
            match s.parent {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
                _ => roots.push(s),
            }
        }
        fn attach(span: SpanRecord, children: &mut BTreeMap<u64, Vec<SpanRecord>>) -> TraceNode {
            let kids = children.remove(&span.span).unwrap_or_default();
            TraceNode {
                span,
                children: kids.into_iter().map(|k| attach(k, children)).collect(),
            }
        }
        TraceTree {
            roots: roots
                .into_iter()
                .map(|r| attach(r, &mut children))
                .collect(),
        }
    }

    /// Total number of spans in the tree.
    pub fn len(&self) -> usize {
        fn count(n: &TraceNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// True if the tree holds no spans.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Maximum depth of the tree (0 when empty; a lone root is 1).
    pub fn depth(&self) -> usize {
        fn d(n: &TraceNode) -> usize {
            1 + n.children.iter().map(d).max().unwrap_or(0)
        }
        self.roots.iter().map(d).max().unwrap_or(0)
    }

    /// Render the tree as an indented text listing, one span per line:
    /// `name [service] outcome=... dur=...us`.
    pub fn render(&self) -> String {
        fn line(out: &mut String, n: &TraceNode, depth: usize) {
            let s = &n.span;
            let dur = s.end.since(s.start).micros();
            out.push_str(&format!(
                "{:indent$}{} [{}] outcome={} dur={}us\n",
                "",
                s.name,
                s.service,
                s.outcome,
                dur,
                indent = depth * 2
            ));
            for c in &n.children {
                line(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            line(&mut out, r, 0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        sink: &TraceSink,
        trace: TraceId,
        span: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: u64,
    ) {
        sink.record(SpanRecord {
            trace,
            span,
            parent,
            service: "svc".into(),
            name: name.into(),
            start: SimTime(start),
            end: SimTime(end),
            outcome: "success".into(),
        });
    }

    #[test]
    fn tree_assembly() {
        let sink = TraceSink::new();
        let t = TraceId(sink.next_span());
        let root = t.0;
        span(&sink, t, root, None, "client.search", 0, 100);
        let giis = sink.next_span();
        span(&sink, t, giis, Some(root), "giis.chain", 10, 90);
        let gris = sink.next_span();
        span(&sink, t, gris, Some(giis), "gris.search", 20, 80);
        let prov = sink.next_span();
        span(&sink, t, prov, Some(gris), "provider:cpu", 30, 70);
        // unrelated trace is excluded
        let other = TraceId(sink.next_span());
        span(&sink, other, other.0, None, "client.search", 0, 5);

        let tree = sink.tree(t);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.depth(), 4);
        assert_eq!(tree.roots.len(), 1);
        let rendered = tree.render();
        assert!(rendered.contains("client.search"));
        assert!(rendered.contains("provider:cpu"));
        assert!(rendered.starts_with("client.search"));
    }

    #[test]
    fn orphan_spans_surface_at_root() {
        let sink = TraceSink::new();
        let t = TraceId(1);
        span(&sink, t, 5, Some(99), "gris.search", 0, 10);
        let tree = sink.tree(t);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn span_ids_unique_across_threads() {
        let sink = TraceSink::new();
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..100).map(|_| sink.next_span()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
