//! GRRP — the GRid Registration Protocol (§4.3).
//!
//! GRRP is a **soft-state** notification protocol: a provider pushes a
//! stream of registration messages naming itself; state established at the
//! receiver is discarded unless refreshed. "Such protocols have the
//! advantages of being both resilient to failure (a single lost message
//! does not cause irretrievable harm) and simple (no reliable 'de-notify'
//! protocol message is required)."
//!
//! Each message carries the name of the described service (an LDAP URL to
//! which GRIP messages can be directed), the notification type, and
//! timestamps bounding the interval over which the notification holds.
//!
//! This module provides the message type, the receiver-side
//! [`SoftStateRegistry`], the sender-side [`RegistrationAgent`] refresh
//! schedule, and the [`FailureDetector`] view (GRRP "provides a discoverer
//! with an unreliable failure detector").

use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// The kind of a GRRP notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Notification {
    /// A service announces (or refreshes) its availability for indexing:
    /// "in effect, it joins a VO" (§10.4).
    Register,
    /// A directory (or third party) asks a service to join; if the service
    /// agrees "it turns around and uses GRRP to register itself" (§10.4).
    Invite,
}

/// A GRRP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrrpMessage {
    /// Notification type.
    pub notification: Notification,
    /// The service being described: where GRIP messages can be directed.
    pub service_url: LdapUrl,
    /// The DN suffix the service's information lives under (used by
    /// hierarchical directories to scope chained searches, Figure 5).
    pub namespace: Dn,
    /// Start of the validity interval.
    pub valid_from: SimTime,
    /// End of the validity interval; receiver state expires at this time
    /// unless refreshed.
    pub valid_until: SimTime,
    /// For invitations: the directory the invitee should register with.
    /// For registrations this is the sender itself and may be omitted.
    pub reply_to: Option<LdapUrl>,
    /// Authenticated subject, when the message travelled over a secure
    /// channel or was signed (§7); checked by the receiver's policy hook.
    pub subject: Option<String>,
    /// Detached signature blob over [`GrrpMessage::signable_bytes`],
    /// produced and verified by `gis-gsi` ("we can cryptographically
    /// sign each GRRP message with the credentials of the registering
    /// entity", §7). Opaque at this layer.
    pub signature: Option<Vec<u8>>,
}

impl GrrpMessage {
    /// Construct a registration for `service_url` serving `namespace`,
    /// valid for `ttl` from `now`.
    pub fn register(
        service_url: LdapUrl,
        namespace: Dn,
        now: SimTime,
        ttl: SimDuration,
    ) -> GrrpMessage {
        GrrpMessage {
            notification: Notification::Register,
            service_url,
            namespace,
            valid_from: now,
            valid_until: now + ttl,
            reply_to: None,
            subject: None,
            signature: None,
        }
    }

    /// Construct an invitation asking `service_url` to register with
    /// `directory`.
    pub fn invite(
        service_url: LdapUrl,
        directory: LdapUrl,
        now: SimTime,
        ttl: SimDuration,
    ) -> GrrpMessage {
        GrrpMessage {
            notification: Notification::Invite,
            service_url,
            namespace: Dn::root(),
            valid_from: now,
            valid_until: now + ttl,
            reply_to: Some(directory),
            subject: None,
            signature: None,
        }
    }

    /// True if the message's validity interval covers `now`.
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        self.valid_from <= now && now < self.valid_until
    }

    /// Attach an authenticated subject (builder style).
    pub fn with_subject(mut self, subject: impl Into<String>) -> GrrpMessage {
        self.subject = Some(subject.into());
        self
    }

    /// The canonical bytes a registration signature covers: the wire
    /// encoding of the message with its signature field cleared.
    pub fn signable_bytes(&self) -> Vec<u8> {
        use gis_ldap::Wire;
        let mut unsigned = self.clone();
        unsigned.signature = None;
        unsigned.to_wire()
    }
}

/// One live registration held by a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// The most recent message for this service.
    pub message: GrrpMessage,
    /// When the first message for this service arrived (registration age).
    pub first_seen: SimTime,
    /// When the most recent message arrived.
    pub last_seen: SimTime,
    /// How many messages have been received for this service.
    pub refresh_count: u64,
}

impl Registration {
    /// The instant this registration's soft state lapses.
    pub fn expires_at(&self) -> SimTime {
        self.message.valid_until
    }
}

/// Receiver-side soft-state table: the core of every aggregate directory.
///
/// Invariants (property-tested):
/// * `active(now)` never yields an expired registration;
/// * observing a refresh never shortens knowledge of a service;
/// * `sweep(now)` removes exactly the expired registrations.
///
/// Expiry is tracked with a min-heap of `(expires_at, key)` epochs with
/// lazy invalidation: each observation that establishes a new validity
/// end-time pushes an epoch, and a refresh simply strands the old epoch
/// rather than searching the heap for it. `sweep` pops epochs up to
/// `now` — `O(k log n)` for `k` newly expired registrations — and returns
/// immediately without touching the table when the earliest epoch is
/// still in the future. Stranded epochs are reclaimed lazily and by an
/// occasional rebuild, bounding the heap at a small multiple of the
/// table size.
#[derive(Debug, Clone, Default)]
pub struct SoftStateRegistry {
    /// Keyed by service URL string for deterministic iteration.
    regs: BTreeMap<String, Registration>,
    /// Min-heap of `(expires_at, key)` epochs. An epoch is live iff the
    /// registration at `key` still has that exact expiry; all others are
    /// stale and skipped when popped.
    expiry_heap: BinaryHeap<Reverse<(SimTime, String)>>,
}

impl SoftStateRegistry {
    /// Empty registry.
    pub fn new() -> SoftStateRegistry {
        SoftStateRegistry::default()
    }

    /// Record a registration message received at `now`. Returns `true` if
    /// this created a new registration (as opposed to refreshing one).
    ///
    /// Messages that are already expired at `now` (or not yet valid) are
    /// ignored — a late duplicate of an old announcement must not
    /// resurrect state.
    pub fn observe(&mut self, msg: GrrpMessage, now: SimTime) -> bool {
        if !msg.is_valid_at(now) {
            return false;
        }
        let key = msg.service_url.to_string();
        match self.regs.get_mut(&key) {
            Some(reg) => {
                // Never let an out-of-order older message shorten validity.
                if msg.valid_until > reg.message.valid_until {
                    reg.message = msg;
                    // New validity end-time: push a fresh epoch; the old
                    // one is now stale and will be skipped when popped.
                    self.expiry_heap
                        .push(Reverse((reg.message.valid_until, key)));
                }
                reg.last_seen = now;
                reg.refresh_count += 1;
                self.maybe_compact_heap();
                false
            }
            None => {
                self.expiry_heap
                    .push(Reverse((msg.valid_until, key.clone())));
                self.regs.insert(
                    key,
                    Registration {
                        message: msg,
                        first_seen: now,
                        last_seen: now,
                        refresh_count: 1,
                    },
                );
                true
            }
        }
    }

    /// Rebuild the heap from live registrations when stranded epochs
    /// dominate it, keeping memory proportional to the table.
    fn maybe_compact_heap(&mut self) {
        if self.expiry_heap.len() > 2 * self.regs.len() + 64 {
            self.expiry_heap = self
                .regs
                .iter()
                .map(|(k, r)| Reverse((r.expires_at(), k.clone())))
                .collect();
        }
    }

    /// Drop expired registrations; returns the services purged (in URL
    /// order). "After some time without a refresh, the directory can
    /// assume the provider has become unavailable, and purge knowledge of
    /// it" (§4.3).
    ///
    /// Cost is `O(k log n)` in the number of expired registrations `k`;
    /// when the earliest tracked expiry is still in the future this
    /// returns without examining the table at all.
    pub fn sweep(&mut self, now: SimTime) -> Vec<LdapUrl> {
        let mut purged = Vec::new();
        while let Some(Reverse((epoch, _))) = self.expiry_heap.peek() {
            if *epoch > now {
                break; // earliest possible expiry is in the future
            }
            let Reverse((epoch, key)) = self.expiry_heap.pop().expect("peeked above");
            // The epoch is live only if the registration still expires at
            // exactly this time; otherwise it was refreshed (or forgotten)
            // after the epoch was pushed and the pop is a lazy discard.
            if self.regs.get(&key).is_some_and(|r| r.expires_at() == epoch) {
                let reg = self.regs.remove(&key).expect("checked above");
                purged.push(reg.message.service_url);
            }
        }
        purged.sort_by_cached_key(|u| u.to_string());
        purged
    }

    /// Explicitly forget a service (used when a directory applies policy,
    /// not part of the protocol: GRRP deliberately has no de-notify).
    pub fn forget(&mut self, url: &LdapUrl) -> Option<Registration> {
        self.regs.remove(&url.to_string())
    }

    /// Iterate registrations that are fresh at `now`, in URL order.
    pub fn active(&self, now: SimTime) -> impl Iterator<Item = &Registration> {
        self.regs.values().filter(move |r| now < r.expires_at())
    }

    /// Count of registrations fresh at `now`.
    ///
    /// When the earliest tracked expiry lies in the future — the steady
    /// state right after a `sweep` — every registration is fresh and the
    /// count is answered in `O(1)` from the table size without iterating.
    pub fn active_count(&self, now: SimTime) -> usize {
        match self.expiry_heap.peek() {
            // Every live registration keeps its current epoch in the
            // heap, so an empty heap means an empty table.
            None => 0,
            // Stale epochs are lower bounds on their registration's real
            // expiry, so a future minimum proves nothing has lapsed.
            Some(Reverse((min, _))) if *min > now => self.regs.len(),
            Some(_) => self.active(now).count(),
        }
    }

    /// Total table size including not-yet-swept stale entries.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Fetch the registration for a service, fresh or not.
    pub fn get(&self, url: &LdapUrl) -> Option<&Registration> {
        self.regs.get(&url.to_string())
    }

    /// True if the service is registered and fresh at `now`.
    pub fn is_fresh(&self, url: &LdapUrl, now: SimTime) -> bool {
        self.get(url).is_some_and(|r| now < r.expires_at())
    }

    /// Iterate every registration in the table, fresh or not, in URL
    /// order (snapshot capture).
    pub fn registrations(&self) -> impl Iterator<Item = &Registration> {
        self.regs.values()
    }

    /// Rebuild the table from persisted registrations, preserving each
    /// one's exact expiry deadline and receipt clocks — restart recovery
    /// must not extend (or shorten) soft-state lifetimes.
    pub fn restore(&mut self, regs: impl IntoIterator<Item = Registration>) {
        self.regs.clear();
        self.expiry_heap.clear();
        for reg in regs {
            let key = reg.message.service_url.to_string();
            self.expiry_heap
                .push(Reverse((reg.expires_at(), key.clone())));
            self.regs.insert(key, reg);
        }
    }

    /// Earliest instant at which any registration *might* expire (a
    /// lower bound: stale epochs may report earlier than the truth).
    /// `None` means the table is empty and a sweep cannot purge anything.
    pub fn next_possible_expiry(&self) -> Option<SimTime> {
        self.expiry_heap.peek().map(|Reverse((t, _))| *t)
    }
}

/// Sender-side refresh schedule: "the provider then sustains a stream of
/// registration messages to each directory" (§4.3).
///
/// The agent is sans-IO: callers ask [`RegistrationAgent::due_messages`]
/// at timer ticks and transmit the returned messages themselves.
#[derive(Debug, Clone)]
pub struct RegistrationAgent {
    /// This service's own GRIP endpoint.
    pub service_url: LdapUrl,
    /// The namespace this service serves.
    pub namespace: Dn,
    /// Interval between registration messages.
    pub interval: SimDuration,
    /// Validity attached to each message. A TTL of `k × interval` lets the
    /// receiver survive `k − 1` consecutive lost messages (§4.3's
    /// robustness/timeliness tradeoff). Construction requires `k >= 2`:
    /// with `ttl < 2 × interval`, a *single* lost refresh expires the
    /// receiver's soft state, so the registration flaps under the very
    /// message loss GRRP is designed to absorb.
    pub ttl: SimDuration,
    /// Fraction of `interval` (0..=1) by which each refresh is randomly
    /// advanced. Zero (the default) reproduces a fixed cadence; a
    /// positive value desynchronizes fleets of agents that started at
    /// the same instant, so a large VO does not hit its directory with
    /// one registration burst per interval.
    jitter_frac: f64,
    /// Deterministic source for the jitter offsets.
    rng: SimRng,
    /// Directories to keep registered with.
    targets: Vec<LdapUrl>,
    next_due: SimTime,
    /// True once a caller pinned the advertised URL via
    /// [`RegistrationAgent::advertise`]: runtimes must then stop
    /// re-snapshotting `service_url` from the bound endpoint (the
    /// deliberate-NAT case, where the dialable advert differs from the
    /// local bind address).
    advert_pinned: bool,
}

impl RegistrationAgent {
    /// Create an agent with the given refresh interval and message TTL.
    ///
    /// # Panics
    ///
    /// Panics unless `ttl >= 2 × interval`: anything tighter flaps on a
    /// single lost refresh (see [`RegistrationAgent::ttl`]).
    pub fn new(
        service_url: LdapUrl,
        namespace: Dn,
        interval: SimDuration,
        ttl: SimDuration,
    ) -> RegistrationAgent {
        assert!(
            ttl.micros() >= 2 * interval.micros(),
            "registration ttl ({ttl:?}) must be at least twice the refresh \
             interval ({interval:?}); a tighter ratio expires on a single lost message"
        );
        Self::new_unchecked(service_url, namespace, interval, ttl)
    }

    /// Like [`RegistrationAgent::new`] but without the `ttl >= 2 × interval`
    /// guard. Only for experiments that deliberately study under-provisioned
    /// ratios (e.g. the §4.3 failure-detection sweep runs `ttl == interval`
    /// to measure how tight ratios flap under loss). Production deployments
    /// should use [`RegistrationAgent::new`].
    pub fn new_unchecked(
        service_url: LdapUrl,
        namespace: Dn,
        interval: SimDuration,
        ttl: SimDuration,
    ) -> RegistrationAgent {
        // Seed the jitter stream from the service URL so two runs of the
        // same deployment draw the same offsets (deterministic replay).
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in service_url.to_string().bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        RegistrationAgent {
            service_url,
            namespace,
            interval,
            ttl,
            jitter_frac: 0.0,
            rng: SimRng::new(seed),
            targets: Vec::new(),
            next_due: SimTime::ZERO,
            advert_pinned: false,
        }
    }

    /// Pin the advertised URL: registrations will carry exactly `url`,
    /// and runtimes that rewrite `:0` bind addresses will leave it
    /// alone. Use when the dialable address peers should use differs
    /// from the local bind address (NAT, load balancer). Without a pin,
    /// the live runtime re-snapshots `service_url` from the bound
    /// endpoint so registrations never advertise a stale port.
    pub fn advertise(&mut self, url: LdapUrl) {
        self.service_url = url;
        self.advert_pinned = true;
    }

    /// True when [`RegistrationAgent::advertise`] pinned the advert.
    pub fn advert_pinned(&self) -> bool {
        self.advert_pinned
    }

    /// Enable jittered scheduling (builder style): each refresh fires up
    /// to `frac × interval` early. The clamp keeps at least half the
    /// interval between refreshes so jitter can never starve the TTL.
    pub fn with_jitter(mut self, frac: f64) -> RegistrationAgent {
        self.jitter_frac = frac.clamp(0.0, 0.5);
        self
    }

    /// Make the next refresh due immediately. Call on service restart:
    /// re-announcing right away closes the visibility gap between the
    /// restart and the next scheduled refresh (directories holding
    /// expired state re-learn the service without waiting an interval).
    pub fn reannounce(&mut self) {
        self.next_due = SimTime::ZERO;
    }

    /// Add a directory to register with ("under the direction of local and
    /// VO-specific policies, an information provider determines the
    /// directory(s) with which it will register").
    pub fn add_target(&mut self, directory: LdapUrl) {
        if !self.targets.contains(&directory) {
            self.targets.push(directory);
        }
    }

    /// Stop registering with a directory (the registration will simply
    /// expire at the receiver: soft state needs no de-notify).
    pub fn remove_target(&mut self, directory: &LdapUrl) {
        self.targets.retain(|t| t != directory);
    }

    /// Current targets.
    pub fn targets(&self) -> &[LdapUrl] {
        &self.targets
    }

    /// Accept an invitation: start registering with the inviting
    /// directory. Returns `true` if the target was new.
    pub fn accept_invite(&mut self, invite: &GrrpMessage) -> bool {
        match (&invite.notification, &invite.reply_to) {
            (Notification::Invite, Some(dir)) => {
                let new = !self.targets.contains(dir);
                self.add_target(dir.clone());
                new
            }
            _ => false,
        }
    }

    /// If a refresh is due at `now`, return one registration message per
    /// target and schedule the next refresh (jittered when configured).
    pub fn due_messages(&mut self, now: SimTime) -> Vec<(LdapUrl, GrrpMessage)> {
        if now < self.next_due {
            return Vec::new();
        }
        let mut next = self.interval.micros();
        if self.jitter_frac > 0.0 && next > 0 {
            // Fire early by up to `frac × interval`; never late, so the
            // receiver-side TTL margin is preserved.
            let spread = (next as f64 * self.jitter_frac) as u64;
            next -= self.rng.range_u64(0, spread + 1);
        }
        self.next_due = now + SimDuration::from_micros(next);
        self.targets
            .iter()
            .map(|dir| {
                (
                    dir.clone(),
                    GrrpMessage::register(
                        self.service_url.clone(),
                        self.namespace.clone(),
                        now,
                        self.ttl,
                    ),
                )
            })
            .collect()
    }

    /// When the next refresh is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }
}

/// The unreliable failure detector implied by GRRP (§4.3): a service is
/// *suspected* once no registration has been received for longer than the
/// suspicion threshold.
///
/// "There is thus a tradeoff to be made ... between likelihood of an
/// erroneous decision and timeliness of failure detection." Experiment E6
/// sweeps this threshold against packet-loss rates.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    /// Time without any message after which a service is suspected.
    pub suspicion_after: SimDuration,
    last_seen: BTreeMap<String, SimTime>,
}

impl FailureDetector {
    /// Create a detector with the given suspicion threshold.
    pub fn new(suspicion_after: SimDuration) -> FailureDetector {
        FailureDetector {
            suspicion_after,
            last_seen: BTreeMap::new(),
        }
    }

    /// Record that a message from `service` arrived at `now`.
    pub fn heard_from(&mut self, service: &LdapUrl, now: SimTime) {
        self.last_seen.insert(service.to_string(), now);
    }

    /// Services currently suspected of having failed.
    pub fn suspected(&self, now: SimTime) -> Vec<String> {
        self.last_seen
            .iter()
            .filter(|(_, &seen)| now.since(seen) > self.suspicion_after)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// True if `service` is currently suspected.
    pub fn is_suspected(&self, service: &LdapUrl, now: SimTime) -> bool {
        self.last_seen
            .get(&service.to_string())
            .is_none_or(|&seen| now.since(seen) > self.suspicion_after)
    }

    /// Number of services ever heard from.
    pub fn known(&self) -> usize {
        self.last_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::{ms, secs};

    fn url(host: &str) -> LdapUrl {
        LdapUrl::server(host)
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    #[test]
    fn observe_then_expire() {
        let mut reg = SoftStateRegistry::new();
        let msg = GrrpMessage::register(url("gris.a"), Dn::root(), t(0), secs(30));
        assert!(reg.observe(msg, t(0)));
        assert_eq!(reg.active_count(t(10)), 1);
        assert!(reg.is_fresh(&url("gris.a"), t(29)));
        assert!(!reg.is_fresh(&url("gris.a"), t(30)));
        assert_eq!(reg.active_count(t(31)), 0);
        let purged = reg.sweep(t(31));
        assert_eq!(purged, vec![url("gris.a")]);
        assert!(reg.is_empty());
    }

    #[test]
    fn refresh_extends_validity() {
        let mut reg = SoftStateRegistry::new();
        reg.observe(
            GrrpMessage::register(url("g"), Dn::root(), t(0), secs(30)),
            t(0),
        );
        // Refresh at t=20 with a new 30s TTL: now valid to t=50.
        let created = reg.observe(
            GrrpMessage::register(url("g"), Dn::root(), t(20), secs(30)),
            t(20),
        );
        assert!(!created, "refresh is not a new registration");
        assert!(reg.is_fresh(&url("g"), t(45)));
        assert_eq!(reg.get(&url("g")).unwrap().refresh_count, 2);
        assert_eq!(reg.get(&url("g")).unwrap().first_seen, t(0));
    }

    #[test]
    fn out_of_order_refresh_does_not_shorten() {
        let mut reg = SoftStateRegistry::new();
        reg.observe(
            GrrpMessage::register(url("g"), Dn::root(), t(20), secs(30)),
            t(20),
        );
        // A delayed older message (valid only to t=30) arrives late.
        reg.observe(
            GrrpMessage::register(url("g"), Dn::root(), t(0), secs(30)),
            t(25),
        );
        assert!(reg.is_fresh(&url("g"), t(45)), "validity must not shrink");
    }

    #[test]
    fn expired_message_ignored() {
        let mut reg = SoftStateRegistry::new();
        let stale = GrrpMessage::register(url("g"), Dn::root(), t(0), secs(5));
        assert!(!reg.observe(stale, t(10)));
        assert!(reg.is_empty());
    }

    #[test]
    fn single_lost_message_is_harmless_with_ttl_headroom() {
        // TTL = 3 × interval: missing one or two refreshes keeps state.
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30));
        agent.add_target(url("giis"));
        let mut reg = SoftStateRegistry::new();

        // t=0 message arrives.
        for (_, m) in agent.due_messages(t(0)) {
            reg.observe(m, t(0));
        }
        // t=10 and t=20 messages are lost; t=25: still fresh.
        let _ = agent.due_messages(t(10));
        let _ = agent.due_messages(t(20));
        assert!(reg.is_fresh(&url("g"), t(25)));
        // t=30 message arrives: refreshed through t=60.
        for (_, m) in agent.due_messages(t(30)) {
            reg.observe(m, t(30));
        }
        assert!(reg.is_fresh(&url("g"), t(55)));
    }

    #[test]
    fn agent_schedule_paces_messages() {
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30));
        agent.add_target(url("d1"));
        agent.add_target(url("d2"));
        assert_eq!(agent.due_messages(t(0)).len(), 2);
        assert!(agent.due_messages(t(5)).is_empty(), "not due yet");
        assert_eq!(agent.due_messages(t(10)).len(), 2);
        assert_eq!(agent.next_due(), t(20));
    }

    #[test]
    fn agent_dedups_targets() {
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30));
        agent.add_target(url("d"));
        agent.add_target(url("d"));
        assert_eq!(agent.targets().len(), 1);
        agent.remove_target(&url("d"));
        assert!(agent.targets().is_empty());
    }

    #[test]
    fn invitation_flow() {
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30));
        let invite = GrrpMessage::invite(url("g"), url("giis.vo"), t(0), secs(60));
        assert!(agent.accept_invite(&invite));
        assert!(!agent.accept_invite(&invite), "already a target");
        assert_eq!(agent.targets(), &[url("giis.vo")]);
        // A plain registration is not an invitation.
        let not_invite = GrrpMessage::register(url("x"), Dn::root(), t(0), secs(60));
        assert!(!agent.accept_invite(&not_invite));
    }

    #[test]
    fn failure_detector_suspicion() {
        let mut fd = FailureDetector::new(secs(25));
        fd.heard_from(&url("g"), t(0));
        assert!(!fd.is_suspected(&url("g"), t(20)));
        assert!(fd.is_suspected(&url("g"), t(26)));
        fd.heard_from(&url("g"), t(30));
        assert!(!fd.is_suspected(&url("g"), t(50)));
        assert_eq!(fd.suspected(t(60)), vec![url("g").to_string()]);
        // Unknown services are suspected by definition.
        assert!(fd.is_suspected(&url("never-seen"), t(0)));
    }

    #[test]
    fn registry_active_iteration_is_deterministic() {
        let mut reg = SoftStateRegistry::new();
        for host in ["c", "a", "b"] {
            reg.observe(
                GrrpMessage::register(url(host), Dn::root(), t(0), secs(30)),
                t(0),
            );
        }
        let order: Vec<String> = reg
            .active(t(1))
            .map(|r| r.message.service_url.host.clone())
            .collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn validity_window_semantics() {
        let msg = GrrpMessage::register(url("g"), Dn::root(), t(10), secs(10));
        assert!(!msg.is_valid_at(t(9)));
        assert!(msg.is_valid_at(t(10)));
        assert!(msg.is_valid_at(t(19)));
        assert!(!msg.is_valid_at(t(20)));
    }

    #[test]
    fn sweep_only_removes_expired() {
        let mut reg = SoftStateRegistry::new();
        reg.observe(
            GrrpMessage::register(url("short"), Dn::root(), t(0), secs(10)),
            t(0),
        );
        reg.observe(
            GrrpMessage::register(url("long"), Dn::root(), t(0), secs(100)),
            t(0),
        );
        let purged = reg.sweep(t(50));
        assert_eq!(purged, vec![url("short")]);
        assert_eq!(reg.len(), 1);
        assert!(reg.is_fresh(&url("long"), t(50)));
    }

    #[test]
    fn forget_is_immediate() {
        let mut reg = SoftStateRegistry::new();
        reg.observe(
            GrrpMessage::register(url("g"), Dn::root(), t(0), secs(100)),
            t(0),
        );
        assert!(reg.forget(&url("g")).is_some());
        assert!(reg.forget(&url("g")).is_none());
        assert_eq!(reg.active_count(t(1)), 0);
    }

    #[test]
    fn ms_granularity_intervals() {
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), ms(500), ms(1500));
        agent.add_target(url("d"));
        assert_eq!(agent.due_messages(SimTime::ZERO).len(), 1);
        assert!(agent.due_messages(SimTime::ZERO + ms(499)).is_empty());
        assert_eq!(agent.due_messages(SimTime::ZERO + ms(500)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least twice")]
    fn flappy_ttl_interval_ratio_rejected() {
        // ttl < 2 × interval would expire on one lost refresh.
        let _ = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(19));
    }

    #[test]
    fn jitter_fires_early_never_late_and_is_deterministic() {
        let run = || {
            let mut agent =
                RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30)).with_jitter(0.3);
            agent.add_target(url("d"));
            let mut fire_times = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..50 {
                assert!(!agent.due_messages(now).is_empty());
                fire_times.push(now);
                now = agent.next_due();
            }
            fire_times
        };
        let times = run();
        for pair in times.windows(2) {
            let gap = pair[1].since(pair[0]);
            assert!(gap <= secs(10), "never later than the interval: {gap:?}");
            assert!(gap >= secs(7), "never earlier than frac allows: {gap:?}");
        }
        // Seeded from the service URL: replays identically.
        assert_eq!(times, run());
    }

    #[test]
    fn reannounce_makes_refresh_due_immediately() {
        let mut agent = RegistrationAgent::new(url("g"), Dn::root(), secs(10), secs(30));
        agent.add_target(url("d"));
        assert_eq!(agent.due_messages(t(0)).len(), 1);
        assert!(agent.due_messages(t(3)).is_empty(), "not due yet");
        agent.reannounce();
        assert_eq!(agent.due_messages(t(3)).len(), 1, "restart re-announces");
    }
}
