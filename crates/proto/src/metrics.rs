//! Lock-free metrics: log-bucketed latency histograms, labeled counters
//! and gauges, and a registry that exports everything as DIT entries.
//!
//! The paper's architecture is *self-describing*: services register and
//! describe themselves through the same GRIP/GRRP machinery they serve
//! (§5, §10.4). This module applies that principle to the system itself —
//! every engine owns a [`MetricsRegistry`], records latencies and event
//! counts into it from the hot paths (Relaxed atomics, no locks on the
//! record side), and periodically exports the registry as ordinary
//! directory entries under the `Mds-Vo-name=monitoring` namespace, where
//! operators discover them with plain GRIP searches.
//!
//! Three instrument kinds:
//!
//! * [`Histogram`] — log2-bucketed latency distribution over microsecond
//!   values; snapshots answer p50/p95/p99/max.
//! * [`Counter`](crate::stats::Counter) — the PR 3 monotonic counter,
//!   re-used here for labeled event counts.
//! * [`Gauge`] — a last-write-wins level (queue depth, breaker state).
//!
//! [`PackedPair`] packs two related u32 counters into one `AtomicU64` so
//! a single load observes a *coherent* pair — the fix for torn derived
//! totals in `stats()` snapshots (see `stats.rs` for the tearing
//! semantics of independent counters).

use crate::stats::Counter;
use gis_ldap::{Dn, Entry, Rdn};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`. 64 buckets cover the full `u64` range.
const BUCKETS: usize = 65;

/// A lock-free log2-bucketed histogram of microsecond latencies.
///
/// `record` is wait-free: one `fetch_add` on the bucket, count and sum,
/// plus a `fetch_max` on the max — all Relaxed, mirroring the PR 3
/// counter discipline. Quantiles are approximate to within a factor of
/// two (the bucket width); the maximum is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a recorded value: 0 for 0, else the bit width of the
/// value (so `v` lands in bucket `floor(log2 v) + 1`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation (microseconds).
    #[inline]
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Take a point-in-time snapshot. Under concurrent recording the
    /// snapshot may straddle in-flight observations (bucket totals can
    /// lag `count` by the writers currently between their two
    /// `fetch_add`s); quantile math tolerates this by clamping.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram`] for the scheme).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (microseconds).
    pub sum: u64,
    /// Largest observed value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile `p` in `[0, 1]`: the midpoint of the bucket
    /// containing the `ceil(p * count)`-th observation, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let mid = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    lo + (hi - lo) / 2
                };
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value, 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A last-write-wins level metric (queue depth, breaker state).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Read the current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the level to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// Two related u32 counters packed into one `AtomicU64` so that a single
/// load observes a coherent pair.
///
/// Independent Relaxed counters can *tear*: a reader between a writer's
/// two bumps sees `hits` already incremented but `misses` not yet, so
/// derived totals (`hits + misses == lookups`) transiently fail. Packing
/// both halves into one word makes every read a consistent cut: each
/// update is a single `fetch_add`, so any load sees a pair produced by a
/// prefix of the updates.
///
/// Each half wraps at `2^32` — ample for operational counters (the
/// largest experiment records ~10^5 events).
#[derive(Debug, Default)]
pub struct PackedPair(AtomicU64);

impl PackedPair {
    /// Increment the first (low) counter.
    #[inline]
    pub fn bump_first(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment the second (high) counter.
    #[inline]
    pub fn bump_second(&self) {
        self.0.fetch_add(1 << 32, Ordering::Relaxed);
    }

    /// Increment both counters in one atomic update.
    #[inline]
    pub fn bump_both(&self) {
        self.0.fetch_add(1 | (1 << 32), Ordering::Relaxed);
    }

    /// Read both counters from a single load: `(first, second)`.
    #[inline]
    pub fn get(&self) -> (u64, u64) {
        let v = self.0.load(Ordering::Relaxed);
        (v & 0xffff_ffff, v >> 32)
    }
}

/// One named instrument in a registry.
#[derive(Debug)]
enum Instrument {
    Histogram(Arc<Histogram>),
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
}

/// A registry of named (optionally labeled) instruments.
///
/// Engines resolve their handles once at setup (`histogram`, `counter`,
/// `gauge` are get-or-create and return `Arc`s), so the hot path never
/// touches the registry lock — it only bumps atomics through the
/// pre-resolved handles. Labeled instruments use a `name:label` key,
/// e.g. `provider-fetch-us:cpu-load`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: RwLock<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn key(name: &str, label: Option<&str>) -> String {
        match label {
            Some(l) => format!("{name}:{l}"),
            None => name.to_string(),
        }
    }

    /// Get or create the histogram `name` (no label).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.labeled_histogram(name, None)
    }

    /// Get or create the histogram `name` with an optional label.
    pub fn labeled_histogram(&self, name: &str, label: Option<&str>) -> Arc<Histogram> {
        let key = Self::key(name, label);
        if let Some(Instrument::Histogram(h)) = self.instruments.read().get(&key) {
            return Arc::clone(h);
        }
        let mut w = self.instruments.write();
        match w
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric registered with a different kind"),
        }
    }

    /// Get or create the counter `name` (no label).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.labeled_counter(name, None)
    }

    /// Get or create the counter `name` with an optional label.
    pub fn labeled_counter(&self, name: &str, label: Option<&str>) -> Arc<Counter> {
        let key = Self::key(name, label);
        if let Some(Instrument::Counter(c)) = self.instruments.read().get(&key) {
            return Arc::clone(c);
        }
        let mut w = self.instruments.write();
        match w
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric registered with a different kind"),
        }
    }

    /// Get or create the gauge `name` (no label).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.labeled_gauge(name, None)
    }

    /// Get or create the gauge `name` with an optional label.
    pub fn labeled_gauge(&self, name: &str, label: Option<&str>) -> Arc<Gauge> {
        let key = Self::key(name, label);
        if let Some(Instrument::Gauge(g)) = self.instruments.read().get(&key) {
            return Arc::clone(g);
        }
        let mut w = self.instruments.write();
        match w
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric registered with a different kind"),
        }
    }

    /// Adopt every instrument of `source` into this registry by
    /// reference: the `Arc` handles are shared, not copied, so the
    /// source's live values appear in this registry's exports. Names
    /// already present here keep their existing instrument (the same
    /// first-registration-wins rule as get-or-create). Used to surface
    /// process-wide instruments — the transport reactor's per-shard
    /// gauges and histograms — through each service's own `monitoring`
    /// export.
    pub fn adopt_all(&self, source: &MetricsRegistry) {
        let from = source.instruments.read();
        let mut into = self.instruments.write();
        for (key, inst) in from.iter() {
            into.entry(key.clone()).or_insert_with(|| match inst {
                Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
                Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
                Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
            });
        }
    }

    /// Export every instrument as a DIT entry `metric=<key>` under
    /// `base`, in the monitoring-namespace schema (§9 of DESIGN.md):
    /// histograms carry `count`/`sum-us`/`p50-us`/`p95-us`/`p99-us`/
    /// `max-us`/`mean-us`, counters and gauges carry `value`.
    pub fn export_entries(&self, base: &Dn) -> Vec<Entry> {
        let instruments = self.instruments.read();
        let mut out = Vec::with_capacity(instruments.len());
        for (key, inst) in instruments.iter() {
            let dn = base.child(Rdn::new("metric", key.clone()));
            let entry = match inst {
                Instrument::Histogram(h) => {
                    let s = h.snapshot();
                    Entry::new(dn)
                        .with_class("mds-metric")
                        .with("metric-kind", "histogram")
                        .with("count", s.count.to_string())
                        .with("sum-us", s.sum.to_string())
                        .with("mean-us", format!("{:.1}", s.mean()))
                        .with("p50-us", s.quantile(0.50).to_string())
                        .with("p95-us", s.quantile(0.95).to_string())
                        .with("p99-us", s.quantile(0.99).to_string())
                        .with("max-us", s.max.to_string())
                }
                Instrument::Counter(c) => Entry::new(dn)
                    .with_class("mds-metric")
                    .with("metric-kind", "counter")
                    .with("value", c.get().to_string()),
                Instrument::Gauge(g) => Entry::new(dn)
                    .with_class("mds-metric")
                    .with("metric-kind", "gauge")
                    .with("value", g.get().to_string()),
            };
            out.push(entry);
        }
        out
    }
}

/// The distinguished base of the monitoring namespace:
/// `Mds-Vo-name=monitoring`. Every service exports its self-description
/// under `service=<url>, Mds-Vo-name=monitoring`.
pub fn monitoring_base() -> Dn {
    Dn::from_rdns(vec![Rdn::new("mds-vo-name", "monitoring")])
}

/// True if `dn` falls inside the monitoring namespace.
pub fn is_monitoring_dn(dn: &Dn) -> bool {
    dn.is_under(&monitoring_base())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.50);
        // true median 500; log2 bucket [512,1024) or [256,512) midpoint
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(0.99) <= 1000);
        // p100 lands in the max's bucket [512, 1024), clamped to max
        assert!((512..=1000).contains(&s.quantile(1.0)));
        assert_eq!(s.quantile(0.0), 1); // first observation's bucket, clamped
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_concurrent_record() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max, 3999);
    }

    #[test]
    fn packed_pair_is_coherent() {
        let p = PackedPair::default();
        p.bump_first();
        p.bump_both();
        p.bump_second();
        assert_eq!(p.get(), (2, 2));
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.labeled_histogram("fetch-us", Some("cpu"));
        let b = r.labeled_histogram("fetch-us", Some("cpu"));
        a.record(7);
        assert_eq!(b.count(), 1);
        assert_eq!(r.counter("hits").get(), 0);
        r.counter("hits").bump();
        assert_eq!(r.counter("hits").get(), 1);
        r.gauge("depth").set(42);
        assert_eq!(r.gauge("depth").get(), 42);
    }

    #[test]
    fn export_shape() {
        let r = MetricsRegistry::new();
        r.histogram("search-us").record(100);
        r.counter("hits").add(3);
        r.gauge("depth").set(2);
        let base = monitoring_base().child(Rdn::new("service", "ldap://g1"));
        let entries = r.export_entries(&base);
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(e.has_class("mds-metric"));
            assert!(is_monitoring_dn(e.dn()));
        }
        let hist = entries
            .iter()
            .find(|e| e.get_str("metric-kind") == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get_str("count"), Some("1"));
        assert_eq!(hist.get_str("max-us"), Some("100"));
    }
}
