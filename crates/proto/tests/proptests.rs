//! Property tests for the protocol layer: soft-state registry
//! invariants and wire round-trips on arbitrary messages.

use gis_ldap::{Dn, LdapUrl, Rdn, Wire};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{
    GripReply, GripRequest, GrrpMessage, ProtocolMessage, ResultCode, SearchSpec,
    SoftStateRegistry, SubscriptionMode,
};
use proptest::prelude::*;

fn url() -> impl Strategy<Value = LdapUrl> {
    ("[a-z]{1,8}", 1u16..10000).prop_map(|(h, p)| LdapUrl::new(h, p, Dn::root()))
}

fn dn() -> impl Strategy<Value = Dn> {
    prop::collection::vec(("[a-z]{1,4}", "[a-zA-Z0-9]{1,6}"), 0..3)
        .prop_map(|parts| Dn::from_rdns(parts.into_iter().map(|(a, v)| Rdn::new(a, v)).collect()))
}

fn time() -> impl Strategy<Value = SimTime> {
    (0u64..1_000_000_000).prop_map(SimTime)
}

fn duration() -> impl Strategy<Value = SimDuration> {
    (1u64..1_000_000_000).prop_map(SimDuration)
}

fn grrp() -> impl Strategy<Value = GrrpMessage> {
    (
        url(),
        dn(),
        time(),
        duration(),
        prop::option::of("[ -~]{0,20}"),
    )
        .prop_map(|(service_url, namespace, from, ttl, subject)| {
            let mut m = GrrpMessage::register(service_url, namespace, from, ttl);
            m.subject = subject;
            m
        })
}

/// Registry driven by an arbitrary schedule of (message, observation
/// time) events, observed in time order.
fn schedule() -> impl Strategy<Value = Vec<(GrrpMessage, SimTime)>> {
    prop::collection::vec((grrp(), time()), 0..40).prop_map(|mut v| {
        v.sort_by_key(|(_, t)| *t);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn registry_never_serves_expired(events in schedule(), probe in time()) {
        let mut reg = SoftStateRegistry::new();
        for (msg, at) in &events {
            reg.observe(msg.clone(), *at);
        }
        for r in reg.active(probe) {
            prop_assert!(probe < r.expires_at(), "active() must exclude expired entries");
        }
    }

    #[test]
    fn sweep_removes_exactly_expired(events in schedule(), probe in time()) {
        let mut reg = SoftStateRegistry::new();
        for (msg, at) in &events {
            reg.observe(msg.clone(), *at);
        }
        let active_before = reg.active_count(probe);
        let purged = reg.sweep(probe);
        prop_assert_eq!(reg.len(), active_before, "survivors are exactly the active set");
        // Everything purged was expired; everything kept is fresh.
        for url in &purged {
            prop_assert!(reg.get(url).is_none());
        }
        for r in reg.active(probe) {
            prop_assert!(probe < r.expires_at());
        }
        // Sweeping again at the same instant is a no-op.
        prop_assert!(reg.sweep(probe).is_empty());
    }

    #[test]
    fn refresh_never_shrinks_validity(base in grrp(), t1 in time(), extra in duration()) {
        // Observe a message, then a refresh with any later validity;
        // expiry must be monotone non-decreasing.
        let mut reg = SoftStateRegistry::new();
        let t0 = base.valid_from;
        if !base.is_valid_at(t0) {
            return Ok(()); // degenerate zero-ttl case
        }
        reg.observe(base.clone(), t0);
        let before = reg.get(&base.service_url).unwrap().expires_at();

        let mut refresh = base.clone();
        refresh.valid_from = t1;
        refresh.valid_until = t1 + extra;
        let observe_at = t1;
        if refresh.is_valid_at(observe_at) {
            reg.observe(refresh, observe_at);
        }
        if let Some(r) = reg.get(&base.service_url) {
            prop_assert!(r.expires_at() >= before.min(r.expires_at()));
            prop_assert!(r.expires_at() >= before || r.expires_at() == before,
                "validity must never shrink");
        }
    }

    #[test]
    fn registration_count_bounded_by_distinct_urls(events in schedule()) {
        let mut reg = SoftStateRegistry::new();
        let mut distinct = std::collections::BTreeSet::new();
        for (msg, at) in &events {
            distinct.insert(msg.service_url.to_string());
            reg.observe(msg.clone(), *at);
        }
        prop_assert!(reg.len() <= distinct.len());
    }

    #[test]
    fn grrp_wire_roundtrip(m in grrp()) {
        let bytes = m.to_wire();
        prop_assert_eq!(GrrpMessage::from_wire(&bytes).unwrap(), m);
    }

    #[test]
    fn protocol_frame_roundtrip(m in grrp(), id in 0u64..1000, limit in 0u32..100) {
        let frames = vec![
            ProtocolMessage::Grrp(m.clone()),
            ProtocolMessage::Request(GripRequest::Search {
                id,
                spec: SearchSpec::subtree(m.namespace.clone(), gis_ldap::Filter::always())
                    .limit(limit),
            }),
            ProtocolMessage::Request(GripRequest::Subscribe {
                id,
                spec: SearchSpec::lookup(m.namespace.clone()),
                mode: SubscriptionMode::Periodic(SimDuration(1 + u64::from(limit))),
            }),
            ProtocolMessage::Reply(GripReply::SearchResult {
                id,
                code: ResultCode::PartialResults,
                entries: vec![],
                referrals: vec![m.service_url.clone()],
            }),
        ];
        for frame in frames {
            let bytes = frame.to_wire();
            prop_assert_eq!(ProtocolMessage::from_wire(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must decode to Ok or Err, never panic.
        let _ = ProtocolMessage::from_wire(&bytes);
        let _ = GrrpMessage::from_wire(&bytes);
        let _ = GripRequest::from_wire(&bytes);
        let _ = GripReply::from_wire(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_frames(
        m in grrp(),
        flips in prop::collection::vec((0usize..512, 0u8..8), 1..8)
    ) {
        let mut bytes = ProtocolMessage::Grrp(m).to_wire();
        for (pos, bit) in flips {
            if !bytes.is_empty() {
                let idx = pos % bytes.len();
                bytes[idx] ^= 1 << bit;
            }
        }
        let _ = ProtocolMessage::from_wire(&bytes);
    }
}
