//! Property tests for the protocol layer: soft-state registry
//! invariants and wire round-trips on arbitrary messages.

use gis_ldap::{Dn, LdapUrl, Rdn, Wire};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{
    GripReply, GripRequest, GrrpMessage, ProtocolMessage, ResultCode, SearchSpec,
    SoftStateRegistry, SubscriptionMode,
};
use proptest::prelude::*;

fn url() -> impl Strategy<Value = LdapUrl> {
    ("[a-z]{1,8}", 1u16..10000).prop_map(|(h, p)| LdapUrl::new(h, p, Dn::root()))
}

fn dn() -> impl Strategy<Value = Dn> {
    prop::collection::vec(("[a-z]{1,4}", "[a-zA-Z0-9]{1,6}"), 0..3)
        .prop_map(|parts| Dn::from_rdns(parts.into_iter().map(|(a, v)| Rdn::new(a, v)).collect()))
}

fn time() -> impl Strategy<Value = SimTime> {
    (0u64..1_000_000_000).prop_map(SimTime)
}

fn duration() -> impl Strategy<Value = SimDuration> {
    (1u64..1_000_000_000).prop_map(SimDuration)
}

fn grrp() -> impl Strategy<Value = GrrpMessage> {
    (
        url(),
        dn(),
        time(),
        duration(),
        prop::option::of("[ -~]{0,20}"),
    )
        .prop_map(|(service_url, namespace, from, ttl, subject)| {
            let mut m = GrrpMessage::register(service_url, namespace, from, ttl);
            m.subject = subject;
            m
        })
}

/// Registry driven by an arbitrary schedule of (message, observation
/// time) events, observed in time order.
fn schedule() -> impl Strategy<Value = Vec<(GrrpMessage, SimTime)>> {
    prop::collection::vec((grrp(), time()), 0..40).prop_map(|mut v| {
        v.sort_by_key(|(_, t)| *t);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn registry_never_serves_expired(events in schedule(), probe in time()) {
        let mut reg = SoftStateRegistry::new();
        for (msg, at) in &events {
            reg.observe(msg.clone(), *at);
        }
        for r in reg.active(probe) {
            prop_assert!(probe < r.expires_at(), "active() must exclude expired entries");
        }
    }

    #[test]
    fn sweep_removes_exactly_expired(events in schedule(), probe in time()) {
        let mut reg = SoftStateRegistry::new();
        for (msg, at) in &events {
            reg.observe(msg.clone(), *at);
        }
        let active_before = reg.active_count(probe);
        let purged = reg.sweep(probe);
        prop_assert_eq!(reg.len(), active_before, "survivors are exactly the active set");
        // Everything purged was expired; everything kept is fresh.
        for url in &purged {
            prop_assert!(reg.get(url).is_none());
        }
        for r in reg.active(probe) {
            prop_assert!(probe < r.expires_at());
        }
        // Sweeping again at the same instant is a no-op.
        prop_assert!(reg.sweep(probe).is_empty());
    }

    #[test]
    fn refresh_never_shrinks_validity(base in grrp(), t1 in time(), extra in duration()) {
        // Observe a message, then a refresh with any later validity;
        // expiry must be monotone non-decreasing.
        let mut reg = SoftStateRegistry::new();
        let t0 = base.valid_from;
        if !base.is_valid_at(t0) {
            return Ok(()); // degenerate zero-ttl case
        }
        reg.observe(base.clone(), t0);
        let before = reg.get(&base.service_url).unwrap().expires_at();

        let mut refresh = base.clone();
        refresh.valid_from = t1;
        refresh.valid_until = t1 + extra;
        let observe_at = t1;
        if refresh.is_valid_at(observe_at) {
            reg.observe(refresh, observe_at);
        }
        if let Some(r) = reg.get(&base.service_url) {
            prop_assert!(r.expires_at() >= before.min(r.expires_at()));
            prop_assert!(r.expires_at() >= before || r.expires_at() == before,
                "validity must never shrink");
        }
    }

    #[test]
    fn registration_count_bounded_by_distinct_urls(events in schedule()) {
        let mut reg = SoftStateRegistry::new();
        let mut distinct = std::collections::BTreeSet::new();
        for (msg, at) in &events {
            distinct.insert(msg.service_url.to_string());
            reg.observe(msg.clone(), *at);
        }
        prop_assert!(reg.len() <= distinct.len());
    }

    #[test]
    fn grrp_wire_roundtrip(m in grrp()) {
        let bytes = m.to_wire();
        prop_assert_eq!(GrrpMessage::from_wire(&bytes).unwrap(), m);
    }

    #[test]
    fn protocol_frame_roundtrip(m in grrp(), id in 0u64..1000, limit in 0u32..100) {
        let frames = vec![
            ProtocolMessage::Grrp(m.clone()),
            ProtocolMessage::Request(GripRequest::Search {
                id,
                spec: SearchSpec::subtree(m.namespace.clone(), gis_ldap::Filter::always())
                    .limit(limit),
            }),
            ProtocolMessage::Request(GripRequest::Subscribe {
                id,
                spec: SearchSpec::lookup(m.namespace.clone()),
                mode: SubscriptionMode::Periodic(SimDuration(1 + u64::from(limit))),
            }),
            ProtocolMessage::Reply(GripReply::SearchResult {
                id,
                code: ResultCode::PartialResults,
                entries: vec![],
                referrals: vec![m.service_url.clone()],
            }),
        ];
        for frame in frames {
            let bytes = frame.to_wire();
            prop_assert_eq!(ProtocolMessage::from_wire(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must decode to Ok or Err, never panic.
        let _ = ProtocolMessage::from_wire(&bytes);
        let _ = GrrpMessage::from_wire(&bytes);
        let _ = GripRequest::from_wire(&bytes);
        let _ = GripReply::from_wire(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_frames(
        m in grrp(),
        flips in prop::collection::vec((0usize..512, 0u8..8), 1..8)
    ) {
        let mut bytes = ProtocolMessage::Grrp(m).to_wire();
        for (pos, bit) in flips {
            if !bytes.is_empty() {
                let idx = pos % bytes.len();
                bytes[idx] ^= 1 << bit;
            }
        }
        let _ = ProtocolMessage::from_wire(&bytes);
    }
}

// ---------------------------------------------------------------------
// Frame-format properties: the length-prefixed wire framing used by the
// TCP transport, exercised over a real socket with arbitrary
// fragmentation.

use bytes::{BufMut, BytesMut};
use gis_ldap::Entry;
use gis_proto::{
    encode_frame_limited, frame_bytes, FrameDecoder, TraceContext, TraceId, FRAME_HEADER,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

fn entry() -> impl Strategy<Value = Entry> {
    (
        dn(),
        prop::collection::vec(("[a-z]{1,6}", "[ -~]{0,12}"), 0..4),
    )
        .prop_map(|(dn, attrs)| {
            let mut e = Entry::new(dn);
            for (a, v) in attrs {
                e = e.with(&a, v.as_str());
            }
            e
        })
}

/// Any protocol message, optionally wrapped in one trace envelope (the
/// codec forbids nesting them, covered separately below).
fn message() -> impl Strategy<Value = ProtocolMessage> {
    let request = (any::<u64>(), dn(), 0u32..50).prop_map(|(id, ns, limit)| {
        ProtocolMessage::Request(GripRequest::Search {
            id,
            spec: SearchSpec::subtree(ns, gis_ldap::Filter::always()).limit(limit),
        })
    });
    let reply = (
        any::<u64>(),
        prop::collection::vec(entry(), 0..4),
        prop::collection::vec(url(), 0..3),
    )
        .prop_map(|(id, entries, referrals)| {
            ProtocolMessage::Reply(GripReply::SearchResult {
                id,
                code: ResultCode::PartialResults,
                entries,
                referrals,
            })
        });
    let register = grrp().prop_map(ProtocolMessage::Grrp);
    (
        prop_oneof![request, reply, register],
        prop::option::of((any::<u64>(), any::<u64>())),
    )
        .prop_map(|(m, ctx)| match ctx {
            Some((trace, parent)) => m.traced(TraceContext {
                trace: TraceId(trace),
                parent,
            }),
            None => m,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode a batch of messages, push the bytes through a real TCP
    /// loopback socket in arbitrary-size chunks, reassemble with
    /// [`FrameDecoder`]: the decoded sequence is identical, regardless
    /// of where the kernel or the writer split the stream.
    #[test]
    fn frames_survive_arbitrary_fragmentation_over_a_socket(
        msgs in prop::collection::vec(message(), 1..6),
        cuts in prop::collection::vec(1usize..64, 0..24),
    ) {
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&frame_bytes(m).unwrap());
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_nodelay(true).unwrap();
            let mut off = 0;
            for cut in cuts {
                if off >= bytes.len() {
                    break;
                }
                let end = (off + cut).min(bytes.len());
                sock.write_all(&bytes[off..end]).unwrap();
                off = end;
            }
            sock.write_all(&bytes[off..]).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut buf = [0u8; 37]; // deliberately odd read window
        while got.len() < msgs.len() {
            let n = conn.read(&mut buf).unwrap();
            prop_assert!(n > 0, "stream ended before all frames arrived");
            dec.feed(&buf[..n]);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        writer.join().unwrap();
        prop_assert_eq!(got, msgs);
        prop_assert!(!dec.mid_frame(), "no stray bytes after the last frame");
    }

    /// The decoder's ceiling is exact: a frame whose body is exactly the
    /// limit decodes, one byte lower is rejected, and rejection poisons
    /// the stream.
    #[test]
    fn decoder_ceiling_is_exact(m in message()) {
        let framed = frame_bytes(&m).unwrap();
        let body = framed.len() - FRAME_HEADER;
        let mut dec = FrameDecoder::with_max_frame(body);
        dec.feed(&framed);
        prop_assert_eq!(dec.next().unwrap().unwrap(), m);
        prop_assert!(!dec.mid_frame());

        let mut dec = FrameDecoder::with_max_frame(body - 1);
        dec.feed(&framed);
        prop_assert!(dec.next().is_err());
        prop_assert!(dec.next().is_err(), "a poisoned decoder stays poisoned");
    }

    /// The encoder refuses to emit a frame above the ceiling and leaves
    /// the output buffer untouched when it does.
    #[test]
    fn encoder_ceiling_is_exact(m in message()) {
        let body = m.to_wire().len();
        let mut buf = BytesMut::new();
        prop_assert!(encode_frame_limited(&m, &mut buf, body).is_ok());
        prop_assert_eq!(buf.len(), FRAME_HEADER + body);
        let mut small = BytesMut::new();
        prop_assert!(encode_frame_limited(&m, &mut small, body - 1).is_err());
        prop_assert!(small.is_empty(), "failed encode leaves no partial frame");
    }

    /// Zero-copy framing under arbitrary fragmentation: mix plain and
    /// multiplexing-enveloped frames, cut the byte stream anywhere, and
    /// feed the pieces to one [`FrameDecoder`]. Every frame decodes with
    /// its correlation id intact, and all frames completed by the *same*
    /// `feed` call hand out bodies that are consecutive slices of one
    /// receive buffer — `prev.body` ends exactly [`FRAME_HEADER`] bytes
    /// before `next.body` begins, proving no per-frame copy happened.
    #[test]
    fn fragmented_mux_frames_decode_without_copying(
        msgs in prop::collection::vec((message(), prop::option::of(any::<u64>())), 1..6),
        cuts in prop::collection::vec(1usize..48, 0..24),
    ) {
        let mut bytes = BytesMut::new();
        for (m, corr) in &msgs {
            match corr {
                Some(c) => gis_proto::encode_mux_frame_limited(*c, m, &mut bytes, usize::MAX)
                    .unwrap(),
                None => encode_frame_limited(m, &mut bytes, usize::MAX).unwrap(),
            }
        }
        let bytes = bytes.to_vec();
        let mut dec = FrameDecoder::new();
        let mut got: Vec<gis_proto::Frame> = Vec::new();
        let mut off = 0;
        let mut feed_batch = |dec: &mut FrameDecoder, got: &mut Vec<gis_proto::Frame>,
                              chunk: &[u8]| -> Result<(), TestCaseError> {
            dec.feed(chunk);
            let mut batch: Vec<gis_proto::Frame> = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                batch.push(f);
            }
            for pair in batch.windows(2) {
                let prev_end = pair[0].body.as_ptr() as usize + pair[0].body.len();
                prop_assert_eq!(
                    prev_end + FRAME_HEADER,
                    pair[1].body.as_ptr() as usize,
                    "bodies completed by one feed are adjacent slices of one buffer"
                );
            }
            got.extend(batch);
            Ok(())
        };
        for cut in cuts {
            if off >= bytes.len() {
                break;
            }
            let end = (off + cut).min(bytes.len());
            feed_batch(&mut dec, &mut got, &bytes[off..end])?;
            off = end;
        }
        feed_batch(&mut dec, &mut got, &bytes[off..])?;
        prop_assert_eq!(got.len(), msgs.len());
        for (frame, (m, corr)) in got.iter().zip(&msgs) {
            prop_assert_eq!(&frame.msg, m);
            prop_assert_eq!(&frame.corr, corr, "correlation id survives refragmentation");
        }
        prop_assert!(!dec.mid_frame(), "no stray bytes after the last frame");
    }

    /// A hand-built frame nesting one trace envelope inside another is
    /// rejected by the decoder for any payload.
    #[test]
    fn nested_trace_envelope_rejected(m in message(), t in any::<u64>(), p in any::<u64>()) {
        let ctx = TraceContext { trace: TraceId(t), parent: p };
        let inner = match m {
            traced @ ProtocolMessage::Traced { .. } => traced,
            plain => plain.traced(ctx),
        };
        let mut body = BytesMut::new();
        body.put_u8(3); // outer Traced tag
        gis_ldap::codec::put_varint(&mut body, t);
        gis_ldap::codec::put_varint(&mut body, p);
        inner.encode(&mut body);
        let mut framed = BytesMut::new();
        framed.put_u32(body.len() as u32);
        framed.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        prop_assert!(dec.next().is_err(), "nested trace envelopes must not decode");
    }
}
