//! Property tests for the simulator: determinism, causality and
//! conservation invariants over randomized workloads.

use gis_netsim::{ms, Actor, Ctx, LinkConfig, NodeId, Sim, SimDuration, SimTime};
use proptest::prelude::*;

/// A recording actor: logs (time, from, payload) of everything it
/// receives and relays a configurable number of times.
struct Recorder {
    received: Vec<(SimTime, NodeId, u64)>,
    relay_to: Option<NodeId>,
    relay_budget: u32,
}

impl Actor<u64> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.received.push((ctx.now(), from, msg));
        if self.relay_budget > 0 {
            if let Some(to) = self.relay_to {
                self.relay_budget -= 1;
                ctx.send(to, msg + 1);
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Workload {
    n_nodes: u32,
    seed: u64,
    loss: f64,
    latency_ms: u64,
    jitter_ms: u64,
    injections: Vec<(u32, u64)>, // (target index, payload)
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        2u32..8,
        0u64..1000,
        0.0f64..0.9,
        1u64..100,
        0u64..50,
        prop::collection::vec((0u32..8, 0u64..1000), 1..20),
    )
        .prop_map(
            |(n_nodes, seed, loss, latency_ms, jitter_ms, injections)| Workload {
                n_nodes,
                seed,
                loss,
                latency_ms,
                jitter_ms,
                injections,
            },
        )
}

type NodeLog = Vec<(SimTime, NodeId, u64)>;

fn run(w: &Workload) -> (Vec<NodeLog>, gis_netsim::NetMetrics) {
    let mut sim: Sim<u64> = Sim::new(w.seed);
    sim.set_default_link(LinkConfig {
        latency: ms(w.latency_ms),
        jitter: ms(w.jitter_ms),
        loss: w.loss,
    });
    let mut nodes = Vec::new();
    for i in 0..w.n_nodes {
        let relay_to = if w.n_nodes > 1 {
            Some(NodeId((i + 1) % w.n_nodes))
        } else {
            None
        };
        nodes.push(sim.add_node(
            format!("n{i}"),
            Box::new(Recorder {
                received: Vec::new(),
                relay_to,
                relay_budget: 3,
            }),
        ));
    }
    for (target, payload) in &w.injections {
        sim.send_external(NodeId(target % w.n_nodes), *payload);
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let logs = nodes
        .iter()
        .map(|&n| sim.actor::<Recorder>(n).unwrap().received.clone())
        .collect();
    (logs, sim.metrics())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_same_trace(w in workload()) {
        let (logs1, m1) = run(&w);
        let (logs2, m2) = run(&w);
        prop_assert_eq!(logs1, logs2);
        prop_assert_eq!(m1, m2);
    }

    #[test]
    fn message_conservation(w in workload()) {
        let (_, m) = run(&w);
        prop_assert_eq!(
            m.sent,
            m.delivered + m.dropped_loss + m.dropped_partition + m.dropped_down,
            "every sent message is delivered or accounted as dropped"
        );
    }

    #[test]
    fn delivery_times_respect_minimum_latency(w in workload()) {
        let (logs, _) = run(&w);
        // Every delivery happens at or after the link's base latency
        // (external injections included).
        for log in &logs {
            for (t, _, _) in log {
                prop_assert!(t.micros() >= w.latency_ms * 1000);
            }
        }
    }

    #[test]
    fn delivery_order_is_chronological_per_node(w in workload()) {
        let (logs, _) = run(&w);
        for log in &logs {
            for pair in log.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0, "per-node delivery times are monotone");
            }
        }
    }

    #[test]
    fn lossless_network_delivers_everything(mut w in workload()) {
        w.loss = 0.0;
        let (_, m) = run(&w);
        prop_assert_eq!(m.dropped_loss, 0);
        prop_assert_eq!(m.sent, m.delivered);
    }

    #[test]
    fn full_loss_delivers_only_external(mut w in workload()) {
        w.loss = 1.0;
        let (_, m) = run(&w);
        // Externally injected messages bypass loss; all relayed traffic dies.
        prop_assert_eq!(m.delivered, w.injections.len() as u64);
    }

    #[test]
    fn partition_blocks_exactly_cross_traffic(w in workload()) {
        // Partition node 0 from everyone else before injecting.
        let mut sim: Sim<u64> = Sim::new(w.seed);
        sim.set_default_link(LinkConfig {
            latency: ms(w.latency_ms),
            jitter: ms(w.jitter_ms),
            loss: 0.0,
        });
        let mut nodes = Vec::new();
        for i in 0..w.n_nodes.max(2) {
            let n = w.n_nodes.max(2);
            nodes.push(sim.add_node(
                format!("n{i}"),
                Box::new(Recorder {
                    received: Vec::new(),
                    relay_to: Some(NodeId((i + 1) % n)),
                    relay_budget: 1,
                }),
            ));
        }
        let others: Vec<NodeId> = nodes[1..].to_vec();
        sim.partition_between(&[nodes[0]], &others);
        for (target, payload) in &w.injections {
            sim.send_external(NodeId(target % w.n_nodes.max(2)), *payload);
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        let m = sim.metrics();
        prop_assert_eq!(m.dropped_loss, 0);
        prop_assert_eq!(m.sent, m.delivered + m.dropped_partition);
        // Node 0 receives only external injections (its ring neighbours
        // cannot reach it).
        let n0 = sim.actor::<Recorder>(nodes[0]).unwrap();
        for (_, from, _) in &n0.received {
            prop_assert_eq!(*from, NodeId::EXTERNAL);
        }
    }
}
