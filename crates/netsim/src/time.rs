//! Simulated time: microsecond-resolution virtual clock values.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Wall time elapsed since `epoch`, mapped onto the simulation clock.
    /// The live runtime uses this so the same engines, TTLs and trace
    /// timestamps work identically under real threads and the simulator.
    pub fn wall(epoch: std::time::Instant) -> SimTime {
        SimTime(epoch.elapsed().as_micros() as u64)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e6) as u64)
    }

    /// The span in microseconds.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a float factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).max(0.0) as u64)
    }
}

/// Shorthand: a duration of `ms` milliseconds.
pub fn ms(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// Shorthand: a duration of `s` seconds.
pub fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + secs(2) + ms(500);
        assert_eq!(t.micros(), 2_500_000);
        assert_eq!((t - SimTime(500_000)).micros(), 2_000_000);
        assert_eq!(SimTime(1).since(SimTime(5)), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert_eq!(ms(250).mul_f64(2.0), ms(500));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration(999).to_string(), "999us");
        assert_eq!(ms(1).to_string(), "1.0ms");
        assert_eq!(secs(2).to_string(), "2.000s");
        assert_eq!((SimTime::ZERO + ms(1500)).to_string(), "1.500s");
    }
}
