//! Deterministic discrete-event network simulator.
//!
//! This crate is the testbed substrate for the MDS-2 reproduction: the
//! paper's distribution-related claims (robustness under partition,
//! soft-state convergence, failure-detection tradeoffs) are exercised by
//! running the real protocol state machines over this simulated network.
//!
//! Design goals, in order: **determinism** (same seed, same trace),
//! **fault injection** (loss, partition, crash/restart), and **speed**
//! (binary-heap event loop, no allocation in the hot path beyond the
//! messages themselves).

#![warn(missing_docs)]

pub mod rng;
pub mod sim;
pub mod time;

pub use rng::SimRng;
pub use sim::{Actor, Ctx, LinkConfig, NetMetrics, NodeId, Sim};
pub use time::{ms, secs, SimDuration, SimTime};
