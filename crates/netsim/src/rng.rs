//! Deterministic PRNG for the simulator.
//!
//! The simulator's central guarantee is *replayability*: the same seed must
//! produce the same event trace on every run and every platform. We
//! therefore pin the generator algorithm (SplitMix64, Steele et al. 2014)
//! rather than depending on an external crate whose stream might change
//! across versions.

/// A SplitMix64 generator: tiny state, full 64-bit period, passes BigCrush
/// when used as a one-stream generator — ample quality for simulation
/// workloads (latency jitter, Bernoulli loss, workload arrival times).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Derive an independent child generator (used to give each node its
    /// own stream so adding a node does not perturb others' randomness).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x9e3779b97f4a7c15)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // simulation spans (< 2^32).
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of Poisson processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Approximately normal sample (Irwin–Hall sum of 12 uniforms): cheap,
    /// deterministic, and adequate for latency jitter.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * std_dev
    }

    /// Pick a uniformly random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_u64(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_frequency_plausible() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exponential_mean_plausible() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.5..5.5).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn normal_moments_plausible() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "mean = {mean}");
        assert!((3.5..4.5).contains(&var), "var = {var}");
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SimRng::new(17);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
