//! The discrete-event simulator.
//!
//! Experiments that the paper could only describe qualitatively (Figures 1
//! and 4: behaviour under network partition and component failure) become
//! reproducible here: actors exchange messages over a simulated network
//! with configurable latency, Bernoulli loss, partitions and node crashes,
//! all driven by a seeded deterministic event loop.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Identifies a node (actor) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Pseudo-node representing the external environment (used as the
    /// `from` of messages injected by the experiment driver).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol participant. Implementations hold per-node state and react
/// to message deliveries and timer expirations; all I/O goes through the
/// [`Ctx`] so the same logic is transport-agnostic.
pub trait Actor<M>: Any {
    /// Called when the node first starts and again after each restart.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);
    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

/// Handler-side view of the simulation: clock, self identity, randomness,
/// and buffered effects (sends and timers) applied after the handler
/// returns.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut SimRng,
    effects: &'a mut Vec<Effect<M>>,
}

enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimDuration, token: u64 },
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// This node's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Send a message; it is subject to the network's latency, loss and
    /// partition model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arm a one-shot timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }
}

/// Latency/loss parameters for a directed link (or the global default).
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Mean one-way latency.
    pub latency: SimDuration,
    /// Uniform jitter added in `[0, jitter)`.
    pub jitter: SimDuration,
    /// Probability a message is silently dropped (§4.3's lossy network).
    pub loss: f64,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(10),
            loss: 0.0,
        }
    }
}

/// Counters describing everything the network did; experiments read these
/// to report message overheads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages submitted by actors.
    pub sent: u64,
    /// Messages delivered to a live destination.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped because source and destination are partitioned.
    pub dropped_partition: u64,
    /// Messages dropped because the destination (or source) was down.
    pub dropped_down: u64,
    /// Timer events fired.
    pub timers_fired: u64,
}

enum EventKind<M> {
    Start(NodeId),
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
}

struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties break
        // by insertion sequence for determinism.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Node<M> {
    name: String,
    actor: Box<dyn Actor<M>>,
    up: bool,
    rng: SimRng,
    /// Incarnation counter: timers armed before a crash are ignored after
    /// a restart (the actor re-arms in `on_start`).
    epoch: u64,
}

/// The simulation: nodes, network model, event queue and clock.
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    nodes: Vec<Node<M>>,
    names: HashMap<String, NodeId>,
    /// Timer epochs captured at scheduling time, parallel to queue entries;
    /// encoded inside the token stream instead of a side table.
    default_link: LinkConfig,
    link_overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    blocked: HashSet<(NodeId, NodeId)>,
    metrics: NetMetrics,
    rng: SimRng,
    effects: Vec<Effect<M>>,
    /// Timer queue entries carry the epoch they were armed in.
    timer_epochs: HashMap<u64, u64>,
}

impl<M: 'static> Sim<M> {
    /// Create a simulation with the given random seed.
    pub fn new(seed: u64) -> Sim<M> {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            names: HashMap::new(),
            default_link: LinkConfig::default(),
            link_overrides: HashMap::new(),
            blocked: HashSet::new(),
            metrics: NetMetrics::default(),
            rng: SimRng::new(seed),
            effects: Vec::new(),
            timer_epochs: HashMap::new(),
        }
    }

    /// Set the default link parameters for all node pairs.
    pub fn set_default_link(&mut self, link: LinkConfig) {
        self.default_link = link;
    }

    /// Override parameters of the directed link `from -> to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) {
        self.link_overrides.insert((from, to), link);
    }

    /// Add a node running `actor`; its `on_start` runs at the current time.
    pub fn add_node(&mut self, name: impl Into<String>, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let name = name.into();
        let rng = self.rng.fork();
        self.nodes.push(Node {
            name: name.clone(),
            actor,
            up: true,
            rng,
            epoch: 0,
        });
        self.names.insert(name, id);
        self.push(self.now, EventKind::Start(id));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters so far.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Node id registered under `name`.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// The display name of a node.
    pub fn name_of(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes[id.0 as usize].up
    }

    /// Borrow a node's actor, downcast to its concrete type.
    pub fn actor<T: Actor<M>>(&self, id: NodeId) -> Option<&T> {
        let actor: &dyn Any = self.nodes[id.0 as usize].actor.as_ref();
        actor.downcast_ref::<T>()
    }

    /// Mutably borrow a node's actor, downcast to its concrete type.
    ///
    /// Mutating actor state outside an event handler is an experiment-
    /// driver convenience (e.g. reconfiguring a policy between phases).
    pub fn actor_mut<T: Actor<M>>(&mut self, id: NodeId) -> Option<&mut T> {
        let actor: &mut dyn Any = self.nodes[id.0 as usize].actor.as_mut();
        actor.downcast_mut::<T>()
    }

    /// Run a closure against a node's actor *as if it were an event
    /// handler*: the closure receives the concrete actor and a [`Ctx`]
    /// whose sends and timers take effect normally. This is the
    /// experiment driver's injection point (e.g. making a client actor
    /// issue a query at a scripted moment).
    pub fn invoke<T: Actor<M>, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_, M>) -> R,
    ) -> R {
        debug_assert!(self.effects.is_empty());
        let node = &mut self.nodes[id.0 as usize];
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            rng: &mut node.rng,
            effects: &mut self.effects,
        };
        let actor: &mut dyn Any = node.actor.as_mut();
        let actor = actor
            .downcast_mut::<T>()
            .expect("invoke: actor type mismatch");
        let result = f(actor, &mut ctx);
        let effects = std::mem::take(&mut self.effects);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.route(id, to, msg),
                Effect::Timer { delay, token } => {
                    let epoch = self.nodes[id.0 as usize].epoch;
                    let seq = self.push(self.now + delay, EventKind::Timer { node: id, token });
                    self.timer_epochs.insert(seq, epoch);
                }
            }
        }
        result
    }

    /// Crash a node: it stops receiving messages and its armed timers are
    /// cancelled.
    pub fn crash(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.0 as usize];
        node.up = false;
        node.epoch += 1;
    }

    /// Restart a crashed node; its `on_start` runs at the current time.
    /// Actor state is preserved (a restarting service recovers whatever it
    /// kept; soft-state protocols make stale state harmless).
    pub fn restart(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.0 as usize];
        if node.up {
            return;
        }
        node.up = true;
        self.push(self.now, EventKind::Start(id));
    }

    /// Partition the network between two groups: every pair with one node
    /// in `a` and one in `b` is blocked in both directions. Figure 1's
    /// "VO-B is split by network failure" is `partition_between(&half1,
    /// &half2)`.
    pub fn partition_between(&mut self, a: &[NodeId], b: &[NodeId]) {
        for &x in a {
            for &y in b {
                self.blocked.insert((x, y));
                self.blocked.insert((y, x));
            }
        }
    }

    /// Remove every partition (the network heals).
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Remove the partition between two specific groups.
    pub fn heal_between(&mut self, a: &[NodeId], b: &[NodeId]) {
        for &x in a {
            for &y in b {
                self.blocked.remove(&(x, y));
                self.blocked.remove(&(y, x));
            }
        }
    }

    /// True if traffic from `a` to `b` is currently blocked.
    pub fn is_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&(a, b))
    }

    /// Inject a message from the environment to `to`, subject to the
    /// normal delivery model from no particular location (no partition
    /// check, default latency).
    pub fn send_external(&mut self, to: NodeId, msg: M) {
        self.metrics.sent += 1;
        let latency = self.sample_latency(self.default_link);
        self.push(
            self.now + latency,
            EventKind::Deliver {
                from: NodeId::EXTERNAL,
                to,
                msg,
            },
        );
    }

    /// Process events until the queue is empty or `deadline` is reached;
    /// the clock ends at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Advance the clock by `d`, processing all events in between.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Process every remaining event (caller must ensure quiescence, e.g.
    /// no self-rearming timers).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Process the single earliest event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event time monotonicity");
        self.now = ev.time;
        match ev.kind {
            EventKind::Start(id) => {
                if self.nodes[id.0 as usize].up {
                    self.dispatch(id, |actor, ctx| actor.on_start(ctx));
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if self.nodes[to.0 as usize].up {
                    self.metrics.delivered += 1;
                    self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
                } else {
                    self.metrics.dropped_down += 1;
                }
            }
            EventKind::Timer { node, token } => {
                let armed_epoch = self.timer_epochs.remove(&ev.seq).unwrap_or(0);
                let n = &self.nodes[node.0 as usize];
                if n.up && n.epoch == armed_epoch {
                    self.metrics.timers_fired += 1;
                    self.dispatch(node, |actor, ctx| actor.on_timer(ctx, token));
                }
            }
        }
        true
    }

    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Ctx<'_, M>),
    {
        debug_assert!(self.effects.is_empty());
        let node = &mut self.nodes[id.0 as usize];
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            rng: &mut node.rng,
            effects: &mut self.effects,
        };
        f(node.actor.as_mut(), &mut ctx);
        let effects = std::mem::take(&mut self.effects);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.route(id, to, msg),
                Effect::Timer { delay, token } => {
                    let epoch = self.nodes[id.0 as usize].epoch;
                    let seq = self.push(self.now + delay, EventKind::Timer { node: id, token });
                    self.timer_epochs.insert(seq, epoch);
                }
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.sent += 1;
        if self.blocked.contains(&(from, to)) {
            self.metrics.dropped_partition += 1;
            return;
        }
        let link = self
            .link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link);
        if self.rng.chance(link.loss) {
            self.metrics.dropped_loss += 1;
            return;
        }
        let latency = self.sample_latency(link);
        self.push(self.now + latency, EventKind::Deliver { from, to, msg });
    }

    fn sample_latency(&mut self, link: LinkConfig) -> SimDuration {
        let jitter = if link.jitter.micros() == 0 {
            0
        } else {
            self.rng.range_u64(0, link.jitter.micros())
        };
        SimDuration::from_micros(link.latency.micros() + jitter)
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time, seq, kind });
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, secs};

    /// Test actor: pings a peer on start, counts replies, re-arms a
    /// periodic timer.
    struct Pinger {
        peer: Option<NodeId>,
        received: u64,
        timer_fires: u64,
        period: SimDuration,
        /// When set, send a fresh ping to the peer on every timer fire
        /// (sustained traffic for loss/determinism tests).
        ping_on_timer: bool,
    }

    impl Pinger {
        fn new(peer: Option<NodeId>) -> Pinger {
            Pinger {
                peer,
                received: 0,
                timer_fires: 0,
                period: ms(100),
                ping_on_timer: false,
            }
        }
    }

    impl Actor<u64> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 1);
            }
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received += 1;
            if msg < 3 && from != NodeId::EXTERNAL {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            self.timer_fires += 1;
            if self.ping_on_timer {
                if let Some(peer) = self.peer {
                    ctx.send(peer, 1);
                }
            }
            ctx.set_timer(self.period, token);
        }
    }

    fn two_node_sim(seed: u64) -> (Sim<u64>, NodeId, NodeId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("a", Box::new(Pinger::new(None)));
        let b = sim.add_node("b", Box::new(Pinger::new(Some(a))));
        (sim, a, b)
    }

    #[test]
    fn messages_flow_and_clock_advances() {
        let (mut sim, a, b) = two_node_sim(1);
        sim.run_until(SimTime::ZERO + secs(1));
        assert_eq!(sim.now(), SimTime::ZERO + secs(1));
        // b pings a (1), a replies (2), b replies (3): a gets 2, b gets 1.
        assert_eq!(sim.actor::<Pinger>(a).unwrap().received, 2);
        assert_eq!(sim.actor::<Pinger>(b).unwrap().received, 1);
        let m = sim.metrics();
        assert_eq!(m.sent, 3);
        assert_eq!(m.delivered, 3);
    }

    #[test]
    fn timers_fire_periodically() {
        let (mut sim, a, _b) = two_node_sim(2);
        sim.run_until(SimTime::ZERO + secs(1));
        let fires = sim.actor::<Pinger>(a).unwrap().timer_fires;
        assert_eq!(fires, 10, "100ms period over 1s");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, a, b) = two_node_sim(seed);
            sim.actor_mut::<Pinger>(b).unwrap().ping_on_timer = true;
            sim.set_default_link(LinkConfig {
                latency: ms(20),
                jitter: ms(30),
                loss: 0.2,
            });
            sim.run_until(SimTime::ZERO + secs(5));
            let (pa, pb) = (
                sim.actor::<Pinger>(a).unwrap().received,
                sim.actor::<Pinger>(b).unwrap().received,
            );
            (sim.metrics(), pa, pb)
        };
        assert_eq!(run(42), run(42));
        // With loss and jitter, different seeds should (almost surely)
        // differ in some counter over 5s of periodic traffic.
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let (mut sim, a, b) = two_node_sim(3);
        sim.run_until(SimTime::ZERO + ms(500));
        let delivered_before = sim.metrics().delivered;
        sim.partition_between(&[a], &[b]);
        assert!(sim.is_blocked(a, b));
        sim.send_message_pair(a, b);
        sim.run_for(ms(100));
        assert!(sim.metrics().dropped_partition >= 1);
        sim.heal_all();
        assert!(!sim.is_blocked(a, b));
        sim.send_message_pair(a, b);
        sim.run_for(ms(100));
        assert!(sim.metrics().delivered > delivered_before);
    }

    impl Sim<u64> {
        /// Test helper: make `from` send one message to `to` now.
        fn send_message_pair(&mut self, from: NodeId, to: NodeId) {
            self.effects.push(Effect::Send { to, msg: 9 });
            let effects = std::mem::take(&mut self.effects);
            for e in effects {
                if let Effect::Send { to, msg } = e {
                    self.route(from, to, msg);
                }
            }
        }
    }

    #[test]
    fn crash_drops_messages_and_cancels_timers() {
        let (mut sim, a, _b) = two_node_sim(4);
        sim.run_until(SimTime::ZERO + ms(500));
        let fires_at_crash = sim.actor::<Pinger>(a).unwrap().timer_fires;
        sim.crash(a);
        sim.send_external(a, 99);
        sim.run_for(secs(1));
        assert_eq!(sim.actor::<Pinger>(a).unwrap().timer_fires, fires_at_crash);
        assert!(sim.metrics().dropped_down >= 1);
    }

    #[test]
    fn restart_reruns_on_start_and_rearms() {
        let (mut sim, a, _b) = two_node_sim(5);
        sim.run_until(SimTime::ZERO + ms(500));
        sim.crash(a);
        sim.run_for(secs(1));
        let fires_before = sim.actor::<Pinger>(a).unwrap().timer_fires;
        sim.restart(a);
        sim.run_for(secs(1));
        let fires_after = sim.actor::<Pinger>(a).unwrap().timer_fires;
        assert_eq!(fires_after - fires_before, 10);
    }

    #[test]
    fn loss_rate_drops_messages() {
        let mut sim: Sim<u64> = Sim::new(6);
        sim.set_default_link(LinkConfig {
            latency: ms(1),
            jitter: SimDuration::ZERO,
            loss: 0.5,
        });
        let sink = sim.add_node("sink", Box::new(Pinger::new(None)));
        for _ in 0..1000 {
            // send_external uses the default link but never partitions.
            sim.send_external(sink, 7);
        }
        // External sends bypass loss; route via a peer instead.
        let src = sim.add_node("src", Box::new(Pinger::new(None)));
        for _ in 0..1000 {
            sim.send_message_pair(src, sink);
        }
        sim.run_to_quiescence_bounded();
        let m = sim.metrics();
        assert!(
            (350..650).contains(&(m.dropped_loss as i64)),
            "dropped {} of 1000",
            m.dropped_loss
        );
    }

    impl Sim<u64> {
        /// Drain deliveries but stop periodic timers from running forever:
        /// process events only up to the current frontier plus one second.
        fn run_to_quiescence_bounded(&mut self) {
            let deadline = self.now + secs(1);
            self.run_until(deadline);
        }
    }

    #[test]
    fn external_injection_delivers() {
        let (mut sim, a, _b) = two_node_sim(7);
        sim.run_until(SimTime::ZERO + ms(100));
        let before = sim.actor::<Pinger>(a).unwrap().received;
        sim.send_external(a, 42);
        sim.run_for(ms(200));
        assert_eq!(sim.actor::<Pinger>(a).unwrap().received, before + 1);
    }

    #[test]
    fn link_override_changes_latency() {
        let mut sim: Sim<u64> = Sim::new(8);
        let a = sim.add_node("a", Box::new(Pinger::new(None)));
        let b = sim.add_node("b", Box::new(Pinger::new(Some(a))));
        sim.set_link(
            b,
            a,
            LinkConfig {
                latency: secs(2),
                jitter: SimDuration::ZERO,
                loss: 0.0,
            },
        );
        sim.run_until(SimTime::ZERO + secs(1));
        assert_eq!(sim.actor::<Pinger>(a).unwrap().received, 0);
        sim.run_until(SimTime::ZERO + secs(3));
        assert!(sim.actor::<Pinger>(a).unwrap().received >= 1);
    }

    #[test]
    fn name_lookup() {
        let (sim, a, b) = two_node_sim(9);
        assert_eq!(sim.lookup("a"), Some(a));
        assert_eq!(sim.lookup("b"), Some(b));
        assert_eq!(sim.lookup("c"), None);
        assert_eq!(sim.name_of(a), "a");
        assert_eq!(sim.node_count(), 2);
    }
}
