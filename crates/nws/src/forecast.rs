//! Time-series forecasters and the adaptive forecaster battery.
//!
//! The Network Weather Service (Wolski, HPDC'97 — the paper's reference
//! \[40]) runs a battery of simple predictors over each measurement series
//! and reports the forecast of whichever predictor currently has the
//! lowest error. We reimplement that scheme: it is what makes the NWS
//! gateway provider's "predicted bandwidth/latency" attributes (§10.3)
//! meaningful.

use std::collections::VecDeque;

/// A single-series, one-step-ahead forecaster.
pub trait Forecaster: std::fmt::Debug {
    /// Human-readable method name (appears in experiment output).
    fn name(&self) -> &'static str;
    /// Incorporate a new observation.
    fn update(&mut self, value: f64);
    /// Predict the next observation; `None` until enough data is seen.
    fn predict(&self) -> Option<f64>;
}

/// Predicts the last observed value (random-walk model).
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Predicts the mean of all observations (stationary model).
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl Forecaster for RunningMean {
    fn name(&self) -> &'static str {
        "running-mean"
    }
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Mean over a sliding window of `w` observations.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl SlidingMean {
    /// Window of `capacity` observations (must be ≥ 1).
    pub fn new(capacity: usize) -> SlidingMean {
        assert!(capacity >= 1);
        SlidingMean {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
    fn update(&mut self, value: f64) {
        if self.window.len() == self.capacity {
            self.sum -= self.window.pop_front().expect("nonempty at capacity");
        }
        self.window.push_back(value);
        self.sum += value;
    }
    fn predict(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }
}

/// Median over a sliding window (robust to measurement spikes).
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: VecDeque<f64>,
    capacity: usize,
}

impl SlidingMedian {
    /// Window of `capacity` observations (must be ≥ 1).
    pub fn new(capacity: usize) -> SlidingMedian {
        assert!(capacity >= 1);
        SlidingMedian {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &'static str {
        "sliding-median"
    }
    fn update(&mut self, value: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        })
    }
}

/// Exponential smoothing with gain `alpha`.
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    pub fn new(alpha: f64) -> ExpSmoothing {
        assert!(alpha > 0.0 && alpha <= 1.0);
        ExpSmoothing { alpha, state: None }
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => s + self.alpha * (value - s),
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
}

/// First-order autoregressive model fitted online: predicts
/// `mean + phi * (last - mean)` with `phi` estimated from lag-1
/// covariance.
#[derive(Debug, Clone, Default)]
pub struct Ar1 {
    n: u64,
    sum: f64,
    sum_sq: f64,
    lag_products: f64,
    lag_count: u64,
    prev: Option<f64>,
    last: Option<f64>,
}

impl Forecaster for Ar1 {
    fn name(&self) -> &'static str {
        "ar1"
    }
    fn update(&mut self, value: f64) {
        self.n += 1;
        self.sum += value;
        self.sum_sq += value * value;
        if let Some(prev) = self.last {
            self.lag_products += prev * value;
            self.lag_count += 1;
        }
        self.prev = self.last;
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        let last = self.last?;
        if self.n < 3 || self.lag_count < 2 {
            return Some(last);
        }
        let n = self.n as f64;
        let mean = self.sum / n;
        let var = self.sum_sq / n - mean * mean;
        if var <= 1e-12 {
            return Some(mean);
        }
        let lag_cov = self.lag_products / self.lag_count as f64 - mean * mean;
        let phi = (lag_cov / var).clamp(-0.999, 0.999);
        Some(mean + phi * (last - mean))
    }
}

/// Per-forecaster error tracking inside the battery.
#[derive(Debug)]
struct Tracked {
    forecaster: Box<dyn Forecaster + Send>,
    sq_err_sum: f64,
    err_count: u64,
}

/// The NWS forecaster battery: runs every method in parallel, scores each
/// by mean squared one-step-ahead error, and forecasts with the current
/// best.
#[derive(Debug)]
pub struct Battery {
    tracked: Vec<Tracked>,
    observations: u64,
}

impl Battery {
    /// The standard battery (the methods NWS documents).
    pub fn standard() -> Battery {
        Battery::new(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(10)),
            Box::new(SlidingMedian::new(10)),
            Box::new(ExpSmoothing::new(0.3)),
            Box::new(Ar1::default()),
        ])
    }

    /// A battery over a custom set of forecasters.
    pub fn new(forecasters: Vec<Box<dyn Forecaster + Send>>) -> Battery {
        assert!(!forecasters.is_empty());
        Battery {
            tracked: forecasters
                .into_iter()
                .map(|forecaster| Tracked {
                    forecaster,
                    sq_err_sum: 0.0,
                    err_count: 0,
                })
                .collect(),
            observations: 0,
        }
    }

    /// Feed an observation: first score every method's pending prediction
    /// against it, then update the models.
    pub fn observe(&mut self, value: f64) {
        for t in &mut self.tracked {
            if let Some(pred) = t.forecaster.predict() {
                let err = pred - value;
                t.sq_err_sum += err * err;
                t.err_count += 1;
            }
            t.forecaster.update(value);
        }
        self.observations += 1;
    }

    /// Number of observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Current mean squared error per method, as `(name, mse)` pairs
    /// (`None` until a method has been scored).
    pub fn mse_by_method(&self) -> Vec<(&'static str, Option<f64>)> {
        self.tracked
            .iter()
            .map(|t| {
                (
                    t.forecaster.name(),
                    (t.err_count > 0).then(|| t.sq_err_sum / t.err_count as f64),
                )
            })
            .collect()
    }

    /// The name of the currently best (lowest-MSE) method.
    pub fn best_method(&self) -> &'static str {
        self.best_index()
            .map(|i| self.tracked[i].forecaster.name())
            .unwrap_or("last-value")
    }

    fn best_index(&self) -> Option<usize> {
        self.tracked
            .iter()
            .enumerate()
            .filter(|(_, t)| t.err_count > 0 && t.forecaster.predict().is_some())
            .min_by(|(_, a), (_, b)| {
                let ma = a.sq_err_sum / a.err_count as f64;
                let mb = b.sq_err_sum / b.err_count as f64;
                ma.partial_cmp(&mb).expect("finite MSE")
            })
            .map(|(i, _)| i)
    }

    /// Forecast the next observation with the best method; falls back to
    /// any method with a prediction before scoring data exists.
    pub fn predict(&self) -> Option<f64> {
        if let Some(i) = self.best_index() {
            return self.tracked[i].forecaster.predict();
        }
        self.tracked.iter().find_map(|t| t.forecaster.predict())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        f.update(3.0);
        f.update(5.0);
        assert_eq!(f.predict(), Some(5.0));
    }

    #[test]
    fn running_mean_converges() {
        let mut f = RunningMean::default();
        for v in [2.0, 4.0, 6.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(4.0));
    }

    #[test]
    fn sliding_mean_window() {
        let mut f = SlidingMean::new(2);
        for v in [10.0, 2.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(3.0), "only the last two count");
    }

    #[test]
    fn sliding_median_robust_to_spike() {
        let mut f = SlidingMedian::new(5);
        for v in [1.0, 1.0, 100.0, 1.0, 1.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(1.0));
        // Even-length window takes the midpoint average.
        let mut g = SlidingMedian::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            g.update(v);
        }
        assert_eq!(g.predict(), Some(2.5));
    }

    #[test]
    fn exp_smoothing_moves_toward_new_values() {
        let mut f = ExpSmoothing::new(0.5);
        f.update(0.0);
        f.update(10.0);
        assert_eq!(f.predict(), Some(5.0));
    }

    #[test]
    fn ar1_learns_alternating_series() {
        // x_{t+1} = -x_t: a perfectly anti-correlated series. AR(1)
        // should learn phi ≈ -1 and beat last-value.
        let mut ar = Ar1::default();
        let mut last = LastValue::default();
        let mut ar_err = 0.0;
        let mut lv_err = 0.0;
        let mut x = 1.0;
        for _ in 0..200 {
            x = -x;
            if let (Some(pa), Some(pl)) = (ar.predict(), last.predict()) {
                ar_err += (pa - x).powi(2);
                lv_err += (pl - x).powi(2);
            }
            ar.update(x);
            last.update(x);
        }
        assert!(ar_err < lv_err * 0.5, "ar {ar_err} vs last {lv_err}");
    }

    #[test]
    fn battery_picks_winner_for_constant_series() {
        let mut b = Battery::standard();
        for _ in 0..50 {
            b.observe(7.5);
        }
        assert_eq!(b.predict(), Some(7.5));
        // All methods are perfect; MSE is 0 for each.
        for (_, mse) in b.mse_by_method() {
            assert_eq!(mse, Some(0.0));
        }
    }

    #[test]
    fn battery_prefers_mean_for_noisy_stationary_series() {
        // Deterministic "noise": a fixed repeating pattern around 10.
        let pattern = [9.0, 11.0, 10.5, 9.5, 10.0, 8.5, 11.5, 10.0];
        let mut b = Battery::standard();
        for i in 0..400 {
            b.observe(pattern[i % pattern.len()]);
        }
        let best = b.best_method();
        assert_ne!(best, "last-value", "averaging methods must win; got {best}");
        let p = b.predict().unwrap();
        assert!((9.0..11.0).contains(&p), "prediction {p}");
    }

    #[test]
    fn battery_observation_count() {
        let mut b = Battery::standard();
        assert_eq!(b.observations(), 0);
        assert_eq!(b.predict(), None);
        b.observe(1.0);
        assert_eq!(b.observations(), 1);
        assert!(b.predict().is_some());
    }
}
