//! Network Weather Service substrate (the paper's reference \[40]).
//!
//! MDS-2's GRIS includes "network information via the Network Weather
//! Service (network bandwidth and latency, both measured and predicted)"
//! (§10.3), and §4.1 uses NWS to motivate non-enumerable lazy namespaces.
//! This crate reimplements the relevant core of NWS:
//!
//! * [`sensor`] — deterministic synthetic measurement processes standing
//!   in for active network probes (substitution documented in DESIGN.md);
//! * [`forecast`] — the forecaster battery (last value, means, median,
//!   exponential smoothing, AR(1)) with adaptive best-method selection;
//! * [`system`] — the queryable per-link service with experiment caching.

#![warn(missing_docs)]

pub mod forecast;
pub mod sensor;
pub mod system;

pub use forecast::{
    Ar1, Battery, ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMean, SlidingMedian,
};
pub use sensor::{Metric, Sensor, SensorModel};
pub use system::{LinkForecast, LinkId, Nws};
