//! The NWS system: lazily instantiated per-link sensors with forecaster
//! batteries, queried by endpoint pair.
//!
//! This is the backend behind the paper's flagship non-enumerable
//! namespace example (§4.1): "an information provider that allows users
//! to request bandwidth information for entities corresponding to network
//! links connecting specified endpoints. In practice, such requests do
//! not access a database maintained within the information provider, but
//! are handed off to the Network Weather Service, which may variously
//! access cached data or perform an experiment."

use crate::forecast::Battery;
use crate::sensor::{Metric, Sensor, SensorModel};
use gis_netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A directed link between two named endpoints.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Source endpoint (hostname).
    pub src: String,
    /// Destination endpoint (hostname).
    pub dst: String,
}

impl LinkId {
    /// Construct a link id.
    pub fn new(src: impl Into<String>, dst: impl Into<String>) -> LinkId {
        LinkId {
            src: src.into(),
            dst: dst.into(),
        }
    }
}

/// A measurement+forecast answer for one link metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkForecast {
    /// The most recent measurement.
    pub measured: f64,
    /// The battery's one-step-ahead prediction.
    pub predicted: f64,
    /// When the last measurement (or experiment) ran.
    pub measured_at: SimTime,
}

struct LinkState {
    sensor: Sensor,
    battery: Battery,
    last: Option<LinkForecast>,
}

/// One metric's worth of per-link state.
struct MetricTable {
    links: BTreeMap<LinkId, LinkState>,
    model_for: fn(&LinkId) -> SensorModel,
}

/// The NWS: per-link, per-metric sensors and forecasters. Links are
/// created lazily on first query — the namespace is never enumerated.
pub struct Nws {
    seed: u64,
    /// Measurements younger than this are served from cache instead of
    /// re-running the experiment ("may variously access cached data or
    /// perform an experiment").
    pub cache_ttl: SimDuration,
    bandwidth: MetricTable,
    latency: MetricTable,
    /// Number of actual experiments run (cache misses).
    pub experiments_run: u64,
    /// Number of queries answered from cache.
    pub cache_hits: u64,
}

fn default_bandwidth_model(link: &LinkId) -> SensorModel {
    // Derive a stable per-link mean from the endpoint names so distinct
    // links have distinct characteristics, deterministically.
    let h = gis_hash(&format!("{}->{}", link.src, link.dst));
    let mean = 20.0 + (h % 180) as f64; // 20..200 Mbit/s
    SensorModel::bandwidth(mean)
}

fn default_latency_model(link: &LinkId) -> SensorModel {
    let h = gis_hash(&format!("{}=>{}", link.src, link.dst));
    let mean = 5.0 + (h % 120) as f64; // 5..125 ms
    SensorModel::latency(mean)
}

fn gis_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Nws {
    /// Create an NWS instance; all sensors derive from `seed`.
    pub fn new(seed: u64, cache_ttl: SimDuration) -> Nws {
        Nws {
            seed,
            cache_ttl,
            bandwidth: MetricTable {
                links: BTreeMap::new(),
                model_for: default_bandwidth_model,
            },
            latency: MetricTable {
                links: BTreeMap::new(),
                model_for: default_latency_model,
            },
            experiments_run: 0,
            cache_hits: 0,
        }
    }

    /// Query a link metric at time `now`: serves from cache when fresh,
    /// otherwise runs an experiment (draws a measurement and updates the
    /// battery).
    pub fn query(&mut self, link: &LinkId, metric: Metric, now: SimTime) -> LinkForecast {
        let seed = self.seed;
        let ttl = self.cache_ttl;
        let table = match metric {
            Metric::BandwidthMbps => &mut self.bandwidth,
            Metric::LatencyMs => &mut self.latency,
        };
        let state = table.links.entry(link.clone()).or_insert_with(|| {
            let model = (table.model_for)(link);
            let sensor_seed = seed ^ gis_hash(&format!("{:?}:{}:{}", metric, link.src, link.dst));
            LinkState {
                sensor: Sensor::new(model, sensor_seed),
                battery: Battery::standard(),
                last: None,
            }
        });
        if let Some(prev) = state.last {
            if now.since(prev.measured_at) < ttl {
                self.cache_hits += 1;
                return prev;
            }
        }
        let measured = state.sensor.measure();
        state.battery.observe(measured);
        let predicted = state.battery.predict().unwrap_or(measured);
        let result = LinkForecast {
            measured,
            predicted,
            measured_at: now,
        };
        state.last = Some(result);
        self.experiments_run += 1;
        result
    }

    /// Links instantiated so far for a metric (the *materialized* part of
    /// the infinite namespace).
    pub fn known_links(&self, metric: Metric) -> Vec<LinkId> {
        let table = match metric {
            Metric::BandwidthMbps => &self.bandwidth,
            Metric::LatencyMs => &self.latency,
        };
        table.links.keys().cloned().collect()
    }

    /// Forecast-error summary for a link: `(method, mse)` pairs.
    pub fn mse_report(&self, link: &LinkId, metric: Metric) -> Vec<(&'static str, Option<f64>)> {
        let table = match metric {
            Metric::BandwidthMbps => &self.bandwidth,
            Metric::LatencyMs => &self.latency,
        };
        table
            .links
            .get(link)
            .map(|s| s.battery.mse_by_method())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::{secs, SimTime};

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    #[test]
    fn lazy_namespace_materializes_on_query() {
        let mut nws = Nws::new(1, secs(10));
        assert!(nws.known_links(Metric::BandwidthMbps).is_empty());
        nws.query(&LinkId::new("a", "b"), Metric::BandwidthMbps, t(0));
        nws.query(&LinkId::new("a", "c"), Metric::BandwidthMbps, t(0));
        assert_eq!(nws.known_links(Metric::BandwidthMbps).len(), 2);
        assert!(nws.known_links(Metric::LatencyMs).is_empty());
    }

    #[test]
    fn cache_serves_fresh_queries() {
        let mut nws = Nws::new(1, secs(10));
        let link = LinkId::new("a", "b");
        let first = nws.query(&link, Metric::LatencyMs, t(0));
        let cached = nws.query(&link, Metric::LatencyMs, t(5));
        assert_eq!(first, cached);
        assert_eq!(nws.experiments_run, 1);
        assert_eq!(nws.cache_hits, 1);
        // Past the TTL, a new experiment runs.
        let fresh = nws.query(&link, Metric::LatencyMs, t(11));
        assert_eq!(nws.experiments_run, 2);
        assert_eq!(fresh.measured_at, t(11));
    }

    #[test]
    fn distinct_links_have_distinct_characteristics() {
        let mut nws = Nws::new(1, SimDuration::ZERO);
        let mut means = Vec::new();
        for (s, d) in [("a", "b"), ("c", "d"), ("e", "f")] {
            let link = LinkId::new(s, d);
            let total: f64 = (0..200)
                .map(|i| nws.query(&link, Metric::BandwidthMbps, t(i)).measured)
                .sum();
            means.push(total / 200.0);
        }
        assert!(
            (means[0] - means[1]).abs() > 1.0 || (means[1] - means[2]).abs() > 1.0,
            "links should differ: {means:?}"
        );
    }

    #[test]
    fn predictions_track_measurements() {
        let mut nws = Nws::new(3, SimDuration::ZERO);
        let link = LinkId::new("x", "y");
        let mut err = 0.0;
        let mut prev_pred = None;
        let n = 500;
        for i in 0..n {
            let f = nws.query(&link, Metric::BandwidthMbps, t(i));
            if let Some(p) = prev_pred {
                let e: f64 = p - f.measured;
                err += e.abs() / f.measured.max(1.0);
            }
            prev_pred = Some(f.predicted);
        }
        let mape = err / (n - 1) as f64;
        assert!(mape < 0.5, "mean relative error {mape}");
    }

    #[test]
    fn mse_report_available_after_queries() {
        let mut nws = Nws::new(4, SimDuration::ZERO);
        let link = LinkId::new("p", "q");
        for i in 0..50 {
            nws.query(&link, Metric::LatencyMs, t(i));
        }
        let report = nws.mse_report(&link, Metric::LatencyMs);
        assert_eq!(report.len(), 6, "all standard battery methods");
        assert!(report.iter().all(|(_, mse)| mse.is_some()));
        assert!(nws
            .mse_report(&LinkId::new("no", "link"), Metric::LatencyMs)
            .is_empty());
    }
}
